package local

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"deltacolor/graph"
)

// portProbe outputs, per node, the external IDs heard per port — which
// must equal the node's external adjacency order, the port-numbering
// contract churn has to preserve.
func portProbe(ctx *Ctx) {
	ctx.BroadcastInt(ctx.ID())
	ctx.Next()
	ids := make([]int, ctx.Degree())
	for p := range ids {
		v, ok := ctx.RecvInt(p)
		if !ok {
			v = -1
		}
		ids[p] = v
	}
	ctx.SetOutput(fmt.Sprint(ids))
}

// checkPortsMatchGraph runs portProbe and asserts every node's port
// order equals its adjacency order in net.Graph().
func checkPortsMatchGraph(t *testing.T, net *Network) {
	t.Helper()
	g := net.Graph()
	outs := net.Run(portProbe)
	for v := 0; v < g.N(); v++ {
		want := fmt.Sprint(append([]int{}, g.Neighbors(v)...))
		if outs[v].(string) != want {
			t.Fatalf("node %d ports %v, want adjacency order %v", v, outs[v], want)
		}
	}
}

// floodHashProbe floods IDs for a few rounds and hashes what each node
// saw; mutated and fresh networks must agree byte for byte.
func floodHashProbe(rounds int) NodeFunc {
	return func(ctx *Ctx) {
		acc := ctx.ID()
		for r := 0; r < rounds; r++ {
			ctx.BroadcastInt(acc & 0xffff)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if v, ok := ctx.RecvInt(p); ok {
					acc = acc*31 + v + p
				}
			}
		}
		ctx.SetOutput(acc)
	}
}

func TestChurnAddRemoveEdgeBasics(t *testing.T) {
	g := pathGraph(4)
	net := NewNetwork(g, 1)
	checkPortsMatchGraph(t, net)

	if err := net.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(0, 3); !errors.Is(err, graph.ErrEdgeExists) {
		t.Fatalf("duplicate AddEdge: %v", err)
	}
	if err := net.AddEdge(2, 2); !errors.Is(err, graph.ErrSelfLoop) {
		t.Fatalf("self-loop AddEdge: %v", err)
	}
	if err := net.RemoveEdge(0, 2); !errors.Is(err, graph.ErrNoEdge) {
		t.Fatalf("missing RemoveEdge: %v", err)
	}
	if err := net.RemoveEdge(9, 0); err == nil {
		t.Fatal("out-of-range RemoveEdge accepted")
	}
	checkPortsMatchGraph(t, net)

	if err := net.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge survived RemoveEdge")
	}
	checkPortsMatchGraph(t, net)
}

func TestChurnAddNodeAndIsolate(t *testing.T) {
	net := NewNetwork(cycleGraph(5), 1)
	v := net.AddNode()
	if v != 5 || net.Graph().N() != 6 {
		t.Fatalf("AddNode returned %d, N=%d", v, net.Graph().N())
	}
	for _, u := range []int{0, 2, 4} {
		if err := net.AddEdge(v, u); err != nil {
			t.Fatal(err)
		}
	}
	checkPortsMatchGraph(t, net)

	removed, err := net.IsolateNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || net.Graph().Deg(2) != 0 {
		t.Fatalf("IsolateNode removed %d edges, deg now %d", removed, net.Graph().Deg(2))
	}
	if _, err := net.IsolateNode(99); err == nil {
		t.Fatal("out-of-range IsolateNode accepted")
	}
	checkPortsMatchGraph(t, net)
}

// randomMutableGraph builds a connected graph with enough scattered
// labels that relabeling can kick in when asked.
func randomMutableGraph(rng *rand.Rand, n, extra int) *graph.G {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(perm[i], perm[i+1])
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustEdge(u, v)
		}
	}
	return g
}

func TestChurnEquivalenceRandomScript(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		g := randomMutableGraph(rng, 40, 30)
		net := NewNetwork(g.Clone(), 7)
		mirror := g.Clone()

		// Interleave mutations and runs so the lazy consolidation path
		// (setup's rebuildFlat) is exercised repeatedly mid-life.
		for burst := 0; burst < 3; burst++ {
			for op := 0; op < 12; op++ {
				switch rng.Intn(4) {
				case 0: // insert
					u, v := rng.Intn(mirror.N()), rng.Intn(mirror.N())
					if u == v || mirror.HasEdge(u, v) {
						continue
					}
					if err := net.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
					mirror.MustEdge(u, v)
				case 1: // delete a random existing edge
					es := mirror.Edges()
					if len(es) == 0 {
						continue
					}
					e := es[rng.Intn(len(es))]
					if err := net.RemoveEdge(e[0], e[1]); err != nil {
						t.Fatal(err)
					}
					if err := mirror.RemoveEdge(e[0], e[1]); err != nil {
						t.Fatal(err)
					}
				case 2: // add node wired to two anchors
					v := net.AddNode()
					if w := mirror.AddNode(); w != v {
						t.Fatalf("mirror AddNode %d != %d", w, v)
					}
					for _, u := range []int{rng.Intn(v), rng.Intn(v)} {
						if !mirror.HasEdge(v, u) {
							if err := net.AddEdge(v, u); err != nil {
								t.Fatal(err)
							}
							mirror.MustEdge(v, u)
						}
					}
				case 3: // isolate
					v := rng.Intn(mirror.N())
					if _, err := net.IsolateNode(v); err != nil {
						t.Fatal(err)
					}
					for _, u := range append([]int{}, mirror.Neighbors(v)...) {
						if err := mirror.RemoveEdge(v, u); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			// The mutated network must behave byte-identically to a fresh
			// network over the same mutated graph.
			if got, want := fmt.Sprint(net.Graph().Edges()), fmt.Sprint(mirror.Edges()); got != want {
				t.Fatalf("trial %d burst %d: graph drifted:\n got %s\nwant %s", trial, burst, got, want)
			}
			checkPortsMatchGraph(t, net)
			fresh := NewNetwork(mirror.Clone(), 7)
			a := net.Run(floodHashProbe(4))
			b := fresh.Run(floodHashProbe(4))
			if net.Rounds() != fresh.Rounds() {
				t.Fatalf("trial %d burst %d: rounds %d != %d", trial, burst, net.Rounds(), fresh.Rounds())
			}
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("trial %d burst %d: node %d: mutated %v != fresh %v", trial, burst, v, a[v], b[v])
				}
			}
		}
	}
}

func TestChurnOnRelabeledNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomMutableGraph(rng, 64, 0) // shuffled path: relabeling always helps
	net := NewNetwork(g, 3)
	if !net.Relabeled() {
		t.Skip("relabeling not adopted for this graph shape")
	}
	if err := net.AddEdge(5, 60); err != nil {
		t.Fatal(err)
	}
	v := net.AddNode()
	if err := net.AddEdge(v, 5); err != nil {
		t.Fatal(err)
	}
	es := g.Edges()
	if err := net.RemoveEdge(es[0][0], es[0][1]); err != nil {
		t.Fatal(err)
	}
	checkPortsMatchGraph(t, net)
	if !net.Relabeled() {
		t.Fatal("relabel translation lost across churn")
	}
}

func TestChurnPreservesDeliveryAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomMutableGraph(rng, 300, 200)
	net := NewNetwork(g.Clone(), 11)
	for k := 0; k < 40; k++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u != v && !net.Graph().HasEdge(u, v) {
			if err := net.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	net.SetWorkers(4)
	net.setBatch(32)
	a := net.Run(floodHashProbe(5))
	net.SetWorkers(1)
	b := net.Run(floodHashProbe(5))
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs across worker counts after churn", v)
		}
	}
}
