// Package local implements the LOCAL model of distributed computing as a
// runtime: one goroutine per node, synchronous rounds enforced by a central
// coordinator, per-round message delivery along edges, and automatic round
// accounting.
//
// An algorithm is a function executed by every node against a *Ctx. Nodes
// know initially only their own ID, their degree and port numbering, and
// the global parameters n and Δ (as is standard in the LOCAL model). A node
// communicates by writing messages to ports and calling Next, which blocks
// until every running node has finished the round; Next returns the
// messages that arrived. A node halts by returning from the function; its
// final state is whatever the algorithm recorded through SetOutput.
//
// Messages are unbounded (LOCAL model), so any t-round algorithm is
// equivalent to a function of the t-hop neighborhood; GatherBall implements
// exactly that flooding pattern as a reusable building block.
package local

import (
	"fmt"
	"math/rand"
	"sync"

	"deltacolor/graph"
)

// Message is any value sent along an edge in one round.
type Message any

// NodeFunc is the per-node program. It runs in its own goroutine; it must
// communicate only through ctx and must return to halt.
type NodeFunc func(ctx *Ctx)

// Ctx is a node's interface to the network during a run.
type Ctx struct {
	id     int
	deg    int
	n      int
	maxDeg int
	rng    *rand.Rand

	net    *Network
	in     []Message // in[p] = message received on port p this round (nil if none)
	out    []Message // staged outgoing messages
	output any
	halted bool
	input  any
}

// ID returns this node's unique identifier in [0, n).
func (c *Ctx) ID() int { return c.id }

// Degree returns the node's degree (number of ports).
func (c *Ctx) Degree() int { return c.deg }

// N returns the number of nodes in the network (global knowledge, standard
// in the LOCAL model).
func (c *Ctx) N() int { return c.n }

// MaxDegree returns Δ, the maximum degree of the network.
func (c *Ctx) MaxDegree() int { return c.maxDeg }

// Rand returns the node's private randomness source (deterministically
// derived from the run seed and the node ID).
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Input returns the per-node input installed by RunWithInput (nil if none).
func (c *Ctx) Input() any { return c.input }

// Send stages msg to be delivered to the neighbor on port p at the end of
// the current round. A second Send on the same port overwrites the first
// (one message per edge per round; messages are unbounded so algorithms
// bundle what they need).
func (c *Ctx) Send(p int, msg Message) {
	c.out[p] = msg
}

// Broadcast stages msg on every port.
func (c *Ctx) Broadcast(msg Message) {
	for p := range c.out {
		c.out[p] = msg
	}
}

// Recv returns the message received on port p in the last completed round,
// or nil.
func (c *Ctx) Recv(p int) Message { return c.in[p] }

// Next completes the current round: staged messages are delivered and the
// node blocks until all running nodes reach the barrier. It returns after
// incoming messages for the new round are available via Recv.
func (c *Ctx) Next() {
	c.net.barrier(c, false)
}

// SetOutput records the node's output (its color, mark, level, ...).
func (c *Ctx) SetOutput(v any) { c.output = v }

// Output returns the value recorded by SetOutput.
func (c *Ctx) Output() any { return c.output }

// Network runs NodeFuncs over a graph.
type Network struct {
	g      *graph.G
	ports  [][]int // ports[v][p] = neighbor on port p (== g.Neighbors(v))
	rev    [][]int // rev[v][p] = port index of v on ports[v][p]'s side
	seed   int64
	rounds int

	mu      sync.Mutex
	cond    *sync.Cond
	waiting int
	running int
	gen     uint64
	ctxs    []*Ctx

	stats *MessageStats // non-nil when EnableMessageStats was called
}

// NewNetwork prepares a network over g with the given randomness seed.
func NewNetwork(g *graph.G, seed int64) *Network {
	n := g.N()
	net := &Network{g: g, seed: seed}
	net.cond = sync.NewCond(&net.mu)
	net.ports = make([][]int, n)
	net.rev = make([][]int, n)
	for v := 0; v < n; v++ {
		net.ports[v] = g.Neighbors(v)
		net.rev[v] = make([]int, len(net.ports[v]))
	}
	// rev[v][p]: find index of v in neighbor's list.
	for v := 0; v < n; v++ {
		for p, u := range net.ports[v] {
			for q, w := range net.ports[u] {
				if w == v {
					net.rev[v][p] = q
					break
				}
			}
		}
	}
	return net
}

// Rounds returns the number of synchronous rounds of the last Run.
func (net *Network) Rounds() int { return net.rounds }

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.G { return net.g }

// Run executes f on every node until all halt and returns each node's
// output. The number of rounds used is available via Rounds.
func (net *Network) Run(f NodeFunc) []any {
	return net.RunWithInput(f, nil)
}

// RunWithInput is Run with a per-node input value (inputs[v] is readable by
// node v via ctx.Input). inputs may be nil.
func (net *Network) RunWithInput(f NodeFunc, inputs []any) []any {
	n := net.g.N()
	maxDeg := net.g.MaxDegree()
	net.rounds = 0
	net.gen = 0
	net.ctxs = make([]*Ctx, n)
	for v := 0; v < n; v++ {
		c := &Ctx{
			id:     v,
			deg:    net.g.Deg(v),
			n:      n,
			maxDeg: maxDeg,
			rng:    rand.New(rand.NewSource(net.seed*1_000_003 + int64(v))),
			net:    net,
		}
		c.in = make([]Message, c.deg)
		c.out = make([]Message, c.deg)
		if inputs != nil {
			c.input = inputs[v]
		}
		net.ctxs[v] = c
	}
	net.running = n
	net.waiting = 0

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(c *Ctx) {
			defer wg.Done()
			f(c)
			net.barrier(c, true)
		}(net.ctxs[v])
	}
	wg.Wait()

	outs := make([]any, n)
	for v := 0; v < n; v++ {
		outs[v] = net.ctxs[v].output
	}
	return outs
}

// barrier is called by node goroutines at the end of each round (halt=false)
// or when the node function returns (halt=true). The last arriver performs
// message delivery, bumps the round counter and wakes everyone.
func (net *Network) barrier(c *Ctx, halt bool) {
	net.mu.Lock()
	defer net.mu.Unlock()
	if halt {
		c.halted = true
		net.running--
		if net.waiting == net.running && net.running > 0 {
			net.completeRound()
		} else if net.running == 0 {
			// Everyone done; nothing to deliver.
			net.cond.Broadcast()
		}
		return
	}
	myGen := net.gen
	net.waiting++
	if net.waiting == net.running {
		net.completeRound()
	} else {
		for net.gen == myGen {
			net.cond.Wait()
		}
	}
}

// completeRound delivers staged messages, clears outboxes, increments the
// round counter and releases the barrier. Caller holds net.mu.
func (net *Network) completeRound() {
	if net.stats != nil {
		net.recordMessages()
	}
	// Clear all inboxes (halted nodes too; harmless).
	for _, c := range net.ctxs {
		for p := range c.in {
			c.in[p] = nil
		}
	}
	// Deliver: message staged by v on port p arrives at u := ports[v][p]
	// on port rev[v][p].
	for v, c := range net.ctxs {
		for p, msg := range c.out {
			if msg == nil {
				continue
			}
			u := net.ports[v][p]
			net.ctxs[u].in[net.rev[v][p]] = msg
			c.out[p] = nil
		}
	}
	net.rounds++
	net.waiting = 0
	net.gen++
	net.cond.Broadcast()
}

// Accountant aggregates rounds across the phases of a composite algorithm.
type Accountant struct {
	phases []PhaseStat
}

// PhaseStat records the round cost of one named phase.
type PhaseStat struct {
	Name   string
	Rounds int
}

// Charge adds rounds under the given phase name.
func (a *Accountant) Charge(name string, rounds int) {
	a.phases = append(a.phases, PhaseStat{Name: name, Rounds: rounds})
}

// Total returns the summed rounds over all phases.
func (a *Accountant) Total() int {
	t := 0
	for _, p := range a.phases {
		t += p.Rounds
	}
	return t
}

// Phases returns a copy of the per-phase breakdown.
func (a *Accountant) Phases() []PhaseStat {
	return append([]PhaseStat(nil), a.phases...)
}

// String renders the breakdown, e.g. "linial:5 + layers:12 = 17".
func (a *Accountant) String() string {
	s := ""
	for i, p := range a.phases {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%s:%d", p.Name, p.Rounds)
	}
	return fmt.Sprintf("%s = %d", s, a.Total())
}
