// Package local implements the LOCAL model of distributed computing as a
// runtime: synchronous rounds over a fixed graph, per-round message delivery
// along edges, and automatic round accounting.
//
// An algorithm is a function executed by every node against a *Ctx. Nodes
// know initially only their own ID, their degree and port numbering, and
// the global parameters n and Δ (as is standard in the LOCAL model). A node
// communicates by writing messages to ports and calling Next, which blocks
// until every running node has finished the round; Next returns after the
// messages that arrived are available. A node halts by returning from the
// function; its final state is whatever the algorithm recorded through
// SetOutput.
//
// Messages are unbounded (LOCAL model), so any t-round algorithm is
// equivalent to a function of the t-hop neighborhood. GatherStepped
// implements exactly that flooding pattern as a reusable building block on
// the stepped executor (flat per-round frontiers packed into int32
// records); GatherBall is the blocking reference implementation the shim
// and the property tests pin it against, and GatherBalls dispatches
// between the two via the SetSteppedGather ablation hook. FloodStepped and
// CollectComponents cover the other ball-collection shapes (TTL
// reachability floods and small-component discovery) in the same
// allocation-free style.
//
// # Scheduler architecture
//
// The round engine is a batch-stepped executor. Nodes are partitioned into
// k-node batches (contiguous ID ranges); each round, a fixed worker pool
// pulls batches off a shared cursor and advances every live node in the
// batch by one segment, then delivers the staged messages batch by batch.
// Each batch owns its live list, sender list and dead-send log, so workers
// never contend on shared state, and small rounds are run inline by the
// coordinating goroutine without waking the pool at all — a round costs
// O(workers) park/wake transitions instead of O(n), and with one worker
// the engine is a plain loop with zero synchronization and zero
// allocations per round.
//
// Node programs come in two forms that share this engine:
//
//   - The stepped form (Stepped, RunStepped): the node program is given as
//     explicit Init/Step segment functions with its cross-round state in a
//     flat per-run array. No stacks, no coroutines, no switches — the
//     executor calls segments directly, so a round touches only the
//     compact state and message arrays. This is the engine's native form,
//     and since the gather port it is the only form on the hot path: the
//     protocols (Linial, color reduction, MIS, list coloring) and every
//     ball-collection phase (GatherStepped, FloodStepped,
//     CollectComponents) use it.
//   - The blocking form (NodeFunc, Run): the node's segment boundary is
//     Ctx.Next. Each node runs as a coroutine (iter.Pull) that the workers
//     resume cooperatively; a resume is a direct coroutine switch and
//     never goes through the Go scheduler. This is the fully general form
//     (arbitrary control flow, state on the node's stack) and is kept as a
//     tested compatibility shim: no pipeline phase requires it anymore,
//     and the equivalence suites pin it byte-identical to the stepped
//     ports.
//
// Message delivery never touches per-node scheduling state: ports, reverse
// ports, payloads, presence maps and receiver flags all live in flat
// arrays indexed by directed-edge slot, so delivering a round of small
// messages streams a few compact arrays instead of walking node objects.
// On graphs whose neighbors are scattered beyond the cache (expanders),
// SetTiledDelivery switches the int lane to a tiled kernel that buckets
// each batch's staged messages by receiver range before flushing, turning
// random-stride stores into two near-sequential passes.
//
// # Cache-locality relabeling
//
// Because every engine table is indexed by node (or by the node's
// directed-edge slots), the memory distance between two adjacent nodes'
// slots is the difference of their positions in the tables. NewNetwork
// therefore computes a locality order of the graph (reverse Cuthill–McKee
// seeded from minimum-degree nodes, graph.LocalityOrder) and lays every
// internal table out in that order, so stepping and delivery walk
// near-sequential memory even when the caller's node IDs are scattered
// arbitrarily. The relabeling is invisible: a translation layer (two flat
// arrays, applied exactly once at the API boundary) keeps every
// observable surface — Ctx.ID, Ctx.Rand seeding, Run/RunStepped output
// order, RunWithInput input order, port numbering, DeadSend records,
// MessageStats — in the caller's external IDs, so outputs are
// byte-identical with relabeling on or off. SetRelabel is the ablation
// hook (and E14 measures the effect).
//
// # Typed small-integer fast path
//
// Most protocols in this repository ship nothing but small integers.
// SendInt, BroadcastInt and RecvInt stage those through flat per-network
// int32 buffers with a byte presence map instead of boxing every payload
// into an interface, making such rounds allocation-free. The two paths
// compose: a protocol may send structs on some edges and ints on others,
// Recv surfaces int-path messages to generic readers, and RecvInt falls
// back to boxed ints, so mixed protocols and the SetIntFastPath(false)
// ablation behave identically to the all-boxed runtime.
//
// Determinism is unaffected by batching, worker count and program form:
// message (receiver, port) slots are fixed by the port numbering, per-node
// randomness is derived from (seed, ID) alone, and round completion is a
// pure function of which nodes halted. For a fixed seed, outputs, round
// counts and phase breakdowns are byte-identical across worker and batch
// configurations — and to the previous goroutine-per-node scheduler.
package local

import (
	"fmt"
	"iter"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"deltacolor/graph"
)

// Message is any value sent along an edge in one round.
type Message any

// NodeFunc is the per-node program in blocking form. It runs as a
// coroutine resumed by the scheduler's worker pool; it must communicate
// only through ctx and must return to halt.
type NodeFunc func(ctx *Ctx)

// Ctx is a node's interface to the network during a run.
type Ctx struct {
	id     int // external (caller-visible) node ID
	iid    int // internal (table-order) index; == id without relabeling
	deg    int
	n      int
	maxDeg int
	rng    *rand.Rand // lazily created; see Rand

	net *Network

	// Per-port message lanes: views into the network's flat per-run
	// arrays (in/out boxed payloads, int32 payloads, byte presence maps).
	in     []Message
	out    []Message
	inInt  []int32
	outInt []int32
	inHas  []byte
	outHas []byte

	output any
	input  any

	nBoxed  int32 // non-nil slots currently staged in out (owner-only)
	nInts   int32 // slots currently staged in outHas (owner-only)
	sentAny bool  // staged at least one Send/Broadcast this round (owner-only)

	// resume runs a blocking node program until its next Ctx.Next (or
	// return); yield is the suspension half, installed when the
	// coroutine starts. Both are nil in stepped runs.
	resume func() (struct{}, bool)
	yield  func(struct{}) bool
}

// ID returns this node's unique identifier in [0, n).
func (c *Ctx) ID() int { return c.id }

// Degree returns the node's degree (number of ports).
func (c *Ctx) Degree() int { return c.deg }

// N returns the number of nodes in the network (global knowledge, standard
// in the LOCAL model).
func (c *Ctx) N() int { return c.n }

// MaxDegree returns Δ, the maximum degree of the network.
func (c *Ctx) MaxDegree() int { return c.maxDeg }

// Rand returns the node's private randomness source (deterministically
// derived from the run seed and the node ID). The generator is created on
// first use: seeding math/rand state is the single most expensive part of
// node setup, and most deterministic protocols never draw randomness.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.net.seed*1_000_003 + int64(c.id)))
	}
	return c.rng
}

// Input returns the per-node input installed by RunWithInput (nil if none).
func (c *Ctx) Input() any { return c.input }

// Send stages msg to be delivered to the neighbor on port p at the end of
// the current round. Each edge carries at most one message per round: a
// later Send, SendInt, Broadcast or BroadcastInt on the same port
// overwrites the earlier staging, whichever path it used (messages are
// unbounded in the LOCAL model, so algorithms bundle what they need).
// Sending nil un-stages the port.
//
//deltacolor:hotpath
func (c *Ctx) Send(p int, msg Message) {
	old := c.out[p]
	c.out[p] = msg
	if old == nil {
		if msg != nil {
			c.nBoxed++
		}
	} else if msg == nil {
		c.nBoxed--
	}
	if c.outHas[p] != 0 {
		c.outHas[p] = 0
		c.nInts--
	}
	c.sentAny = true
}

// Broadcast stages msg on every port, overwriting anything staged earlier
// this round (including int-path stagings). On a degree-0 node it is a
// no-op: there are no edges to carry the message, and the node is not
// registered as a sender.
//
//deltacolor:hotpath
func (c *Ctx) Broadcast(msg Message) {
	if len(c.out) == 0 {
		return
	}
	for p := range c.out {
		c.out[p] = msg
	}
	if msg == nil {
		c.nBoxed = 0
	} else {
		c.nBoxed = int32(len(c.out))
	}
	if c.nInts != 0 {
		clear(c.outHas)
		c.nInts = 0
	}
	c.sentAny = true
}

// SendInt stages the integer v on port p through the allocation-free int
// path. Values outside the int32 range fall back transparently to the
// boxed path. Like Send, a later staging on the same port overwrites an
// earlier one regardless of path.
//
//deltacolor:hotpath
func (c *Ctx) SendInt(p int, v int) {
	if int64(int32(v)) != int64(v) || !c.net.intPath {
		//lint:ignore hotpathalloc deliberate escape to the boxed lane: v overflowed int32 or the fast path is disabled, so boxing is the documented fallback
		c.Send(p, v)
		return
	}
	c.outInt[p] = int32(v)
	if c.outHas[p] == 0 {
		c.outHas[p] = 1
		c.nInts++
	}
	if c.out[p] != nil {
		c.out[p] = nil
		c.nBoxed--
	}
	c.sentAny = true
}

// BroadcastInt stages the integer v on every port through the int path
// (falling back to the boxed path for values outside int32). Like
// Broadcast, it overwrites earlier stagings and is a no-op on degree-0
// nodes.
//
//deltacolor:hotpath
func (c *Ctx) BroadcastInt(v int) {
	if int64(int32(v)) != int64(v) || !c.net.intPath {
		//lint:ignore hotpathalloc deliberate escape to the boxed lane: v overflowed int32 or the fast path is disabled, so boxing is the documented fallback
		c.Broadcast(v)
		return
	}
	if len(c.outHas) == 0 {
		return
	}
	w := int32(v)
	for p := range c.outInt {
		c.outInt[p] = w
	}
	for p := range c.outHas {
		c.outHas[p] = 1
	}
	c.nInts = int32(len(c.outHas))
	if c.nBoxed != 0 {
		clear(c.out)
		c.nBoxed = 0
	}
	c.sentAny = true
}

// Recv returns the message received on port p in the last completed round,
// or nil. Messages sent through the int path are surfaced here as boxed
// ints (allocation-free for values in [0, 255], the runtime's static
// boxes), so generic readers interoperate with int-path senders.
//
//deltacolor:hotpath
func (c *Ctx) Recv(p int) Message {
	if c.inHas[p] != 0 {
		//lint:ignore hotpathalloc surfacing an int-path message through the generic reader requires boxing by contract; small values hit the runtime's static boxes
		return int(c.inInt[p])
	}
	return c.in[p]
}

// RecvInt reports the integer received on port p in the last completed
// round. It reads the int fast path first and falls back to a boxed int
// (from a Send, an out-of-range SendInt, or a network with the fast path
// disabled), so int readers interoperate with boxed senders. ok is false
// when no integer message arrived on p.
//
//deltacolor:hotpath
func (c *Ctx) RecvInt(p int) (v int, ok bool) {
	if c.inHas[p] != 0 {
		return int(c.inInt[p]), true
	}
	if m, mok := c.in[p].(int); mok {
		return m, true
	}
	return 0, false
}

// Next completes the current round: the node suspends, the scheduler
// delivers every staged message, and the node resumes in the next round
// with its incoming messages available via Recv/RecvInt. Only blocking
// programs call Next; in the stepped form the segment boundary is the
// Step function itself.
func (c *Ctx) Next() {
	c.yield(struct{}{})
}

// SetOutput records the node's output (its color, mark, level, ...).
func (c *Ctx) SetOutput(v any) { c.output = v }

// Output returns the value recorded by SetOutput.
func (c *Ctx) Output() any { return c.output }

// batch is the scheduler's unit of work: a contiguous ID range of nodes
// stepped (and delivered) together. Exactly one worker touches a batch per
// phase, so its lists need no locks; padding keeps batches off each
// other's cache lines.
type batch struct {
	live    []int32 // non-halted members, ascending ID
	senders []int32 // members that staged sends this round
	halts   int     // nodes that halted during the last step sweep

	dead []DeadSend // sends to halted receivers found while delivering

	// Per-round tracing counters, written by deliverBatch only when the
	// network's tracer counts messages (exactly one worker owns a batch
	// per phase, so no locks) and drained by the coordinator after the
	// delivery phase.
	trInts, trBoxed, trDrops int32

	// Per-round fault-injection counters and the delayed/duplicated
	// messages staged by this batch's faulty kernels (fault.go). Same
	// ownership rule as the tracing counters: one worker per phase,
	// drained by the coordinator each round. All zero/empty when no
	// FaultPlan is attached.
	ftDrops, ftDups, ftDelays, ftCrashIn, ftOffline, ftPanics int32
	pend                                                      []pendingFault

	// Tiled-delivery staging (tile.go), sized by setupTiles and empty when
	// tiling is off: surviving messages are binned by receiver-slot tile
	// (counting sort over tileCnt) into the entry arrays, then flushed tile
	// by tile for receiver-side write locality.
	entSlot, entU, entVal []int32
	entMsg                []Message
	tileCnt               []int32

	_ [64]byte
}

// DeadSend records a message that was staged for a neighbor that had
// already halted; the message is dropped. A send with Round == HaltRound
// is unavoidable in the LOCAL model: the receiver halted in the very sweep
// the message was staged, before any signal could reach the sender. A send
// with Round > HaltRound means the sender kept talking to a node it could
// already have learned was gone — a protocol bug (see LateDeadSends).
// Enable tracking with Network.TrackDeadSends.
type DeadSend struct {
	From      int // sender node ID
	Port      int // sender's port the message was staged on
	To        int // halted receiver node ID
	Round     int // 1-based round in which the send was staged
	HaltRound int // 1-based round during whose sweep the receiver halted
}

func (d DeadSend) String() string {
	return fmt.Sprintf("round %d: node %d sent to halted node %d on port %d", d.Round, d.From, d.To, d.Port)
}

// RunStats summarizes the throughput of the last Run.
type RunStats struct {
	Nodes        int
	Rounds       int
	WallTime     time.Duration
	RoundsPerSec float64 // 0 when the run had no rounds
}

// Network runs node programs over a graph.
//
// Internally nodes are stored in a cache-locality order (see the package
// doc); every field below that is indexed by node or by directed-edge
// slot uses internal indices. The extID/intID arrays translate at the
// API boundary and are nil when the locality order is the identity (or
// relabeling is ablated), in which case internal == external.
type Network struct {
	g     *graph.G
	ports [][]int   // ports[v][p] = internal neighbor on port p of internal node v
	rev   [][]int32 // rev[v][p] = port index of v on ports[v][p]'s side
	seed  int64

	extID []int32 // extID[i] = external ID of internal node i; nil if identity
	intID []int32 // intID[v] = internal index of external node v; nil if identity

	// Flat directed-edge tables: slot off[v]+p is port p of node v.
	// Delivery works entirely on these (plus the per-run lanes below), so
	// it streams compact arrays instead of walking node objects.
	off       []int   // off[v] = first slot of v; len n+1
	portsFlat []int32 // portsFlat[off[v]+p] = neighbor
	revFlat   []int32 // revFlat[off[v]+p] = reverse port
	slotFlat  []int32 // slotFlat[off[v]+p] = off[neighbor] + reverse port, the receiver's lane slot; nil if slots exceed int32

	// Per-run message lanes and receiver flags, indexed by slot (lanes)
	// or node (flags). recvAny/recvInt are set by delivery workers and
	// cleared by the stepping worker that owns the node; they are atomic
	// because two workers delivering from different senders may flag the
	// same receiver.
	inBoxed, outBoxed []Message
	inInt, outInt     []int32
	inHas, outHas     []byte
	recvAny, recvInt  []atomic.Bool
	haltSeg           []int32 // 0 while running; else the round of the sweep v halted in

	rounds  int
	lastRun RunStats
	ctxs    []Ctx

	batches   []batch
	batchSize int             // forced batch size; 0 = auto
	nworkers  int             // worker pool size (stepping and delivery)
	cursor    atomic.Int64    // next batch index during a parallel phase
	segment   func(*Ctx) bool // current step phase's segment function

	noHalts bool // no node has halted yet this run: delivery skips the haltSeg checks

	stats     *MessageStats // non-nil when EnableMessageStats was called
	trackDead bool          // record sends to halted neighbors
	strict    bool          // panic after a Run that recorded dead sends
	intPath   bool          // int fast path enabled (see SetIntFastPath)

	tracer    *Tracer // round-level tracing (see trace.go); nil = off
	countMsgs bool    // per-run: tracer wants lane counts from delivery

	// Fault injection (fault.go). fault == nil is the only state the hot
	// kernels ever see on a healthy network: doBatch dispatches to the
	// separate faulty kernels on one pointer check, so the injection-free
	// fast path keeps its zero-allocs-per-round guarantee bit for bit.
	fault      *FaultPlan            // nil = no injection
	crashW     map[int][]CrashWindow // external ID -> offline windows, built by SetFaultPlan
	faultStats FaultStats            // per-run fault counters (coordinator-owned)
	pendFault  []pendingFault        // delayed/duplicated messages awaiting injection
	runSeq     int64                 // run sequence number; domain-separates fault hashing across runs

	// Tiled delivery (tile.go): tiledOn is the caller's switch, tiled the
	// per-run effective state (setup sizes the per-batch tile staging when
	// it is set), tileCount the number of receiver-slot tiles.
	tiledOn   bool
	tiled     bool
	tileCount int

	// Churn (churn.go): set by the mutation API; setup consolidates the
	// flat edge tables before the next run.
	dirty bool
}

// strictDead is the package default installed on new networks; see
// SetStrictDeadSends.
var strictDead atomic.Bool

// SetStrictDeadSends installs a package-wide default for networks created
// afterwards: dead-send tracking is enabled and any run that records a
// late dead send (see LateDeadSends) panics with the report. Intended for
// experiment harnesses and CI (`benchsuite -strict`), where a message
// staged for a neighbor the sender could have known was halted is a
// protocol regression that must fail loudly instead of being silently
// dropped in user runs.
func SetStrictDeadSends(on bool) { strictDead.Store(on) }

// StrictDeadSends reports the current package default.
func StrictDeadSends() bool { return strictDead.Load() }

// relabelOff ablates the locality relabeling for networks created
// afterwards; the zero value means relabeling is ON (the default).
var relabelOff atomic.Bool

// SetRelabel toggles the cache-locality node relabeling (on by default)
// for networks created afterwards. Relabeling is a memory-layout detail
// with no observable effect — every public surface reports external IDs
// and outputs are byte-identical either way — so the only reason to turn
// it off is ablation measurement (experiment E14 does exactly that).
func SetRelabel(on bool) { relabelOff.Store(!on) }

// RelabelEnabled reports the current package default.
func RelabelEnabled() bool { return !relabelOff.Load() }

// Relabeled reports whether this network's internal tables actually use
// a non-identity locality order (false when relabeling was ablated or
// the computed order was already the identity).
func (net *Network) Relabeled() bool { return net.extID != nil }

// toExt translates an internal node index to the external ID every
// public surface reports; identity when the network is not relabeled.
func (net *Network) toExt(i int) int {
	if net.extID == nil {
		return i
	}
	return int(net.extID[i])
}

// NewNetwork prepares a network over g with the given randomness seed.
// Construction is O(n + Σ deg) plus the locality-order pass (BFS-shaped;
// see graph.LocalityOrder): directed edges are bucketed by their head
// node, then each bucket is resolved against a scratch port index, so
// even a clique builds in time linear in its edge count.
func NewNetwork(g *graph.G, seed int64) *Network {
	n := g.N()
	net := &Network{g: g, seed: seed, intPath: true, tracer: defaultTracer.Load()}
	if strictDead.Load() {
		net.trackDead = true
		net.strict = true
	}
	if p := defaultFaultPlan.Load(); p != nil {
		// The default plan was validated when it was installed, so the
		// attach cannot fail here.
		_ = net.SetFaultPlan(p)
	}
	if !relabelOff.Load() && n > 1 {
		ord := graph.LocalityOrder(g)
		// Adopt the order only when it strictly improves the labeling
		// bandwidth: RCM reverses an already-sequential labeling (equal
		// bandwidth), and paying the translation tables for an order
		// that is no more local than the caller's would cost build time
		// and memory for zero delivery benefit.
		if graph.Bandwidth(g, ord) < graph.Bandwidth(g, nil) {
			net.extID = make([]int32, n)
			net.intID = make([]int32, n)
			for i, v := range ord {
				net.extID[i] = int32(v)
				net.intID[v] = int32(i)
			}
		}
	}
	net.ports = make([][]int, n)
	sum := 0
	if net.extID == nil {
		for v := 0; v < n; v++ {
			net.ports[v] = g.Neighbors(v)
			sum += len(net.ports[v])
		}
	} else {
		// Internal adjacency: node i's port p leads to the internal index
		// of g.Neighbors(extID[i])[p] — the port numbering every node
		// observes is exactly the external adjacency-list order, only the
		// stored endpoints are internal. One flat backing array keeps the
		// lists themselves contiguous in internal order.
		for v := 0; v < n; v++ {
			sum += g.Deg(v)
		}
		flat := make([]int, sum)
		pos := 0
		for i := 0; i < n; i++ {
			nbrs := g.Neighbors(int(net.extID[i]))
			lst := flat[pos : pos+len(nbrs) : pos+len(nbrs)]
			for p, u := range nbrs {
				lst[p] = int(net.intID[u])
			}
			net.ports[i] = lst
			pos += len(nbrs)
		}
	}

	// off[v] = index of v's first directed edge in the flat arrays.
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + len(net.ports[v])
	}
	net.off = off
	net.portsFlat = make([]int32, sum)
	net.revFlat = make([]int32, sum)
	net.rev = make([][]int32, n)
	for v := 0; v < n; v++ {
		net.rev[v] = net.revFlat[off[v]:off[v+1]:off[v+1]]
		for p, u := range net.ports[v] {
			net.portsFlat[off[v]+p] = int32(u)
		}
	}

	// Bucket every directed edge (v, p) under its head u = ports[v][p].
	// Bucket u occupies positions off[u]:off[u+1], so no resizing happens.
	bufV := make([]int32, sum)
	bufP := make([]int32, sum)
	cursor := make([]int, n)
	copy(cursor, off[:n])
	for v := 0; v < n; v++ {
		for p, u := range net.ports[v] {
			i := cursor[u]
			cursor[u]++
			bufV[i] = int32(v)
			bufP[i] = int32(p)
		}
	}
	// For each node u, scratch[w] = port of w in u's list; every entry
	// (v, p) in u's bucket then resolves as rev[v][p] = scratch[v]. Stale
	// scratch entries are never read: bucket u holds exactly u's neighbors.
	scratch := make([]int32, n)
	for u := 0; u < n; u++ {
		for q, w := range net.ports[u] {
			scratch[w] = int32(q)
		}
		for i := off[u]; i < off[u+1]; i++ {
			net.rev[bufV[i]][bufP[i]] = scratch[bufV[i]]
		}
	}

	// Precomputed receiver slots: delivering port p of node v writes lane
	// slot off[u] + rev, both already known here, so the hot loop reads
	// one sequential int32 instead of chasing off[u] through a scattered
	// 8-byte table. Slots only fit int32 when the directed edge count
	// does; beyond that (a >2^31-edge graph) delivery falls back to the
	// two-table lookup.
	if sum <= 1<<31-1 {
		net.slotFlat = make([]int32, sum)
		for i, u := range net.portsFlat {
			net.slotFlat[i] = int32(off[u]) + net.revFlat[i]
		}
	}

	net.setShards(runtime.GOMAXPROCS(0))
	return net
}

// setShards reconfigures the scheduler to use k workers for stepping and
// delivery. Kept under its historical name for the scheduler tests; the
// exported form is SetWorkers.
func (net *Network) setShards(k int) {
	if n := net.g.N(); k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	net.nworkers = k
}

// SetWorkers pins the scheduler's worker-pool size for subsequent runs
// (NewNetwork defaults to GOMAXPROCS). Worker count is a scheduling
// detail: outputs, rounds and stats are identical for every value. Must
// not be called during a run.
func (net *Network) SetWorkers(k int) { net.setShards(k) }

// setBatch forces the node-batch size for subsequent runs (0 restores the
// automatic size). Batching is a scheduling detail with no semantic
// effect; tests use this to exercise batch boundaries.
func (net *Network) setBatch(k int) {
	if k < 0 {
		k = 0
	}
	net.batchSize = k
}

// SetIntFastPath toggles the typed small-integer delivery path (on by
// default). When off, SendInt/BroadcastInt route through the boxed path;
// RecvInt still reads boxed ints, so protocols behave identically — this
// is the ablation hook the int-vs-boxed golden tests pin against.
func (net *Network) SetIntFastPath(on bool) { net.intPath = on }

// Reseed changes the seed that derives per-node randomness (and nothing
// else) for subsequent runs. It makes one network reusable across the
// phases of a composite algorithm — each phase reseeds instead of paying
// a full NewNetwork rebuild. Must not be called during a run.
func (net *Network) Reseed(seed int64) { net.seed = seed }

// Rounds returns the number of synchronous rounds of the last run.
func (net *Network) Rounds() int { return net.rounds }

// LastRunStats returns throughput statistics for the last completed run.
func (net *Network) LastRunStats() RunStats { return net.lastRun }

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.G { return net.g }

// TrackDeadSends toggles the debug mode that records every message staged
// for an already-halted neighbor (the message is dropped either way, as it
// always was). Such sends indicate protocol bugs; read the report with
// DeadSends after the run.
func (net *Network) TrackDeadSends(on bool) { net.trackDead = on }

// DeadSends returns the dead sends recorded during the last run (tracking
// must be enabled before the run starts), sorted by (round, sender, port).
// It returns nil when tracking is off or nothing was dropped.
func (net *Network) DeadSends() []DeadSend {
	var all []DeadSend
	for i := range net.batches {
		all = append(all, net.batches[i].dead...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Port < b.Port
	})
	return all
}

// LateDeadSends returns only the dead sends staged after the sweep the
// receiver halted in — the ones a well-behaved protocol can avoid (a
// halting node can announce itself in its final staged messages, and its
// neighbors read that announcement before staging the following round).
// These are the sends strict mode treats as protocol regressions.
func (net *Network) LateDeadSends() []DeadSend {
	var late []DeadSend
	for _, d := range net.DeadSends() {
		if d.Round > d.HaltRound {
			late = append(late, d)
		}
	}
	return late
}

// Run executes the blocking program f on every node until all halt and
// returns each node's output. The number of rounds used is available via
// Rounds.
func (net *Network) Run(f NodeFunc) []any {
	return net.RunWithInput(f, nil)
}

// RunWithInput is Run with a per-node input value (inputs[v] is readable by
// node v via ctx.Input). inputs may be nil; a non-nil inputs must have
// exactly one entry per node.
func (net *Network) RunWithInput(f NodeFunc, inputs []any) []any {
	net.setup(inputs)
	for i := range net.ctxs {
		net.ctxs[i].startCoro(f)
	}
	step := func(c *Ctx) bool {
		_, ok := c.resume()
		return ok
	}
	return net.runRounds(step, step)
}

// startCoro installs a blocking node's coroutine: the program runs inside
// an iter.Pull sequence whose yield is Ctx.Next's suspension point, so
// resuming it is a direct coroutine switch that never touches the Go
// scheduler.
func (c *Ctx) startCoro(f NodeFunc) {
	next, _ := iter.Pull(func(yield func(struct{}) bool) {
		c.yield = yield
		f(c)
	})
	c.resume = next
}

// Stepped is a node program in the executor's native segmented form, the
// exact unrolling of a blocking NodeFunc at its Next boundaries:
//
//   - Init is the code before the first Next. It runs once per node, may
//     stage messages, and returns false to halt without entering round 1.
//   - Step is the code between two Nexts: it reads the messages of the
//     round that just completed, stages the next round's, and returns
//     false to halt.
//
// Cross-round node state lives in S; the executor keeps all n states in
// one flat array, so stepped programs run without per-node stacks or
// coroutines — segments are plain calls on the worker's own stack. Use
// this form for hot protocols; semantics (rounds, delivery, halting,
// outputs, determinism) are identical to the blocking form.
type Stepped[S any] struct {
	Init func(ctx *Ctx, s *S) bool
	Step func(ctx *Ctx, s *S) bool
}

// RunStepped executes a stepped program on every node until all halt and
// returns each node's output, exactly like Run does for blocking programs.
func RunStepped[S any](net *Network, p Stepped[S]) []any {
	return RunSteppedWithInput(net, p, nil)
}

// RunSteppedWithInput is RunStepped with a per-node input value; inputs
// follows the RunWithInput contract.
func RunSteppedWithInput[S any](net *Network, p Stepped[S], inputs []any) []any {
	net.setup(inputs)
	// States are indexed by internal node, so a batch's step sweep walks
	// this array sequentially.
	states := make([]S, len(net.ctxs))
	init := func(c *Ctx) bool { return p.Init(c, &states[c.iid]) }
	step := func(c *Ctx) bool { return p.Step(c, &states[c.iid]) }
	return net.runRounds(init, step)
}

// setup prepares the per-run state: contexts, flat message lanes,
// receiver flags and batches — and resets every piece of bookkeeping a
// previous run on the same network may have left behind (round counter,
// run stats, message-stat counters; the per-batch dead-send logs and
// halt segments are rebuilt below), so consecutive runs never leak state
// into each other's reports.
func (net *Network) setup(inputs []any) {
	if net.dirty {
		net.rebuildFlat()
	}
	n := net.g.N()
	if inputs != nil && len(inputs) != n {
		panic(fmt.Sprintf("local: RunWithInput: len(inputs) = %d, want %d (one input per node)", len(inputs), n))
	}
	maxDeg := net.g.MaxDegree()
	net.rounds = 0
	net.lastRun = RunStats{}
	if net.stats != nil {
		*net.stats = MessageStats{}
	}
	net.runSeq++
	if net.fault != nil {
		net.faultStats = FaultStats{}
		net.pendFault = net.pendFault[:0]
	}

	total := net.off[n]
	net.ctxs = make([]Ctx, n)
	boxes := make([]Message, 2*total)
	ints := make([]int32, 2*total)
	has := make([]byte, 2*total)
	net.inBoxed, net.outBoxed = boxes[:total:total], boxes[total:]
	net.inInt, net.outInt = ints[:total:total], ints[total:]
	net.inHas, net.outHas = has[:total:total], has[total:]
	net.recvAny = make([]atomic.Bool, n)
	net.recvInt = make([]atomic.Bool, n)
	net.haltSeg = make([]int32, n)
	for v := 0; v < n; v++ {
		c := &net.ctxs[v]
		c.id = net.toExt(v)
		c.iid = v
		c.n = n
		c.maxDeg = maxDeg
		c.net = net
		lo, hi := net.off[v], net.off[v+1]
		c.deg = hi - lo
		c.in = net.inBoxed[lo:hi:hi]
		c.out = net.outBoxed[lo:hi:hi]
		c.inInt = net.inInt[lo:hi:hi]
		c.outInt = net.outInt[lo:hi:hi]
		c.inHas = net.inHas[lo:hi:hi]
		c.outHas = net.outHas[lo:hi:hi]
		if inputs != nil {
			c.input = inputs[c.id]
		}
	}

	bs := net.batchSize
	if bs <= 0 {
		bs = defaultBatchSize(n, net.nworkers)
	}
	nb := (n + bs - 1) / bs
	if nb == 0 {
		nb = 1
	}
	net.batches = make([]batch, nb)
	for i := range net.batches {
		lo := i * bs
		hi := min(lo+bs, n)
		b := &net.batches[i]
		b.live = make([]int32, hi-lo)
		for v := lo; v < hi; v++ {
			b.live[v-lo] = int32(v)
		}
	}
	net.tiled = net.tiledOn
	if net.tiled {
		net.setupTiles(bs)
	}
}

// defaultBatchSize balances per-batch bookkeeping against load-balancing
// granularity: a handful of batches per worker, clamped so tiny networks
// still form one batch and huge ones keep contiguous cache-friendly runs.
func defaultBatchSize(n, workers int) int {
	bs := n / (workers * 8)
	if bs < 64 {
		bs = 64
	}
	if bs > 2048 {
		bs = 2048
	}
	return bs
}

// parallelWork is the phase size below which the coordinator runs the
// phase inline instead of waking the worker pool.
const parallelWork = 256

// Phase identifiers dispatched to workers.
const (
	phaseStep = iota
	phaseDeliver
)

// runRounds drives the shared round engine: init advances every node
// through segment 0, then each iteration folds halts, delivers the staged
// messages and advances every live node by one segment. Matching the
// historical semantics, the final all-halt sweep is not counted as a round
// and its staged messages are dropped.
//
//deltacolor:coordinator
func (net *Network) runRounds(init, step func(*Ctx) bool) []any {
	n := net.g.N()
	start := time.Now()

	// Worker pool: W-1 helpers plus the coordinating goroutine. Helpers
	// park on the command channel between phases, so a phase costs at
	// most O(workers) park/wake transitions — and none at all when it
	// runs inline below the parallelWork threshold or with one worker.
	w := min(net.nworkers, len(net.batches))
	var cmd chan int
	var done chan struct{}
	if w > 1 {
		cmd = make(chan int)
		done = make(chan struct{})
		for i := 1; i < w; i++ {
			go func() {
				for ph := range cmd {
					net.workPhase(ph)
					done <- struct{}{}
				}
			}()
		}
	}
	// phase runs one engine phase; the channel sends publish net.segment
	// and the cursor reset to the helpers (happens-before), and the done
	// receives collect their writes back.
	phase := func(ph, load int) {
		if w <= 1 || load < parallelWork {
			for i := range net.batches {
				net.doBatch(ph, &net.batches[i])
			}
			return
		}
		net.cursor.Store(0)
		for i := 1; i < w; i++ {
			cmd <- ph
		}
		net.workPhase(ph)
		for i := 1; i < w; i++ {
			<-done
		}
	}

	// Tracing: a nil tracer costs one pointer check per phase. Counters
	// mode adds two integer adds per sender inside delivery; full mode
	// additionally takes two timestamps per phase and writes one record
	// per round into the preallocated ring — no allocations either way.
	tr := net.tracer
	net.countMsgs = tr != nil && tr.level >= TraceCounters
	full := tr != nil && tr.level >= TraceFull
	if tr != nil {
		tr.beginRun()
	}

	running := n
	net.segment = init
	var t0 time.Time
	if full {
		t0 = time.Now()
	}
	phase(phaseStep, n)
	if full {
		// The init segment is not a round; its time lands in the
		// cumulative counters only.
		tr.c.StepNanos += time.Since(t0).Nanoseconds()
	}
	for {
		prev := running
		live, senders := 0, 0
		for i := range net.batches {
			b := &net.batches[i]
			running -= b.halts
			b.halts = 0
			live += len(b.live)
			senders += len(b.senders)
		}
		if tr != nil {
			// Halts folded here happened during the previous step sweep;
			// the tracer attributes them to the round recorded last.
			tr.foldHalts(prev - running)
		}
		if running == 0 {
			break
		}
		if net.stats != nil {
			net.recordMessages()
		}
		if net.fault != nil {
			// Delayed/duplicated messages whose due round arrived are
			// written into the inbox lanes before the live senders deliver;
			// a fresh message on the same (receiver, port) slot overwrites
			// the stale injection, matching the one-message-per-edge rule.
			net.injectPending()
		}
		var rt RoundTrace
		if full {
			t0 = time.Now()
			rt.StartNanos = t0.Sub(tr.epoch).Nanoseconds()
		}
		if senders > 0 {
			// While every node is still running no receiver can be halted,
			// so delivery skips the per-message haltSeg lookups entirely
			// (published to the helpers by the phase channel send).
			net.noHalts = running == n
			phase(phaseDeliver, senders)
			if full {
				rt.DeliverNanos = time.Since(t0).Nanoseconds()
			}
		}
		if net.countMsgs {
			for i := range net.batches {
				b := &net.batches[i]
				rt.IntMsgs += int(b.trInts)
				rt.BoxedMsgs += int(b.trBoxed)
				rt.Drops += int(b.trDrops)
				b.trInts, b.trBoxed, b.trDrops = 0, 0, 0
			}
		}
		if net.fault != nil {
			net.drainFault(tr)
		}
		net.rounds++
		net.segment = step
		if full {
			t0 = time.Now()
		}
		phase(phaseStep, live)
		if tr != nil {
			if full {
				rt.StepNanos = time.Since(t0).Nanoseconds()
				rt.Round = net.rounds
				rt.Live = live
				rt.Senders = senders
				tr.record(rt)
			} else {
				tr.countRound(rt.IntMsgs, rt.BoxedMsgs, rt.Drops)
			}
		}
		if net.fault != nil && net.fault.RoundLimit > 0 && net.rounds >= net.fault.RoundLimit {
			// Dropped or delayed messages can stall a protocol forever; the
			// plan's round budget force-halts the run so every faulty
			// execution terminates. Outputs of still-running nodes are
			// whatever they last recorded. A run that finished on its own
			// in exactly the budget (the step sweep above halted everyone)
			// is not flagged as limited.
			rem := running
			for i := range net.batches {
				rem -= net.batches[i].halts
			}
			if rem > 0 {
				net.faultStats.RoundLimited = 1
				break
			}
		}
	}
	if net.fault != nil {
		net.finishFaultRun(tr)
	}
	if w > 1 {
		close(cmd)
	}

	outs := make([]any, n)
	for v := 0; v < n; v++ {
		outs[net.ctxs[v].id] = net.ctxs[v].output
	}
	wall := time.Since(start)
	net.lastRun = RunStats{Nodes: n, Rounds: net.rounds, WallTime: wall}
	if net.rounds > 0 && wall > 0 {
		net.lastRun.RoundsPerSec = float64(net.rounds) / wall.Seconds()
	}
	// An attached FaultPlan voids the protocol-bug detector: injected
	// drops and crash windows legitimately make halt knowledge stale, so
	// late dead sends under faults are expected collateral (the
	// fault-destroyed ones are accounted separately in
	// MessageStats.DroppedByFault), not protocol regressions.
	if net.strict && net.fault == nil {
		if ds := net.LateDeadSends(); len(ds) > 0 {
			panic(fmt.Sprintf("local: strict mode: %d late dead send(s) recorded, first: %s", len(ds), ds[0]))
		}
	}
	return outs
}

// workPhase pulls batches off the shared cursor until the phase is drained.
//
//deltacolor:hotpath
func (net *Network) workPhase(ph int) {
	nb := int64(len(net.batches))
	for {
		i := net.cursor.Add(1) - 1
		if i >= nb {
			return
		}
		net.doBatch(ph, &net.batches[i])
	}
}

// doBatch dispatches one batch to the current phase's kernel. Fault
// injection costs exactly one nil check here when no plan is attached;
// the faulty kernels (fault.go) are separate functions so the healthy
// kernels below stay allocation-free and branch-identical.
//
//deltacolor:hotpath
func (net *Network) doBatch(ph int, b *batch) {
	if ph == phaseStep {
		if net.fault != nil {
			net.stepBatchFaulty(net.segment, b)
			return
		}
		net.stepBatch(net.segment, b)
	} else {
		if net.fault != nil {
			net.deliverBatchFaulty(b)
			return
		}
		if net.tiled {
			net.deliverBatchTiled(b)
			return
		}
		net.deliverBatch(b)
	}
}

// stepBatch advances every live node in the batch by one segment, clears
// the inboxes the node just consumed, collects senders, and compacts
// halted nodes out of the live list.
//
//deltacolor:hotpath
func (net *Network) stepBatch(fn func(*Ctx) bool, b *batch) {
	kept := b.live[:0]
	for _, id := range b.live {
		c := &net.ctxs[id]
		if fn(c) {
			kept = append(kept, id)
		} else {
			net.haltSeg[id] = int32(net.rounds) + 1
			b.halts++
		}
		if net.recvAny[id].Load() {
			clear(c.in)
			net.recvAny[id].Store(false)
		}
		if net.recvInt[id].Load() {
			clearBytes(c.inHas)
			net.recvInt[id].Store(false)
		}
		if c.sentAny {
			b.senders = append(b.senders, id)
		}
	}
	b.live = kept
}

// clearBytes zeroes a byte slice, avoiding the memclr call overhead for
// the tiny presence maps of low-degree nodes.
//
//deltacolor:hotpath
func clearBytes(h []byte) {
	if len(h) <= 16 {
		for i := range h {
			h[i] = 0
		}
		return
	}
	clear(h)
}

// deliverBatch moves every staged message of the batch's senders into the
// receivers' inboxes, working entirely on the flat edge tables — delivery
// never touches receiver contexts or scheduling state. Each (receiver,
// port) slot has a unique sender, so workers on different batches never
// write the same slot; the receiver flags are atomic because distinct
// senders may share a receiver.
//
//deltacolor:hotpath
//deltacolor:coordinator
func (net *Network) deliverBatch(b *batch) {
	// checkHalt is false while no node in the network has halted: the
	// haltSeg lookup is then provably always zero, so the hot loops skip
	// one scattered read per message. slotFlat folds the receiver's
	// off[u]+rev slot computation into one sequential int32 read.
	checkHalt := !net.noHalts
	count := net.countMsgs
	sf := net.slotFlat
	for _, id := range b.senders {
		c := &net.ctxs[id]
		base := net.off[id]
		if c.nBoxed > 0 {
			if count {
				b.trBoxed += c.nBoxed
			}
			out := c.out
			for p, msg := range out {
				if msg == nil {
					continue
				}
				out[p] = nil
				u := net.portsFlat[base+p]
				if checkHalt && net.haltSeg[u] != 0 {
					if count {
						b.trDrops++
					}
					if net.trackDead {
						b.dead = append(b.dead, DeadSend{From: c.id, Port: p, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
					}
					continue
				}
				var slot int
				if sf != nil {
					slot = int(sf[base+p])
				} else {
					slot = net.off[u] + int(net.revFlat[base+p])
				}
				net.inBoxed[slot] = msg
				if !net.recvAny[u].Load() {
					net.recvAny[u].Store(true)
				}
			}
			c.nBoxed = 0
		}
		if c.nInts > 0 {
			if count {
				b.trInts += c.nInts
			}
			oh := c.outHas
			for p, h := range oh {
				if h == 0 {
					continue
				}
				oh[p] = 0
				u := net.portsFlat[base+p]
				if checkHalt && net.haltSeg[u] != 0 {
					if count {
						b.trDrops++
					}
					if net.trackDead {
						b.dead = append(b.dead, DeadSend{From: c.id, Port: p, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
					}
					continue
				}
				var slot int
				if sf != nil {
					slot = int(sf[base+p])
				} else {
					slot = net.off[u] + int(net.revFlat[base+p])
				}
				net.inInt[slot] = c.outInt[p]
				net.inHas[slot] = 1
				if !net.recvInt[u].Load() {
					net.recvInt[u].Store(true)
				}
			}
			c.nInts = 0
		}
		c.sentAny = false
	}
	b.senders = b.senders[:0]
}

// Accountant aggregates rounds across the phases of a composite algorithm.
// With StartSpans it additionally collects a nested wall-time timeline
// (see trace.go); the flat phase list below is unaffected by spans, so
// round accounting stays byte-identical with tracing on or off.
type Accountant struct {
	phases []PhaseStat
	spans  *spanState // non-nil between StartSpans and FinishSpans
}

// PhaseStat records the round cost of one named phase.
type PhaseStat struct {
	Name   string
	Rounds int
}

// Charge adds rounds under the given phase name. When span collection is
// active, the charge also becomes a leaf span under the innermost open
// span, carrying the wall time and engine messages since the previous
// charge or span boundary.
func (a *Accountant) Charge(name string, rounds int) {
	a.phases = append(a.phases, PhaseStat{Name: name, Rounds: rounds})
	if a.spans != nil {
		a.chargeSpan(name, rounds)
	}
}

// Total returns the summed rounds over all phases.
func (a *Accountant) Total() int {
	t := 0
	for _, p := range a.phases {
		t += p.Rounds
	}
	return t
}

// Phases returns a copy of the per-phase breakdown.
func (a *Accountant) Phases() []PhaseStat {
	return append([]PhaseStat(nil), a.phases...)
}

// String renders the breakdown, e.g. "linial:5 + layers:12 = 17".
func (a *Accountant) String() string {
	s := ""
	for i, p := range a.phases {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%s:%d", p.Name, p.Rounds)
	}
	return fmt.Sprintf("%s = %d", s, a.Total())
}
