// Package local implements the LOCAL model of distributed computing as a
// runtime: one goroutine per node, synchronous rounds enforced by a sharded
// barrier, per-round message delivery along edges, and automatic round
// accounting.
//
// An algorithm is a function executed by every node against a *Ctx. Nodes
// know initially only their own ID, their degree and port numbering, and
// the global parameters n and Δ (as is standard in the LOCAL model). A node
// communicates by writing messages to ports and calling Next, which blocks
// until every running node has finished the round; Next returns the
// messages that arrived. A node halts by returning from the function; its
// final state is whatever the algorithm recorded through SetOutput.
//
// Messages are unbounded (LOCAL model), so any t-round algorithm is
// equivalent to a function of the t-hop neighborhood; GatherBall implements
// exactly that flooding pattern as a reusable building block.
//
// # Scheduler architecture
//
// The runtime is built to stay out of the way at large n:
//
//   - Port tables are built in O(n + Σ deg) by bucketing directed edges by
//     their head, so even dense graphs (cliques) construct in linear time.
//   - Nodes are partitioned into GOMAXPROCS shards. Each shard keeps its
//     own arrival counter and sender list, so barrier traffic does not
//     funnel through a single mutex; the round flips over a channel gate
//     (close-to-broadcast), avoiding a condvar wake-up storm.
//   - The runtime tracks the active set: only nodes that staged messages
//     this round are visited during delivery, and each node clears its own
//     inbox on barrier entry only when something was delivered to it. A
//     round in which k nodes communicate costs O(k + messages), not O(n).
//   - Halted nodes park permanently: their goroutines exit and they are
//     never touched again by delivery or clearing.
//   - Message delivery is sharded across workers when the round is large
//     enough to pay for the fan-out.
//
// Determinism is unaffected by the sharding: message (receiver, port)
// slots are fixed by the port numbering, per-node randomness is derived
// from (seed, ID) alone, and round completion is a pure function of which
// nodes arrived.
package local

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deltacolor/graph"
)

// Message is any value sent along an edge in one round.
type Message any

// NodeFunc is the per-node program. It runs in its own goroutine; it must
// communicate only through ctx and must return to halt.
type NodeFunc func(ctx *Ctx)

// Ctx is a node's interface to the network during a run.
type Ctx struct {
	id     int
	deg    int
	n      int
	maxDeg int
	shard  int32
	rng    *rand.Rand // lazily created; see Rand

	net     *Network
	in      []Message // in[p] = message received on port p this round (nil if none)
	out     []Message // staged outgoing messages
	output  any
	input   any
	sentAny bool // staged at least one Send/Broadcast this round (owner-only)
	halted  bool // set by the owner before its final arrival

	// recvDirty is set by delivery workers when a message lands in the
	// inbox; the owner clears the inbox (and the flag) on barrier entry.
	// Atomic because two workers delivering from different senders may
	// flag the same receiver concurrently.
	recvDirty atomic.Bool
}

// ID returns this node's unique identifier in [0, n).
func (c *Ctx) ID() int { return c.id }

// Degree returns the node's degree (number of ports).
func (c *Ctx) Degree() int { return c.deg }

// N returns the number of nodes in the network (global knowledge, standard
// in the LOCAL model).
func (c *Ctx) N() int { return c.n }

// MaxDegree returns Δ, the maximum degree of the network.
func (c *Ctx) MaxDegree() int { return c.maxDeg }

// Rand returns the node's private randomness source (deterministically
// derived from the run seed and the node ID). The generator is created on
// first use: seeding math/rand state is the single most expensive part of
// node setup, and most deterministic protocols never draw randomness.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.net.seed*1_000_003 + int64(c.id)))
	}
	return c.rng
}

// Input returns the per-node input installed by RunWithInput (nil if none).
func (c *Ctx) Input() any { return c.input }

// Send stages msg to be delivered to the neighbor on port p at the end of
// the current round. A second Send on the same port overwrites the first
// (one message per edge per round; messages are unbounded so algorithms
// bundle what they need).
func (c *Ctx) Send(p int, msg Message) {
	c.out[p] = msg
	c.sentAny = true
}

// Broadcast stages msg on every port.
func (c *Ctx) Broadcast(msg Message) {
	for p := range c.out {
		c.out[p] = msg
	}
	c.sentAny = len(c.out) > 0
}

// Recv returns the message received on port p in the last completed round,
// or nil.
func (c *Ctx) Recv(p int) Message { return c.in[p] }

// Next completes the current round: staged messages are delivered and the
// node blocks until all running nodes reach the barrier. It returns after
// incoming messages for the new round are available via Recv.
func (c *Ctx) Next() {
	c.net.barrier(c, false)
}

// SetOutput records the node's output (its color, mark, level, ...).
func (c *Ctx) SetOutput(v any) { c.output = v }

// Output returns the value recorded by SetOutput.
func (c *Ctx) Output() any { return c.output }

// shard groups a subset of the nodes (v belongs to shard v mod nshards).
// Each shard has its own arrival counter and sender list so that barrier
// entry from different shards touches different cache lines.
type shard struct {
	pending atomic.Int64 // arrivals still missing from this shard this round
	running int64        // non-halted nodes in this shard (coordinator-owned)
	halts   atomic.Int64 // halts observed this round, folded into running

	sendMu  sync.Mutex
	senders []*Ctx // shard members that staged sends this round

	dead []DeadSend // sends to halted receivers found while delivering this shard

	_ [64]byte // pad to keep shards off each other's cache lines
}

// DeadSend records a message that was staged for a neighbor that had
// already halted; the message is dropped. Such sends usually indicate a
// protocol bug in the node program (the sender believes the neighbor is
// still participating). Enable tracking with Network.TrackDeadSends.
type DeadSend struct {
	From  int // sender node ID
	Port  int // sender's port the message was staged on
	To    int // halted receiver node ID
	Round int // 1-based round in which the send was staged
}

func (d DeadSend) String() string {
	return fmt.Sprintf("round %d: node %d sent to halted node %d on port %d", d.Round, d.From, d.To, d.Port)
}

// RunStats summarizes the throughput of the last Run.
type RunStats struct {
	Nodes        int
	Rounds       int
	WallTime     time.Duration
	RoundsPerSec float64 // 0 when the run had no rounds
}

// Network runs NodeFuncs over a graph.
type Network struct {
	g     *graph.G
	ports [][]int   // ports[v][p] = neighbor on port p (== g.Neighbors(v))
	rev   [][]int32 // rev[v][p] = port index of v on ports[v][p]'s side
	seed  int64

	rounds   int
	lastRun  RunStats
	shards   []shard
	nshards  int
	ctxs     []Ctx
	gate     atomic.Pointer[chan struct{}] // current round's release gate
	shardsIn atomic.Int64                  // shards whose pending hit zero this round

	stats     *MessageStats // non-nil when EnableMessageStats was called
	trackDead bool          // record sends to halted neighbors
}

// NewNetwork prepares a network over g with the given randomness seed.
// Construction is O(n + Σ deg): directed edges are bucketed by their head
// node, then each bucket is resolved against a scratch port index, so even
// a clique builds in time linear in its edge count.
func NewNetwork(g *graph.G, seed int64) *Network {
	n := g.N()
	net := &Network{g: g, seed: seed}
	net.ports = make([][]int, n)
	sum := 0
	for v := 0; v < n; v++ {
		net.ports[v] = g.Neighbors(v)
		sum += len(net.ports[v])
	}

	// off[v] = index of v's first directed edge in the flat arrays.
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + len(net.ports[v])
	}
	revFlat := make([]int32, sum)
	net.rev = make([][]int32, n)
	for v := 0; v < n; v++ {
		net.rev[v] = revFlat[off[v]:off[v+1]:off[v+1]]
	}

	// Bucket every directed edge (v, p) under its head u = ports[v][p].
	// Bucket u occupies positions off[u]:off[u+1], so no resizing happens.
	bufV := make([]int32, sum)
	bufP := make([]int32, sum)
	cursor := make([]int, n)
	copy(cursor, off[:n])
	for v := 0; v < n; v++ {
		for p, u := range net.ports[v] {
			i := cursor[u]
			cursor[u]++
			bufV[i] = int32(v)
			bufP[i] = int32(p)
		}
	}
	// For each node u, scratch[w] = port of w in u's list; every entry
	// (v, p) in u's bucket then resolves as rev[v][p] = scratch[v]. Stale
	// scratch entries are never read: bucket u holds exactly u's neighbors.
	scratch := make([]int32, n)
	for u := 0; u < n; u++ {
		for q, w := range net.ports[u] {
			scratch[w] = int32(q)
		}
		for i := off[u]; i < off[u+1]; i++ {
			net.rev[bufV[i]][bufP[i]] = scratch[bufV[i]]
		}
	}

	net.setShards(runtime.GOMAXPROCS(0))
	return net
}

// setShards reconfigures the scheduler to use k shards (and up to k
// delivery workers). NewNetwork picks GOMAXPROCS; tests and benchmarks
// use this to exercise or pin the sharded paths. Must not be called
// during a Run.
func (net *Network) setShards(k int) {
	if n := net.g.N(); k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	net.nshards = k
	net.shards = make([]shard, k)
}

// Rounds returns the number of synchronous rounds of the last Run.
func (net *Network) Rounds() int { return net.rounds }

// LastRunStats returns throughput statistics for the last completed Run.
func (net *Network) LastRunStats() RunStats { return net.lastRun }

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.G { return net.g }

// TrackDeadSends toggles the debug mode that records every message staged
// for an already-halted neighbor (the message is dropped either way, as it
// always was). Such sends indicate protocol bugs; read the report with
// DeadSends after the run.
func (net *Network) TrackDeadSends(on bool) { net.trackDead = on }

// DeadSends returns the dead sends recorded during the last Run (tracking
// must be enabled before the Run starts), sorted by (round, sender, port).
// It returns nil when tracking is off or nothing was dropped.
func (net *Network) DeadSends() []DeadSend {
	var all []DeadSend
	for i := range net.shards {
		all = append(all, net.shards[i].dead...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Port < b.Port
	})
	return all
}

// Run executes f on every node until all halt and returns each node's
// output. The number of rounds used is available via Rounds.
func (net *Network) Run(f NodeFunc) []any {
	return net.RunWithInput(f, nil)
}

// RunWithInput is Run with a per-node input value (inputs[v] is readable by
// node v via ctx.Input). inputs may be nil; a non-nil inputs must have
// exactly one entry per node.
func (net *Network) RunWithInput(f NodeFunc, inputs []any) []any {
	n := net.g.N()
	if inputs != nil && len(inputs) != n {
		panic(fmt.Sprintf("local: RunWithInput: len(inputs) = %d, want %d (one input per node)", len(inputs), n))
	}
	maxDeg := net.g.MaxDegree()
	net.rounds = 0
	start := time.Now()

	// Flat allocations: one Ctx array and one Message array backing every
	// inbox and outbox, instead of 3n small allocations.
	net.ctxs = make([]Ctx, n)
	deg := make([]int, n+1)
	for v := 0; v < n; v++ {
		deg[v+1] = deg[v] + net.g.Deg(v)
	}
	boxes := make([]Message, 2*deg[n])
	inFlat, outFlat := boxes[:deg[n]], boxes[deg[n]:]
	for v := 0; v < n; v++ {
		c := &net.ctxs[v]
		c.id = v
		c.deg = deg[v+1] - deg[v]
		c.n = n
		c.maxDeg = maxDeg
		c.shard = int32(v % net.nshards)
		c.net = net
		c.in = inFlat[deg[v]:deg[v+1]:deg[v+1]]
		c.out = outFlat[deg[v]:deg[v+1]:deg[v+1]]
		if inputs != nil {
			c.input = inputs[v]
		}
	}
	for i := range net.shards {
		sh := &net.shards[i]
		sh.running = 0
		sh.halts.Store(0)
		sh.senders = sh.senders[:0]
		sh.dead = sh.dead[:0]
	}
	for v := 0; v < n; v++ {
		net.shards[v%net.nshards].running++
	}
	active := int64(0)
	for i := range net.shards {
		sh := &net.shards[i]
		sh.pending.Store(sh.running)
		if sh.running > 0 {
			active++
		}
	}
	net.shardsIn.Store(active)
	gate := make(chan struct{})
	net.gate.Store(&gate)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(c *Ctx) {
			defer wg.Done()
			f(c)
			net.barrier(c, true)
		}(&net.ctxs[v])
	}
	wg.Wait()

	outs := make([]any, n)
	for v := 0; v < n; v++ {
		outs[v] = net.ctxs[v].output
	}
	wall := time.Since(start)
	net.lastRun = RunStats{Nodes: n, Rounds: net.rounds, WallTime: wall}
	if net.rounds > 0 && wall > 0 {
		net.lastRun.RoundsPerSec = float64(net.rounds) / wall.Seconds()
	}
	return outs
}

// barrier is called by node goroutines at the end of each round (halt=false)
// or when the node function returns (halt=true). The last arriver across
// all shards becomes the round coordinator: it performs delivery, resets
// the counters and opens the gate.
func (net *Network) barrier(c *Ctx, halt bool) {
	// The owner clears its own inbox: the previous round's messages have
	// been consumed by the time the node re-enters the barrier. Nodes that
	// received nothing skip the sweep entirely.
	if c.recvDirty.Load() {
		for p := range c.in {
			c.in[p] = nil
		}
		c.recvDirty.Store(false)
	}
	sh := &net.shards[c.shard]
	if c.sentAny {
		sh.sendMu.Lock()
		sh.senders = append(sh.senders, c)
		sh.sendMu.Unlock()
	}
	if halt {
		c.halted = true
		sh.halts.Add(1)
		net.arrive(sh)
		return
	}
	// Read the gate before announcing arrival: once the final arrival is
	// in, the coordinator may swap gates at any moment.
	gate := *net.gate.Load()
	if net.arrive(sh) {
		return
	}
	<-gate
}

// arrive records one barrier arrival. It returns true when the caller was
// the round coordinator (and the round has been completed), false when the
// caller should wait on the gate it loaded before arriving.
func (net *Network) arrive(sh *shard) bool {
	if sh.pending.Add(-1) != 0 {
		return false
	}
	if net.shardsIn.Add(-1) != 0 {
		return false
	}
	net.completeRound()
	return true
}

// completeRound runs on the coordinator once every running node has
// arrived: it folds halts into the shard populations, delivers the staged
// messages of the active senders, advances the round and opens the gate.
// No locks are needed: all arrivals happened-before the final counter
// decrement, and waiters resume only after the gate is closed.
func (net *Network) completeRound() {
	running := int64(0)
	for i := range net.shards {
		sh := &net.shards[i]
		sh.running -= sh.halts.Swap(0)
		running += sh.running
	}
	if running == 0 {
		// Every node has halted: nothing to deliver and nobody to wake
		// (matching the original semantics, the final all-halt round is
		// not counted and its staged messages are dropped).
		return
	}
	if net.stats != nil {
		net.recordMessages()
	}
	net.deliver()
	net.rounds++
	active := int64(0)
	for i := range net.shards {
		sh := &net.shards[i]
		sh.pending.Store(sh.running)
		if sh.running > 0 {
			active++
		}
	}
	net.shardsIn.Store(active)
	next := make(chan struct{})
	old := net.gate.Swap(&next)
	close(*old)
}

// deliver moves every staged message of this round's senders into the
// receivers' inboxes, fanning out across workers when the round is large
// enough to amortize goroutine startup.
func (net *Network) deliver() {
	workers := net.nshards
	if workers > 1 {
		total := 0
		for i := range net.shards {
			total += len(net.shards[i].senders)
		}
		if total < 256 {
			workers = 1
		}
	}
	if workers <= 1 {
		for i := range net.shards {
			net.deliverShard(&net.shards[i])
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < net.nshards; i += workers {
				net.deliverShard(&net.shards[i])
			}
		}(w)
	}
	wg.Wait()
}

// deliverShard delivers the staged messages of one shard's senders. Each
// (receiver, port) slot has a unique sender, so workers on different
// shards never write the same slot; the receiver's dirty flag is atomic
// because distinct senders may share a receiver.
func (net *Network) deliverShard(sh *shard) {
	for _, c := range sh.senders {
		ports, rev := net.ports[c.id], net.rev[c.id]
		for p, msg := range c.out {
			if msg == nil {
				continue
			}
			c.out[p] = nil
			uc := &net.ctxs[ports[p]]
			if uc.halted {
				if net.trackDead {
					sh.dead = append(sh.dead, DeadSend{From: c.id, Port: p, To: uc.id, Round: net.rounds + 1})
				}
				continue
			}
			uc.in[rev[p]] = msg
			if !uc.recvDirty.Load() {
				uc.recvDirty.Store(true)
			}
		}
		c.sentAny = false
	}
	sh.senders = sh.senders[:0]
}

// Accountant aggregates rounds across the phases of a composite algorithm.
type Accountant struct {
	phases []PhaseStat
}

// PhaseStat records the round cost of one named phase.
type PhaseStat struct {
	Name   string
	Rounds int
}

// Charge adds rounds under the given phase name.
func (a *Accountant) Charge(name string, rounds int) {
	a.phases = append(a.phases, PhaseStat{Name: name, Rounds: rounds})
}

// Total returns the summed rounds over all phases.
func (a *Accountant) Total() int {
	t := 0
	for _, p := range a.phases {
		t += p.Rounds
	}
	return t
}

// Phases returns a copy of the per-phase breakdown.
func (a *Accountant) Phases() []PhaseStat {
	return append([]PhaseStat(nil), a.phases...)
}

// String renders the breakdown, e.g. "linial:5 + layers:12 = 17".
func (a *Accountant) String() string {
	s := ""
	for i, p := range a.phases {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%s:%d", p.Name, p.Rounds)
	}
	return fmt.Sprintf("%s = %d", s, a.Total())
}
