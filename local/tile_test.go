package local

import (
	"reflect"
	"runtime/debug"
	"testing"

	"deltacolor/graph"
)

// captureTiled is captureRun with an explicit tiled-delivery setting and
// an optional forced batch size (0 keeps the default).
func captureTiled(g *graph.G, seed int64, tiled bool, batch int, f NodeFunc) runOutcome {
	net := NewNetwork(g, seed)
	net.SetTiledDelivery(tiled)
	if batch > 0 {
		net.setBatch(batch)
	}
	net.TrackDeadSends(true)
	net.EnableMessageStats()
	outs := net.Run(f)
	return runOutcome{
		outs:   outs,
		rounds: net.Rounds(),
		dead:   net.DeadSends(),
		late:   net.LateDeadSends(),
		stats:  *net.MessageStats(),
	}
}

// tileMixedProto exercises both delivery lanes with irregular halting:
// even rounds ride the int fast path, odd rounds ship boxed payloads, and
// nodes halt at staggered rounds so the tiled kernel's drop bookkeeping
// and dead-send records are on the line, not just the happy path.
func tileMixedProto(ctx *Ctx) {
	sum := ctx.Rand().Intn(1000)
	rounds := 2 + ctx.ID()%4
	for i := 0; i < rounds; i++ {
		if i%2 == 0 {
			ctx.BroadcastInt(sum)
		} else {
			ctx.Broadcast([2]int{ctx.ID(), sum})
		}
		ctx.Next()
		for p := 0; p < ctx.Degree(); p++ {
			switch m := ctx.Recv(p).(type) {
			case int:
				sum += m
			case [2]int:
				sum += m[1]
			}
		}
	}
	ctx.SetOutput(sum)
}

// TestTiledDeliveryInvariance pins the tiled kernel byte-identical to the
// plain one on every observable surface — outputs, rounds, dead-send
// records (including lateness classification) and message stats — across
// batch sizes that force multi-batch delivery, and under relabeling both
// on and off.
func TestTiledDeliveryInvariance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := scrambledGraph(150, seed)
		for _, relabel := range []bool{true, false} {
			for _, batch := range []int{0, 7, 64} {
				var plain, tiled runOutcome
				withRelabel(relabel, func() {
					plain = captureTiled(g, seed, false, batch, tileMixedProto)
					tiled = captureTiled(g, seed, true, batch, tileMixedProto)
				})
				if !reflect.DeepEqual(plain, tiled) {
					t.Fatalf("seed %d relabel=%v batch=%d: tiled delivery diverges:\nplain %+v\ntiled %+v",
						seed, relabel, batch, plain, tiled)
				}
				if len(plain.dead) == 0 {
					t.Fatalf("seed %d: protocol staged no dead sends; drop path untested", seed)
				}
			}
		}
	}
}

// TestTiledDeliveryStepped runs the stepped gather and component kernels
// under tiled delivery: flat balls and component labels must match the
// plain-delivery runs exactly.
func TestTiledDeliveryStepped(t *testing.T) {
	g := scrambledGraph(90, 4)

	plainNet := NewNetwork(g, 1)
	plainBalls := GatherStepped(plainNet, 3)
	tiledNet := NewNetwork(g, 1)
	tiledNet.SetTiledDelivery(true)
	tiledBalls := GatherStepped(tiledNet, 3)
	if plainNet.Rounds() != tiledNet.Rounds() {
		t.Fatalf("gather rounds: plain %d, tiled %d", plainNet.Rounds(), tiledNet.Rounds())
	}
	if !reflect.DeepEqual(plainBalls, tiledBalls) {
		t.Fatal("tiled gather balls differ from plain delivery")
	}

	sparse := randomGraph(120, 0.015, 12)
	pn := NewNetwork(sparse, 1)
	pComp, pCount, pOK := CollectComponents(pn)
	tn := NewNetwork(sparse, 1)
	tn.SetTiledDelivery(true)
	tComp, tCount, tOK := CollectComponents(tn)
	if pOK != tOK || pCount != tCount || !reflect.DeepEqual(pComp, tComp) {
		t.Fatal("tiled component collection differs from plain delivery")
	}
}

// TestTiledDeliveryToggleReadback pins the hook surface.
func TestTiledDeliveryToggleReadback(t *testing.T) {
	net := NewNetwork(pathGraph(4), 1)
	if net.TiledDelivery() {
		t.Fatal("tiled delivery must default off")
	}
	net.SetTiledDelivery(true)
	if !net.TiledDelivery() {
		t.Fatal("SetTiledDelivery(true) not readable")
	}
}

// TestTiledIntZeroAllocsPerRound: the tile staging arrays are sized once
// at setup, so tiled delivery of int-lane protocols must stay
// allocation-free per round like the plain kernel.
func TestTiledIntZeroAllocsPerRound(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := cycleGraph(512)
	src := make([]bool, 512)
	src[0] = true
	measure := func(radius int) float64 {
		return testing.AllocsPerRun(3, func() {
			net := NewNetwork(g, 1)
			net.SetTiledDelivery(true)
			FloodStepped(net, src, radius)
		})
	}
	short, long := measure(5), measure(105)
	perRound := (long - short) / 100
	if perRound > 0.05 {
		t.Fatalf("tiled int delivery allocates %.2f allocs/round (short=%.0f long=%.0f), want 0", perRound, short, long)
	}
}
