package local

// Round-level tracing and the span layer.
//
// The round engine's end-of-run aggregates (RunStats, MessageStats,
// Accountant round sums) say what a run cost, not where the cost went. The
// types here turn the engine into something profileable:
//
//   - Tracer hooks into runRounds and records, per round, the wall time of
//     the two engine phases (step, deliver), the live-node and sender
//     counts, the staged messages split by lane (int fast path vs boxed),
//     and halt/drop events — into a preallocated ring buffer, so tracing a
//     run allocates nothing per round. A disabled tracer costs one nil
//     check per phase; the zero-allocs-per-round guarantee of the int path
//     holds with tracing off (and on — the ring is preallocated).
//   - The span layer extends Accountant into a nested timeline
//     (pipeline → phase → primitive): StartSpans opens a root span,
//     Begin/End group charges, and every Charge becomes a leaf span
//     carrying the rounds charged, the wall time since the previous mark
//     (exactly the computation that produced the charge), and the engine
//     messages counted by the tracer in that window.
//
// Exporters for both (Chrome trace-event JSON for Perfetto, compact JSONL)
// live in traceexport.go.

import (
	"sync/atomic"
	"time"
)

// TraceLevel selects how much the tracer records.
type TraceLevel int32

const (
	// TraceOff records nothing (the zero value; equivalent to no tracer).
	TraceOff TraceLevel = iota
	// TraceCounters accumulates the cumulative counters (rounds, messages
	// by lane, drops, halts) without per-round records or timing — the
	// cost is two integer adds per sender during delivery.
	TraceCounters
	// TraceFull additionally records one RoundTrace per engine round into
	// the ring buffer, with per-phase wall times.
	TraceFull
)

// RoundTrace is one engine round as the tracer saw it.
type RoundTrace struct {
	// Run is the tracer-scoped run sequence number: a composite pipeline
	// executes many engine runs (one per primitive invocation) against
	// one tracer, and Run tells their rounds apart.
	Run   int `json:"run"`
	Round int `json:"round"` // 1-based round within the run
	// Live is the number of nodes stepped in this round; Senders the
	// number that had staged messages delivered at its start; Halts the
	// number that halted during this round's step sweep.
	Live    int `json:"live"`
	Senders int `json:"senders"`
	Halts   int `json:"halts"`
	// IntMsgs / BoxedMsgs split the round's staged messages by delivery
	// lane (the typed int32 fast path vs boxed payloads); Drops counts
	// the subset staged for already-halted receivers (never delivered).
	IntMsgs   int `json:"int_msgs"`
	BoxedMsgs int `json:"boxed_msgs"`
	Drops     int `json:"drops"`
	// StartNanos is the offset of the round's delivery phase from the
	// tracer epoch; DeliverNanos and StepNanos are the wall times of the
	// two engine phases (delivery is 0 when no node sent).
	StartNanos   int64 `json:"start_ns"`
	DeliverNanos int64 `json:"deliver_ns"`
	StepNanos    int64 `json:"step_ns"`
}

// Counters is the tracer's cumulative view across every run it
// observed — the counters snapshot a monitoring endpoint would poll.
type Counters struct {
	Runs          int64 `json:"runs"`
	Rounds        int64 `json:"rounds"`
	IntMessages   int64 `json:"int_messages"`
	BoxedMessages int64 `json:"boxed_messages"`
	Drops         int64 `json:"drops"` // staged for halted receivers
	Halts         int64 `json:"halts"`
	// Phase wall times, accumulated only at TraceFull (counters-only
	// tracing takes no timestamps).
	StepNanos    int64 `json:"step_ns"`
	DeliverNanos int64 `json:"deliver_ns"`
	// Fault-injection counters (fault.go), accumulated only when a
	// FaultPlan is attached to the traced network: messages destroyed by
	// the plan (drops plus crash-window drops), duplicated deliveries,
	// and delayed deliveries.
	FaultDrops  int64 `json:"fault_drops,omitempty"`
	FaultDups   int64 `json:"fault_dups,omitempty"`
	FaultDelays int64 `json:"fault_delays,omitempty"`
}

// Messages returns the total staged messages across both lanes.
func (c Counters) Messages() int64 { return c.IntMessages + c.BoxedMessages }

// Tracer records engine activity. Attach one to a network with
// Network.SetTracer, or process-wide with SetDefaultTracer (networks pick
// the default up at construction). A Tracer is written only by the
// coordinating goroutine of a run, so one tracer may observe many networks
// as long as their runs do not overlap — exactly the shape of the
// composite pipelines, which run primitives sequentially on the networks
// they build internally.
type Tracer struct {
	level TraceLevel
	epoch time.Time

	ring []RoundTrace // preallocated; wraps, keeping the most recent records
	head int          // next write position
	size int          // valid records (<= len(ring))
	run  int          // run sequence number

	c Counters

	last *RoundTrace // record whose Halts is finalized at the next fold
}

// DefaultRingCap is the ring size NewTracer uses when capacity <= 0:
// enough for every engine round of a typical composite run, small enough
// that an always-on tracer costs a few megabytes.
const DefaultRingCap = 1 << 16

// NewTracer returns a tracer recording at the given level. capacity sizes
// the round ring buffer (TraceFull only; <= 0 selects DefaultRingCap).
// The epoch — the zero point of every recorded timestamp — is the moment
// of creation.
func NewTracer(level TraceLevel, capacity int) *Tracer {
	t := &Tracer{level: level, epoch: time.Now()}
	if level >= TraceFull {
		if capacity <= 0 {
			capacity = DefaultRingCap
		}
		t.ring = make([]RoundTrace, capacity)
	}
	return t
}

// Level reports the tracer's recording level.
func (t *Tracer) Level() TraceLevel { return t.level }

// Now returns the current offset from the tracer epoch — the timebase
// every RoundTrace and Span timestamp shares.
func (t *Tracer) Now() time.Duration { return time.Since(t.epoch) }

// Counters returns a snapshot of the cumulative counters.
func (t *Tracer) Counters() Counters { return t.c }

// Rounds returns the recorded rounds, oldest first (at most the ring
// capacity; earlier rounds of a long run are overwritten).
func (t *Tracer) Rounds() []RoundTrace {
	out := make([]RoundTrace, t.size)
	start := t.head - t.size
	for i := range out {
		out[i] = t.ring[(start+i+len(t.ring))%len(t.ring)]
	}
	return out
}

// Reset clears the ring and the counters (the epoch is preserved, so
// records before and after a reset stay on one timeline).
func (t *Tracer) Reset() {
	t.head, t.size = 0, 0
	t.run = 0
	t.c = Counters{}
	t.last = nil
}

// beginRun opens a new engine run on the tracer.
func (t *Tracer) beginRun() {
	t.run++
	t.c.Runs++
	t.last = nil
}

// foldHalts attributes halts discovered at a fold point: they happened
// during the previous step sweep, i.e. in the round recorded last (or the
// init segment, which has no record).
//
//deltacolor:hotpath
func (t *Tracer) foldHalts(halts int) {
	if halts == 0 {
		return
	}
	t.c.Halts += int64(halts)
	if t.last != nil {
		t.last.Halts += halts
	}
}

// record appends one round to the ring and the counters. The Halts field
// is finalized later by foldHalts.
//
//deltacolor:hotpath
func (t *Tracer) record(r RoundTrace) {
	t.c.Rounds++
	t.c.IntMessages += int64(r.IntMsgs)
	t.c.BoxedMessages += int64(r.BoxedMsgs)
	t.c.Drops += int64(r.Drops)
	t.c.StepNanos += r.StepNanos
	t.c.DeliverNanos += r.DeliverNanos
	if t.ring == nil {
		t.last = nil
		return
	}
	r.Run = t.run
	t.ring[t.head] = r
	t.last = &t.ring[t.head]
	t.head = (t.head + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
}

// countRound folds a counters-only round (no ring record, no timing).
//
//deltacolor:hotpath
func (t *Tracer) countRound(ints, boxed, drops int) {
	t.c.Rounds++
	t.c.IntMessages += int64(ints)
	t.c.BoxedMessages += int64(boxed)
	t.c.Drops += int64(drops)
}

// countFaults folds one round's fault-injection counters (drained by the
// coordinator from the batch kernels in fault.go).
func (t *Tracer) countFaults(drops, dups, delays int64) {
	t.c.FaultDrops += drops
	t.c.FaultDups += dups
	t.c.FaultDelays += delays
}

// defaultTracer is the package-wide tracer networks created afterwards
// attach (see SetDefaultTracer).
var defaultTracer atomic.Pointer[Tracer]

// SetDefaultTracer installs tr as the tracer every subsequently
// constructed Network attaches (nil uninstalls). The composite pipelines
// build networks internally — one per primitive — so this is the hook
// that lets a single tracer observe a whole deltacolor.Color run without
// threading it through every constructor. Like SetStrictDeadSends it is a
// process-wide default, intended for tools (cmd/deltacolor -trace) and
// harnesses, not for concurrent tracing of independent runs.
func SetDefaultTracer(tr *Tracer) { defaultTracer.Store(tr) }

// DefaultTracer returns the tracer installed by SetDefaultTracer, or nil.
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetTracer attaches tr to this network for subsequent runs (overriding
// the default the network picked up at construction; nil detaches). Must
// not be called during a run.
func (net *Network) SetTracer(tr *Tracer) { net.tracer = tr }

// Tracer returns the tracer attached to this network, or nil.
func (net *Network) Tracer() *Tracer { return net.tracer }

// ---------------------------------------------------------------------------
// Span layer.

// Span is one named segment of a composite algorithm's timeline: the root
// span is the pipeline, its children are the pipeline's phases, and the
// leaves are the primitive invocations the Accountant charged. Timestamps
// share the tracer's epoch when one was attached (so spans align with the
// engine's RoundTrace records in an exported timeline).
type Span struct {
	Name string `json:"name"`
	// StartNanos is the offset from the epoch; DurNanos the wall time.
	// For a leaf created by Charge, the wall time is the span since the
	// previous mark — exactly the computation (central and simulated)
	// that produced the charge.
	StartNanos int64 `json:"start_ns"`
	DurNanos   int64 `json:"dur_ns"`
	// Rounds is the charged LOCAL rounds (leaves carry their charge;
	// interior spans the sum of their subtree, rolled up by FinishSpans).
	Rounds int `json:"rounds"`
	// Messages is the number of engine messages staged in the span's
	// window, from the tracer's lane counters; 0 without a counting
	// tracer.
	Messages int64   `json:"messages,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Walk visits the span and every descendant in pre-order.
func (s *Span) Walk(f func(*Span, int)) { s.walk(f, 0) }

func (s *Span) walk(f func(*Span, int), depth int) {
	f(s, depth)
	for _, c := range s.Children {
		c.walk(f, depth+1)
	}
}

// spanState is the Accountant's span-collection state, allocated only by
// StartSpans so accountants without spans stay a bare phase list.
type spanState struct {
	root  *Span
	open  []*Span // stack of open interior spans; open[0] == root
	tr    *Tracer // message counters + shared epoch; may be nil
	start time.Time
	mark  time.Time // end of the last leaf/boundary
	msgs  int64     // tracer message count at mark
}

// now returns the offset of t from the span epoch (the tracer's when one
// is attached, else the StartSpans instant).
func (st *spanState) now(t time.Time) int64 {
	if st.tr != nil {
		return t.Sub(st.tr.epoch).Nanoseconds()
	}
	return t.Sub(st.start).Nanoseconds()
}

func (st *spanState) trMsgs() int64 {
	if st.tr == nil {
		return 0
	}
	return st.tr.c.Messages()
}

// StartSpans turns on span collection: a root span named name is opened,
// and every subsequent Charge records a leaf under the innermost open
// span. tr, when non-nil, supplies the shared timebase and the per-span
// message counts (it should be the tracer the run's networks use).
// Calling StartSpans again replaces any earlier collection.
func (a *Accountant) StartSpans(name string, tr *Tracer) {
	now := time.Now()
	st := &spanState{tr: tr, start: now, mark: now}
	st.root = &Span{Name: name, StartNanos: st.now(now)}
	st.open = []*Span{st.root}
	st.msgs = st.trMsgs()
	a.spans = st
}

// Begin opens a nested span under the innermost open span. Every Charge
// until the matching End lands inside it. A no-op without StartSpans.
func (a *Accountant) Begin(name string) {
	st := a.spans
	if st == nil {
		return
	}
	now := time.Now()
	sp := &Span{Name: name, StartNanos: st.now(now)}
	parent := st.open[len(st.open)-1]
	parent.Children = append(parent.Children, sp)
	st.open = append(st.open, sp)
	st.mark = now
	st.msgs = st.trMsgs()
}

// End closes the innermost span opened by Begin (the root stays open
// until FinishSpans). A no-op without StartSpans or with no open Begin.
func (a *Accountant) End() {
	st := a.spans
	if st == nil || len(st.open) <= 1 {
		return
	}
	now := time.Now()
	sp := st.open[len(st.open)-1]
	sp.DurNanos = st.now(now) - sp.StartNanos
	st.open = st.open[:len(st.open)-1]
	st.mark = now
	st.msgs = st.trMsgs()
}

// chargeSpan records the leaf span for one Charge.
func (a *Accountant) chargeSpan(name string, rounds int) {
	st := a.spans
	if st == nil {
		return
	}
	now := time.Now()
	msgs := st.trMsgs()
	sp := &Span{
		Name:       name,
		StartNanos: st.now(st.mark),
		DurNanos:   now.Sub(st.mark).Nanoseconds(),
		Rounds:     rounds,
		Messages:   msgs - st.msgs,
	}
	parent := st.open[len(st.open)-1]
	parent.Children = append(parent.Children, sp)
	st.mark = now
	st.msgs = msgs
}

// FinishSpans closes every open span, rolls interior rounds and messages
// up from the leaves, and returns the root (nil when StartSpans was never
// called). The accountant can keep charging afterwards, but new charges
// no longer record spans.
func (a *Accountant) FinishSpans() *Span {
	st := a.spans
	if st == nil {
		return nil
	}
	now := time.Now()
	for i := len(st.open) - 1; i >= 0; i-- {
		sp := st.open[i]
		sp.DurNanos = st.now(now) - sp.StartNanos
	}
	a.spans = nil
	rollup(st.root)
	return st.root
}

// rollup sums rounds and messages of interior spans from their subtrees.
func rollup(s *Span) (rounds int, msgs int64) {
	for _, c := range s.Children {
		r, m := rollup(c)
		rounds += r
		msgs += m
	}
	if len(s.Children) > 0 {
		s.Rounds += rounds
		s.Messages += msgs
	}
	return s.Rounds, s.Messages
}
