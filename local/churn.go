// Graph churn on a live Network: edge and node insert/delete with
// incremental maintenance of the engine's port tables.
//
// The LOCAL runtime's internal state splits into two tiers. The
// per-topology tier — the [][]int port lists, the [][]int32 reverse-port
// lists, and the ext/int relabel translation (PR 5's boundary) — is
// maintained incrementally here at O(deg(u) + deg(v)) per mutation. The
// per-run tier — the flat directed-edge arrays (off/portsFlat/revFlat/
// slotFlat) and the message lanes carved out of them — is consolidated
// lazily: a mutation marks the network dirty and the next run's setup
// rebuilds the flat tables in one O(n + Σ deg) pass, the same cost setup
// already pays for lanes every run. A burst of k mutations therefore
// costs O(changed) per mutation plus one consolidation, not k full
// rebuilds.
//
// Port semantics under churn match construction: a node's port numbering
// is its external adjacency-list order. AddEdge appends the new neighbor
// as the highest port on both endpoints; RemoveEdge deletes the port and
// shifts the higher ports down, preserving relative order. A mutated
// network is indistinguishable from a fresh NewNetwork on the mutated
// graph except for the node relabeling (which is unobservable) — the
// churn equivalence tests pin exactly that.
//
// Mutations must not be issued during a run.
package local

import (
	"fmt"

	"deltacolor/graph"
)

// toInt translates an external node ID to its internal table index;
// identity when the network is not relabeled.
func (net *Network) toInt(v int) int {
	if net.intID == nil {
		return v
	}
	return int(net.intID[v])
}

// AddEdge inserts the undirected edge {u, v} (external IDs) into the
// underlying graph and the network's port tables. The new neighbor
// becomes the highest-numbered port on both endpoints. O(deg(u)+deg(v))
// via the duplicate check; the flat delivery tables are consolidated at
// the start of the next run.
func (net *Network) AddEdge(u, v int) error {
	if err := net.g.AddEdge(u, v); err != nil {
		return err
	}
	iu, iv := net.toInt(u), net.toInt(v)
	pu, pv := len(net.ports[iu]), len(net.ports[iv])
	if net.extID == nil {
		// Port lists alias the graph's adjacency; refetch the grown
		// headers.
		net.ports[iu] = net.g.Neighbors(u)
		net.ports[iv] = net.g.Neighbors(v)
	} else {
		// Capped views into the flat backing: append reallocates instead
		// of clobbering the neighbor list that follows.
		net.ports[iu] = append(net.ports[iu], iv)
		net.ports[iv] = append(net.ports[iv], iu)
	}
	net.rev[iu] = append(net.rev[iu], int32(pv))
	net.rev[iv] = append(net.rev[iv], int32(pu))
	net.dirty = true
	return nil
}

// RemoveEdge deletes the undirected edge {u, v} (external IDs) from the
// graph and the port tables. Surviving ports keep their relative order;
// ports above the removed one shift down by one on both endpoints, and
// the affected neighbors' reverse-port entries are patched in place.
// O(deg(u)+deg(v)).
func (net *Network) RemoveEdge(u, v int) error {
	if u < 0 || v < 0 || u >= net.g.N() || v >= net.g.N() {
		return fmt.Errorf("local: remove edge (%d,%d): node out of range [0,%d)", u, v, net.g.N())
	}
	iu, iv := net.toInt(u), net.toInt(v)
	pu, pv := -1, -1
	for p, w := range net.ports[iu] {
		if w == iv {
			pu = p
			break
		}
	}
	if pu < 0 {
		return fmt.Errorf("local: remove edge (%d,%d): %w", u, v, graph.ErrNoEdge)
	}
	for p, w := range net.ports[iv] {
		if w == iu {
			pv = p
			break
		}
	}
	if err := net.g.RemoveEdge(u, v); err != nil {
		return err
	}
	net.dropPort(iu, pu, u)
	net.dropPort(iv, pv, v)
	net.dirty = true
	return nil
}

// dropPort removes port p of internal node a (external ID ext) from the
// port and reverse-port tables, then patches the reverse-port entries of
// every neighbor whose port index on a's side shifted down.
func (net *Network) dropPort(a, p, ext int) {
	if net.extID == nil {
		// The graph's adjacency (already shifted by g.RemoveEdge) is the
		// port list; refetch the shrunk header.
		net.ports[a] = net.g.Neighbors(ext)
	} else {
		lst := net.ports[a]
		copy(lst[p:], lst[p+1:])
		net.ports[a] = lst[:len(lst)-1]
	}
	rv := net.rev[a]
	copy(rv[p:], rv[p+1:])
	net.rev[a] = rv[:len(rv)-1]
	for q := p; q < len(net.ports[a]); q++ {
		x := net.ports[a][q]
		net.rev[x][net.rev[a][q]] = int32(q)
	}
}

// AddNode appends a new isolated node to the graph and the network,
// returning its external ID (the new N-1). On a relabeled network the
// translation arrays grow by an identity entry — a fresh node has no
// edges, so any position in the locality order is as good as any other
// until the next full rebuild. O(1) amortized.
func (net *Network) AddNode() int {
	v := net.g.AddNode()
	net.ports = append(net.ports, nil)
	net.rev = append(net.rev, nil)
	if net.extID != nil {
		// Internal index == external ID for the appended node: both
		// count the same prefix of pre-existing nodes.
		net.extID = append(net.extID, int32(v))
		net.intID = append(net.intID, int32(v))
	}
	net.dirty = true
	return v
}

// IsolateNode removes every edge incident to v (external ID), returning
// how many were removed. The LOCAL runtime keeps node IDs dense, so
// "deleting" a node means isolating it — an isolated node runs its init
// segment and typically halts immediately; algorithms above the runtime
// treat it as absent. O(Σ deg over the removed edges).
func (net *Network) IsolateNode(v int) (int, error) {
	if v < 0 || v >= net.g.N() {
		return 0, fmt.Errorf("local: isolate node %d: out of range [0,%d)", v, net.g.N())
	}
	nbrs := append([]int(nil), net.g.Neighbors(v)...)
	for _, u := range nbrs {
		if err := net.RemoveEdge(v, u); err != nil {
			return 0, err
		}
	}
	return len(nbrs), nil
}

// rebuildFlat reconsolidates the flat directed-edge tables from the
// incrementally-maintained port and reverse-port lists after churn, and
// rebinds both list tiers onto fresh contiguous backings (mutated lists
// drift off the shared backing via append's copy). One O(n + Σ deg)
// pass, called by setup when the network is dirty — the same shape of
// work setup already does for the message lanes every run.
func (net *Network) rebuildFlat() {
	n := net.g.N()
	sum := 0
	for v := 0; v < n; v++ {
		sum += len(net.ports[v])
	}
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + len(net.ports[v])
	}
	net.off = off
	if net.extID == nil {
		for v := 0; v < n; v++ {
			net.ports[v] = net.g.Neighbors(v)
		}
	} else {
		flat := make([]int, sum)
		for v := 0; v < n; v++ {
			lst := flat[off[v] : off[v]+len(net.ports[v]) : off[v+1]]
			copy(lst, net.ports[v])
			net.ports[v] = lst
		}
	}
	net.portsFlat = make([]int32, sum)
	revFlat := make([]int32, sum)
	for v := 0; v < n; v++ {
		rv := revFlat[off[v]:off[v+1]:off[v+1]]
		copy(rv, net.rev[v])
		net.rev[v] = rv
		for p, u := range net.ports[v] {
			net.portsFlat[off[v]+p] = int32(u)
		}
	}
	net.revFlat = revFlat
	net.slotFlat = nil
	if sum <= 1<<31-1 {
		net.slotFlat = make([]int32, sum)
		for i, u := range net.portsFlat {
			net.slotFlat[i] = int32(off[u]) + net.revFlat[i]
		}
	}
	net.dirty = false
}
