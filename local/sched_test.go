package local

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"deltacolor/graph"
)

// floodProtocol is a deliberately irregular workload: node v runs v%5+1
// extra rounds past a shared flooding phase, uses its private randomness,
// and halts at different times, exercising halts, active sets and parking.
func floodProtocol(rounds int) NodeFunc {
	return func(ctx *Ctx) {
		sum := ctx.Rand().Intn(1000)
		for i := 0; i < rounds+ctx.ID()%5; i++ {
			ctx.Broadcast(sum)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.Recv(p).(int); ok {
					sum += m
				}
			}
		}
		ctx.SetOutput(sum)
	}
}

func randomGraph(n int, p float64, seed int64) *graph.G {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

// TestShardCountInvariance runs the same protocol under 1, 3 and 8 shards
// and requires identical outputs and round counts: sharding is a scheduling
// detail, never a semantic one.
func TestShardCountInvariance(t *testing.T) {
	g := randomGraph(200, 0.03, 42)
	run := func(shards int) ([]any, int) {
		net := NewNetwork(g, 7)
		net.setShards(shards)
		outs := net.Run(floodProtocol(4))
		return outs, net.Rounds()
	}
	base, baseRounds := run(1)
	for _, k := range []int{3, 8} {
		outs, rounds := run(k)
		if rounds != baseRounds {
			t.Fatalf("shards=%d: rounds=%d, want %d", k, rounds, baseRounds)
		}
		for v := range outs {
			if outs[v] != base[v] {
				t.Fatalf("shards=%d: output[%d]=%v, want %v", k, v, outs[v], base[v])
			}
		}
	}
}

// TestParallelDeliveryLargeRound pushes past the serial-delivery threshold
// (>256 senders) with multiple shards so the worker fan-out actually runs,
// and checks every delivery slot.
func TestParallelDeliveryLargeRound(t *testing.T) {
	n := 2000
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)
	}
	net := NewNetwork(g, 1)
	net.setShards(4)
	outs := net.Run(func(ctx *Ctx) {
		got := 0
		for r := 0; r < 3; r++ {
			ctx.Broadcast(ctx.ID())
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				got += ctx.Recv(p).(int)
			}
		}
		ctx.SetOutput(got)
	})
	for v := 0; v < n; v++ {
		left, right := (v-1+n)%n, (v+1)%n
		if outs[v].(int) != 3*(left+right) {
			t.Fatalf("node %d got %v, want %d", v, outs[v], 3*(left+right))
		}
	}
	if net.Rounds() != 3 {
		t.Fatalf("rounds=%d", net.Rounds())
	}
}

// TestActiveSetSparseRounds has a single speaking pair in a large network:
// delivery must still reach them (the active set must not drop anyone).
func TestActiveSetSparseRounds(t *testing.T) {
	n := 1000
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(i, i+1)
	}
	net := NewNetwork(g, 1)
	net.setShards(4)
	outs := net.Run(func(ctx *Ctx) {
		for r := 0; r < 5; r++ {
			if ctx.ID() == 0 && r == 3 {
				ctx.Send(0, "ping")
			}
			ctx.Next()
			if m := ctx.Recv(0); m != nil && ctx.ID() == 1 {
				ctx.SetOutput(m)
			}
		}
	})
	if outs[1] != "ping" {
		t.Fatalf("node 1 got %v", outs[1])
	}
}

func TestRunWithInputLengthMismatch(t *testing.T) {
	g := pathGraph(3)
	net := NewNetwork(g, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for short inputs")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "len(inputs) = 2") || !strings.Contains(msg, "want 3") {
			t.Fatalf("unhelpful panic message: %q", msg)
		}
	}()
	net.RunWithInput(func(ctx *Ctx) {}, []any{1, 2})
}

func TestDeadSendTracking(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	net.TrackDeadSends(true)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return // halt immediately
		}
		ctx.Send(0, "are you there?")
		ctx.Next()
		ctx.Send(0, "hello?")
		ctx.Next()
	})
	dead := net.DeadSends()
	if len(dead) != 2 {
		t.Fatalf("dead sends = %v, want 2 records", dead)
	}
	for i, d := range dead {
		if d.From != 1 || d.To != 0 || d.Port != 0 || d.Round != i+1 {
			t.Fatalf("dead[%d] = %+v", i, d)
		}
	}
	if got := dead[0].String(); !strings.Contains(got, "node 1 sent to halted node 0") {
		t.Fatalf("String() = %q", got)
	}
	if net.MessageStats().Dropped != 2 {
		t.Fatalf("stats.Dropped = %d, want 2", net.MessageStats().Dropped)
	}
	// A clean follow-up run on the same network must not inherit the
	// previous run's records.
	net.Run(func(ctx *Ctx) {
		ctx.Broadcast("fine")
		ctx.Next()
	})
	if ds := net.DeadSends(); ds != nil {
		t.Fatalf("stale dead sends after clean run: %v", ds)
	}
}

func TestDeadSendTrackingOffByDefault(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return
		}
		ctx.Send(0, "dropped silently")
		ctx.Next()
	})
	if ds := net.DeadSends(); ds != nil {
		t.Fatalf("tracking off, got %v", ds)
	}
}

func TestRunStats(t *testing.T) {
	g := cycleGraph(8)
	net := NewNetwork(g, 1)
	net.Run(floodProtocol(2))
	st := net.LastRunStats()
	if st.Nodes != 8 || st.Rounds != net.Rounds() || st.Rounds == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WallTime <= 0 || st.RoundsPerSec <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestReversePortTables cross-checks the linear-time construction against
// the definition on assorted graph shapes.
func TestReversePortTables(t *testing.T) {
	graphs := map[string]*graph.G{
		"path":   pathGraph(17),
		"cycle":  cycleGraph(12),
		"random": randomGraph(80, 0.1, 3),
		"dense":  randomGraph(40, 0.9, 4),
	}
	star := graph.New(9)
	for i := 1; i < 9; i++ {
		star.MustEdge(0, i)
	}
	graphs["star"] = star
	for name, g := range graphs {
		net := NewNetwork(g, 1)
		for v := 0; v < g.N(); v++ {
			for p, u := range net.ports[v] {
				q := int(net.rev[v][p])
				if net.ports[u][q] != v {
					t.Fatalf("%s: rev[%d][%d]=%d but ports[%d][%d]=%d",
						name, v, p, q, u, q, net.ports[u][q])
				}
			}
		}
	}
}

// TestNetworkReuse runs two different protocols back to back on one
// network: all scheduler state must reset between runs.
func TestNetworkReuse(t *testing.T) {
	g := cycleGraph(30)
	net := NewNetwork(g, 5)
	net.setShards(3)
	first := net.Run(floodProtocol(3))
	second := net.Run(floodProtocol(3))
	for v := range first {
		if first[v] != second[v] {
			t.Fatalf("run not reproducible on reused network at node %d: %v vs %v", v, first[v], second[v])
		}
	}
}
