package local

// Stepped flood kernels: the distance-bounded reachability probe and the
// connected-component collection that back the ported ball-collection
// phases (internal/core's netdec ruling set and randomized shattering's
// small-component phase). FloodStepped runs entirely on the int32 fast
// path — its rounds are allocation-free, the regression test pins that —
// while CollectComponents ships variable-length id frontiers on the boxed
// lane like the gather engine.

// FloodStepped floods from the source set for exactly radius rounds and
// reports, per external node ID, whether the node lies within graph
// distance radius of some source. sources is indexed by external ID; the
// result slice is freshly allocated. radius <= 0 or an empty source set
// short-circuits without running the network (reached == sources).
//
// The protocol is the textbook TTL flood: a source broadcasts its budget,
// a node that receives a larger budget than it has seen becomes reached
// and re-broadcasts budget-1 while it stays positive. Every message is a
// single int32, so flood rounds ride the allocation-free int lane. All
// nodes run exactly radius rounds and halt together, so the flood is
// dead-send-clean under strict mode.
func FloodStepped(net *Network, sources []bool, radius int) []bool {
	n := net.g.N()
	reached := make([]bool, n)
	copy(reached, sources)
	if radius <= 0 {
		return reached
	}
	any := false
	for _, s := range sources {
		if s {
			any = true
			break
		}
	}
	if !any {
		return reached
	}
	outs := RunStepped(net, floodProgram(sources, radius))
	for v, o := range outs {
		reached[v] = o.(bool)
	}
	return reached
}

// floodState is one node's flat flood state: the largest budget it has
// received (sources start at radius+1 so they never re-forward) and the
// round counter that makes every node halt together after radius rounds.
type floodState struct {
	best  int32
	round int32
}

// floodProgram builds the TTL-flood stepped program. Messages are single
// int32 budgets on the fast path; a budget b means "you are within
// distance radius, forward b-1 if positive".
func floodProgram(sources []bool, radius int) Stepped[floodState] {
	return Stepped[floodState]{
		Init: func(ctx *Ctx, s *floodState) bool {
			if sources[ctx.ID()] {
				s.best = int32(radius) + 1
				ctx.BroadcastInt(radius)
			}
			return true
		},
		Step: func(ctx *Ctx, s *floodState) bool {
			s.round++
			deg := ctx.Degree()
			got := int32(0)
			for p := 0; p < deg; p++ {
				if m, ok := ctx.RecvInt(p); ok && int32(m) > got {
					got = int32(m)
				}
			}
			if got > s.best {
				s.best = got
				if got > 1 {
					ctx.BroadcastInt(int(got) - 1)
				}
			}
			if int(s.round) == radius {
				ctx.SetOutput(s.best > 0)
				return false
			}
			return true
		},
	}
}

// componentCap bounds the ids a node accumulates in CollectComponents: a
// node whose component grows past the cap stops collecting (it announces
// and halts like an exhausted node) and reports failure, and the caller
// falls back to a central traversal. The cap exists because per-node
// component knowledge is O(|component|) memory — the primitive targets
// the shattered-small components of the randomized pipeline, not
// arbitrary graphs.
const componentCap = 4096

// CollectComponents computes connected components through the stepped
// engine: every node floods the ids it knows until a round brings nothing
// new, at which point its component is provably complete (frontier
// distances are contiguous), it announces completion to its neighbors and
// halts one round later. comp and count follow the
// graph.ConnectedComponents convention exactly — components are numbered
// in ascending order of their minimum member, isolated nodes form their
// own components — so the two are interchangeable. ok is false when some
// node overran componentCap; comp is then nil and the caller must fall
// back to a central traversal.
//
// The completion announcement keeps the protocol dead-send-clean: a node
// never stages a message to a port whose neighbor has announced, so
// strict mode sees no late dead sends even though halting is staggered.
func CollectComponents(net *Network) (comp []int, count int, ok bool) {
	n := net.g.N()
	outs := RunStepped(net, componentProgram())
	labels := make([]int32, n)
	for v, o := range outs {
		l := o.(int32)
		if l < 0 {
			return nil, 0, false
		}
		labels[v] = l
	}
	comp = make([]int, n)
	index := make(map[int32]int, 64)
	for v := 0; v < n; v++ {
		// First occurrence of a label is at v == min member (a node's label
		// is its component's minimum id), so ascending v yields the central
		// numbering: components ranked by minimum member.
		i, seen := index[labels[v]]
		if !seen {
			i = count
			index[labels[v]] = i
			count++
		}
		comp[v] = i
	}
	return comp, count, true
}

// componentState is one node's flat component-collection state.
type componentState struct {
	ids    []int32 // known component members, discovery order
	fresh  []int32 // ids first seen this round
	seen   map[int32]struct{}
	min    int32
	done   []bool // ports whose neighbor announced completion
	said   bool   // announced completion last round; halt on the next step
	capped bool   // overran componentCap; reports -1
}

// componentDone is the completion marker: a one-element message no id can
// collide with (ids are non-negative).
var componentDone = []int32{-1}

// componentProgram floods component membership: each round a node ships
// the ids it learned last round to every port that has not announced
// completion. A round with no fresh ids proves the component is exhausted
// (if a node at distance r exists, one at every distance below r does, so
// the frontier cannot skip a round); the node then announces and halts
// one step later, giving neighbors a full round to stop sending to it.
// Output is the minimum known id, or -1 if the node overran componentCap.
func componentProgram() Stepped[componentState] {
	send := func(ctx *Ctx, s *componentState, msg []int32) {
		for p := 0; p < ctx.Degree(); p++ {
			if !s.done[p] {
				ctx.Send(p, msg)
			}
		}
	}
	return Stepped[componentState]{
		Init: func(ctx *Ctx, s *componentState) bool {
			id := int32(ctx.ID())
			s.min = id
			if ctx.Degree() == 0 {
				ctx.SetOutput(id)
				return false
			}
			s.ids = append(s.ids, id)
			s.seen = map[int32]struct{}{id: {}}
			s.done = make([]bool, ctx.Degree())
			ctx.Broadcast([]int32{id})
			return true
		},
		Step: func(ctx *Ctx, s *componentState) bool {
			if s.said {
				// Everyone adjacent processed our announcement last round;
				// nothing more can arrive that matters.
				if s.capped {
					ctx.SetOutput(int32(-1))
				} else {
					ctx.SetOutput(s.min)
				}
				return false
			}
			s.fresh = s.fresh[:0]
			for p := 0; p < ctx.Degree(); p++ {
				m, mok := ctx.Recv(p).([]int32)
				if !mok {
					continue
				}
				if m[0] == -1 {
					s.done[p] = true
					continue
				}
				for _, id := range m {
					if _, dup := s.seen[id]; dup {
						continue
					}
					s.seen[id] = struct{}{}
					s.ids = append(s.ids, id)
					s.fresh = append(s.fresh, id)
					if id < s.min {
						s.min = id
					}
				}
			}
			if len(s.ids) > componentCap {
				s.capped = true
			}
			if len(s.fresh) == 0 || s.capped {
				s.said = true
				send(ctx, s, componentDone)
				return true
			}
			out := make([]int32, len(s.fresh))
			copy(out, s.fresh)
			send(ctx, s, out)
			return true
		},
	}
}
