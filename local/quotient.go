package local

import (
	"fmt"

	"deltacolor/graph"
)

// QuotientNetwork builds the network of the quotient graph of parent under
// groups — one quotient node per group, adjacent when two groups share a
// member or parent has an edge between them — directly from the parent's
// port tables (its adjacency lists).
//
// The DCC and ruling-set phases of the Δ-coloring algorithms construct
// such virtual networks once per phase. graph.Quotient + NewNetwork costs
// O(m) for the full-edge scan plus a per-edge HasEdge dedupe that is
// quadratic in quotient degree; this construction touches only the
// groups' own edges and dedupes with an O(q) stamp array, so the whole
// build is linear in Σ_groups (|group| + deg(group)). The quotient's edge
// set is identical to graph.Quotient's (adjacency order may differ, which
// protocols must not — and do not — depend on, exactly as with the map
// iteration order of graph.Quotient).
func QuotientNetwork(parent *graph.G, groups [][]int, seed int64) *Network {
	return NewQuotientBuilder(parent).Build(groups, seed)
}

// QuotientBuilder builds quotient networks of one parent graph repeatedly,
// amortizing the owner table. A fresh QuotientNetwork call pays two O(n)
// passes over a node-indexed owner array (allocation zeroing plus the
// reset to "no owner") regardless of how small the groups are; a caller
// that quotients the same parent once per iteration — the batched Brooks
// repair engine schedules an MIS over hole balls every iteration — paid
// that O(n) each time, a quadratic total against shrinking hole counts.
// The builder keeps the array across Build calls and validates entries
// with an epoch stamp, so build i>0 touches only the groups' own nodes
// and edges. Not safe for concurrent use.
type QuotientBuilder struct {
	parent *graph.G
	// first[v] is v's owning group in the current build, valid only when
	// stamp[v] == epoch — no per-build reset pass.
	first []int32
	stamp []int32
	epoch int32
}

// NewQuotientBuilder prepares a builder over parent. The O(n) owner-array
// allocation happens here, once.
func NewQuotientBuilder(parent *graph.G) *QuotientBuilder {
	n := parent.N()
	return &QuotientBuilder{
		parent: parent,
		first:  make([]int32, n),
		stamp:  make([]int32, n),
	}
}

// Build constructs the quotient network of the builder's parent under
// groups — identical output to QuotientNetwork(parent, groups, seed).
func (b *QuotientBuilder) Build(groups [][]int, seed int64) *Network {
	parent := b.parent
	q := len(groups)
	n := parent.N()
	b.epoch++
	if b.epoch == 0 { // wrapped: stale stamps could collide, re-zero once
		for i := range b.stamp {
			b.stamp[i] = 0
		}
		b.epoch = 1
	}
	epoch := b.epoch

	// owner lists per member node: the common case is a single owner,
	// kept in the flat epoch-stamped array; shared members spill into a
	// small map.
	first := b.first
	stamp := b.stamp
	var extra map[int][]int32
	for gi, grp := range groups {
		for _, v := range grp {
			if v < 0 || v >= n {
				panic(fmt.Sprintf("local: QuotientNetwork: group %d contains node %d outside [0,%d)", gi, v, n))
			}
			if stamp[v] != epoch {
				stamp[v] = epoch
				first[v] = int32(gi)
			} else {
				if extra == nil {
					extra = map[int][]int32{}
				}
				extra[v] = append(extra[v], int32(gi))
			}
		}
	}

	adj := make([][]int, q)
	mark := make([]int, q) // mark[o] = last group that linked to o
	for i := range mark {
		mark[i] = -1
	}
	link := func(gi, o int) {
		if o != gi && mark[o] != gi {
			mark[o] = gi
			adj[gi] = append(adj[gi], o)
		}
	}
	for gi, grp := range groups {
		for _, v := range grp {
			// Groups sharing v are adjacent; so are the owner groups of
			// every parent-neighbor of v.
			link(gi, int(first[v]))
			for _, o := range extra[v] {
				link(gi, int(o))
			}
			for _, u := range parent.Neighbors(v) {
				if stamp[u] == epoch {
					link(gi, int(first[u]))
					for _, oo := range extra[u] {
						link(gi, int(oo))
					}
				}
			}
		}
	}

	qg, err := graph.FromAdjacency(adj)
	if err != nil {
		panic(fmt.Sprintf("local: QuotientNetwork: %v", err))
	}
	return NewNetwork(qg, seed)
}
