package local

import (
	"fmt"

	"deltacolor/graph"
)

// QuotientNetwork builds the network of the quotient graph of parent under
// groups — one quotient node per group, adjacent when two groups share a
// member or parent has an edge between them — directly from the parent's
// port tables (its adjacency lists).
//
// The DCC and ruling-set phases of the Δ-coloring algorithms construct
// such virtual networks once per phase. graph.Quotient + NewNetwork costs
// O(m) for the full-edge scan plus a per-edge HasEdge dedupe that is
// quadratic in quotient degree; this construction touches only the
// groups' own edges and dedupes with an O(q) stamp array, so the whole
// build is linear in Σ_groups (|group| + deg(group)). The quotient's edge
// set is identical to graph.Quotient's (adjacency order may differ, which
// protocols must not — and do not — depend on, exactly as with the map
// iteration order of graph.Quotient).
func QuotientNetwork(parent *graph.G, groups [][]int, seed int64) *Network {
	q := len(groups)
	n := parent.N()

	// owner lists per member node: the common case is a single owner,
	// kept in a flat array; shared members spill into a small map.
	first := make([]int32, n)
	for i := range first {
		first[i] = -1
	}
	var extra map[int][]int32
	for gi, grp := range groups {
		for _, v := range grp {
			if v < 0 || v >= n {
				panic(fmt.Sprintf("local: QuotientNetwork: group %d contains node %d outside [0,%d)", gi, v, n))
			}
			if first[v] < 0 {
				first[v] = int32(gi)
			} else {
				if extra == nil {
					extra = map[int][]int32{}
				}
				extra[v] = append(extra[v], int32(gi))
			}
		}
	}

	adj := make([][]int, q)
	mark := make([]int, q) // mark[o] = last group that linked to o
	for i := range mark {
		mark[i] = -1
	}
	link := func(gi, o int) {
		if o != gi && mark[o] != gi {
			mark[o] = gi
			adj[gi] = append(adj[gi], o)
		}
	}
	for gi, grp := range groups {
		for _, v := range grp {
			// Groups sharing v are adjacent; so are the owner groups of
			// every parent-neighbor of v.
			link(gi, int(first[v]))
			for _, o := range extra[v] {
				link(gi, int(o))
			}
			for _, u := range parent.Neighbors(v) {
				if o := first[u]; o >= 0 {
					link(gi, int(o))
					for _, oo := range extra[u] {
						link(gi, int(oo))
					}
				}
			}
		}
	}

	qg, err := graph.FromAdjacency(adj)
	if err != nil {
		panic(fmt.Sprintf("local: QuotientNetwork: %v", err))
	}
	return NewNetwork(qg, seed)
}
