package local

import (
	"bytes"
	"encoding/json"
	"runtime/debug"
	"testing"
)

// uniformFlood is an int-lane broadcast protocol where every node halts
// in the same round, so the tracer's per-round accounting has exact
// expected values (unlike intFloodStepped's staggered halts).
func uniformFlood(rounds int) Stepped[int] {
	return Stepped[int]{
		Init: func(ctx *Ctx, s *int) bool {
			ctx.BroadcastInt(ctx.ID())
			return true
		},
		Step: func(ctx *Ctx, s *int) bool {
			sum := 0
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					sum += m
				}
			}
			*s++
			if *s == rounds {
				ctx.SetOutput(sum)
				return false
			}
			ctx.BroadcastInt(sum)
			return true
		},
	}
}

// tracedFloodRun runs the uniform flood on a 64-cycle with a tracer at
// the given level attached and returns the tracer.
func tracedFloodRun(t *testing.T, level TraceLevel, ringCap, rounds int) *Tracer {
	t.Helper()
	tr := NewTracer(level, ringCap)
	net := NewNetwork(cycleGraph(64), 1)
	net.SetTracer(tr)
	RunStepped(net, uniformFlood(rounds))
	return tr
}

func TestTracerCountersAndRounds(t *testing.T) {
	const rounds = 7
	tr := tracedFloodRun(t, TraceFull, 0, rounds)
	c := tr.Counters()
	if c.Runs != 1 {
		t.Fatalf("runs = %d, want 1", c.Runs)
	}
	// intFloodStepped(r): init broadcast + r step rounds (the last step
	// halts without sending).
	if c.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", c.Rounds, rounds)
	}
	// Every node broadcasts (degree 2) in init and in all but the final
	// step round: (rounds) sends per node overall, over the int lane.
	wantMsgs := int64(64 * 2 * rounds)
	if c.IntMessages != wantMsgs || c.BoxedMessages != 0 {
		t.Fatalf("messages = int %d boxed %d, want int %d boxed 0", c.IntMessages, c.BoxedMessages, wantMsgs)
	}
	if c.Halts != 64 {
		t.Fatalf("halts = %d, want 64", c.Halts)
	}
	if c.StepNanos <= 0 {
		t.Fatalf("step nanos = %d, want > 0", c.StepNanos)
	}
	recs := tr.Rounds()
	if len(recs) != rounds {
		t.Fatalf("recorded rounds = %d, want %d", len(recs), rounds)
	}
	var ints, halts int
	for i, r := range recs {
		if r.Round != i+1 || r.Run != 1 {
			t.Fatalf("record %d = run %d round %d, want run 1 round %d", i, r.Run, r.Round, i+1)
		}
		if r.Live != 64 {
			t.Fatalf("record %d live = %d, want 64", i, r.Live)
		}
		ints += r.IntMsgs
		halts += r.Halts
	}
	if int64(ints) != wantMsgs {
		t.Fatalf("per-round int messages sum to %d, want %d", ints, wantMsgs)
	}
	if halts != 64 {
		t.Fatalf("per-round halts sum to %d, want 64", halts)
	}
}

func TestTracerCountersOnlyMatchesFull(t *testing.T) {
	co := tracedFloodRun(t, TraceCounters, 0, 5).Counters()
	full := tracedFloodRun(t, TraceFull, 0, 5).Counters()
	if co.Rounds != full.Rounds || co.IntMessages != full.IntMessages ||
		co.BoxedMessages != full.BoxedMessages || co.Drops != full.Drops || co.Halts != full.Halts {
		t.Fatalf("counters-only %+v disagrees with full %+v", co, full)
	}
	if co.StepNanos != 0 || co.DeliverNanos != 0 {
		t.Fatalf("counters-only took timestamps: %+v", co)
	}
	if rs := tracedFloodRun(t, TraceCounters, 0, 5).Rounds(); len(rs) != 0 {
		t.Fatalf("counters-only recorded %d rounds, want 0", len(rs))
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := tracedFloodRun(t, TraceFull, 4, 10)
	recs := tr.Rounds()
	if len(recs) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := 7 + i; r.Round != want {
			t.Fatalf("ring[%d].Round = %d, want %d (most recent kept)", i, r.Round, want)
		}
	}
	if tr.Counters().Rounds != 10 {
		t.Fatalf("counters saw %d rounds, want all 10 despite the ring", tr.Counters().Rounds)
	}
}

func TestDefaultTracerPickup(t *testing.T) {
	tr := NewTracer(TraceCounters, 0)
	SetDefaultTracer(tr)
	defer SetDefaultTracer(nil)
	net := NewNetwork(cycleGraph(16), 1)
	if net.Tracer() != tr {
		t.Fatalf("network did not pick up the default tracer")
	}
	RunStepped(net, uniformFlood(3))
	if got := tr.Counters().Rounds; got != 3 {
		t.Fatalf("default tracer counted %d rounds, want 3", got)
	}
	SetDefaultTracer(nil)
	if NewNetwork(cycleGraph(8), 1).Tracer() != nil {
		t.Fatalf("uninstalling the default tracer did not detach new networks")
	}
}

// TestTracerZeroAllocsPerRound extends the int-path allocation gate to an
// *enabled* tracer: the ring is preallocated and the counters are plain
// fields, so full tracing must also stage and deliver without per-round
// allocations.
func TestTracerZeroAllocsPerRound(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := cycleGraph(512)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			tr := NewTracer(TraceFull, 256)
			net := NewNetwork(g, 1)
			net.SetTracer(tr)
			RunStepped(net, intFloodStepped(rounds))
		})
	}
	short, long := measure(5), measure(105)
	perRound := (long - short) / 100
	if perRound > 0.05 {
		t.Fatalf("full tracing allocates %.2f allocs/round (short=%.0f long=%.0f), want 0", perRound, short, long)
	}
}

func TestSpanNestingAndRollup(t *testing.T) {
	a := &Accountant{}
	a.StartSpans("pipeline", nil)
	a.Begin("phase-a")
	a.Charge("p1", 3)
	a.Charge("p2", 4)
	a.End()
	a.Charge("p3", 5)
	root := a.FinishSpans()
	if root == nil || root.Name != "pipeline" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (phase-a, p3)", len(root.Children))
	}
	pa := root.Children[0]
	if pa.Name != "phase-a" || len(pa.Children) != 2 {
		t.Fatalf("phase-a = %+v", pa)
	}
	if pa.Rounds != 7 {
		t.Fatalf("phase-a rolled up %d rounds, want 7", pa.Rounds)
	}
	if root.Rounds != 12 {
		t.Fatalf("root rolled up %d rounds, want 12", root.Rounds)
	}
	// Spans must not perturb the phase list the goldens pin.
	want := "p1:3;p2:4;p3:5;"
	got := ""
	for _, p := range a.Phases() {
		got += p.Name + ":" + itoaT(p.Rounds) + ";"
	}
	if got != want {
		t.Fatalf("phases = %q, want %q", got, want)
	}
	if a.FinishSpans() != nil {
		t.Fatalf("second FinishSpans returned a root, want nil")
	}
}

func itoaT(x int) string {
	return string([]byte{byte('0' + x)})
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := tracedFloodRun(t, TraceFull, 0, 6)
	a := &Accountant{}
	a.StartSpans("pipeline", tr)
	a.Begin("phase")
	a.Charge("prim", 6)
	a.End()
	d := tr.Dump(a.FinishSpans())

	var first bytes.Buffer
	if err := WriteTraceJSONL(&first, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := ReadTraceJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var second bytes.Buffer
	if err := WriteTraceJSONL(&second, parsed); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first.Bytes(), second.Bytes())
	}
	if parsed.Counters != d.Counters {
		t.Fatalf("counters drifted: %+v vs %+v", parsed.Counters, d.Counters)
	}
	if len(parsed.Rounds) != len(d.Rounds) {
		t.Fatalf("rounds drifted: %d vs %d", len(parsed.Rounds), len(d.Rounds))
	}
	if parsed.Span == nil || parsed.Span.Name != "pipeline" || parsed.Span.Children[0].Children[0].Name != "prim" {
		t.Fatalf("span tree drifted: %+v", parsed.Span)
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	tr := tracedFloodRun(t, TraceFull, 0, 4)
	a := &Accountant{}
	a.StartSpans("pipeline", tr)
	a.Charge("prim", 4)
	d := tr.Dump(a.FinishSpans())

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, roundsX, meta, counters int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "C":
			counters++
		case "X":
			if e.Tid == tidEngine {
				roundsX++
			} else {
				spans++
			}
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("event %q has negative timing: ts=%v dur=%v", e.Name, e.Ts, e.Dur)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 2 { // pipeline + prim
		t.Fatalf("span events = %d, want 2", spans)
	}
	if roundsX != 4 {
		t.Fatalf("round events = %d, want 4", roundsX)
	}
	if meta == 0 || counters == 0 {
		t.Fatalf("missing metadata (%d) or counter (%d) events", meta, counters)
	}
}
