package local

import (
	"reflect"
	"runtime/debug"
	"testing"

	"deltacolor/graph"
)

// TestGatherSteppedMatchesBlocking pins the stepped gather against the
// blocking coroutine reference: for every node, the materialized BallInfo
// must be deeply equal (same key sets, same adjacency contents, same
// nil-vs-empty distinction) and the two runs must consume identical
// rounds. This is the contract that lets the consumers swap engines
// without observable change.
func TestGatherSteppedMatchesBlocking(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.G
	}{
		{"path-17", pathGraph(17)},
		{"cycle-24", cycleGraph(24)},
		{"rand-50", randomGraph(50, 0.1, 7)},
		{"rand-dense-30", randomGraph(30, 0.4, 8)},
		{"isolated", func() *graph.G {
			g := graph.New(12)
			g.MustEdge(0, 1)
			g.MustEdge(1, 2)
			g.MustEdge(4, 5)
			return g
		}()},
	}
	for _, tc := range graphs {
		for _, radius := range []int{0, 1, 2, 3, 4} {
			bnet := NewNetwork(tc.g, 1)
			want := gatherBallsBlocking(bnet, radius)
			wantRounds := bnet.Rounds()

			snet := NewNetwork(tc.g, 1)
			flat := GatherStepped(snet, radius)
			if snet.Rounds() != wantRounds {
				t.Fatalf("%s t=%d: stepped rounds=%d, blocking=%d", tc.name, radius, snet.Rounds(), wantRounds)
			}
			for v := range flat {
				got := flat[v].Info()
				if !reflect.DeepEqual(got, want[v]) {
					t.Fatalf("%s t=%d node %d:\nstepped  %+v\nblocking %+v", tc.name, radius, v, got, want[v])
				}
			}
		}
	}
}

// TestGatherBallsHookDispatch pins the SetSteppedGather ablation hook:
// both settings must return identical balls through the GatherBalls
// entry point, and the toggle must be readable.
func TestGatherBallsHookDispatch(t *testing.T) {
	prev := SteppedGatherEnabled()
	defer SetSteppedGather(prev)

	g := randomGraph(40, 0.12, 3)
	SetSteppedGather(true)
	if !SteppedGatherEnabled() {
		t.Fatal("hook did not enable")
	}
	stepped := GatherBalls(NewNetwork(g, 1), 2)

	SetSteppedGather(false)
	if SteppedGatherEnabled() {
		t.Fatal("hook did not disable")
	}
	blocking := GatherBalls(NewNetwork(g, 1), 2)

	if !reflect.DeepEqual(stepped, blocking) {
		t.Fatal("GatherBalls diverges across SetSteppedGather settings")
	}
}

// TestGatherSteppedPayloadSmaller pins the wire-format win: the packed
// []int32 frontier encoding must ship strictly fewer estimated bytes than
// the blocking path's per-round map payloads on the same gather.
func TestGatherSteppedPayloadSmaller(t *testing.T) {
	g := randomGraph(60, 0.08, 2)

	bnet := NewNetwork(g, 1)
	bnet.EnableMessageStats()
	gatherBallsBlocking(bnet, 3)
	blocking := bnet.MessageStats()

	snet := NewNetwork(g, 1)
	snet.EnableMessageStats()
	GatherStepped(snet, 3)
	stepped := snet.MessageStats()

	if stepped.TotalBytes >= blocking.TotalBytes {
		t.Fatalf("stepped gather ships %d bytes, blocking %d — expected a strict shrink",
			stepped.TotalBytes, blocking.TotalBytes)
	}
	if stepped.MaxBytes >= blocking.MaxBytes {
		t.Fatalf("stepped MaxBytes %d >= blocking %d", stepped.MaxBytes, blocking.MaxBytes)
	}
}

// TestFloodSteppedMatchesCentral checks FloodStepped against the central
// multi-source BFS: a node is reached iff its distance to the nearest
// source is within the radius.
func TestFloodSteppedMatchesCentral(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.G
		sources []int
	}{
		{"path-one-end", pathGraph(30), []int{0}},
		{"path-middle", pathGraph(31), []int{15}},
		{"cycle-two", cycleGraph(40), []int{0, 11}},
		{"rand-few", randomGraph(80, 0.04, 5), []int{3, 41, 77}},
		{"rand-disconnected", randomGraph(60, 0.02, 6), []int{0, 10}},
	}
	for _, tc := range cases {
		n := tc.g.N()
		src := make([]bool, n)
		for _, s := range tc.sources {
			src[s] = true
		}
		dist, _ := tc.g.MultiSourceDist(tc.sources)
		for _, radius := range []int{0, 1, 2, 5, 9} {
			net := NewNetwork(tc.g, 1)
			reached := FloodStepped(net, src, radius)
			if radius > 0 && net.Rounds() != radius {
				t.Fatalf("%s r=%d: rounds=%d", tc.name, radius, net.Rounds())
			}
			for v := 0; v < n; v++ {
				want := dist[v] >= 0 && dist[v] <= radius
				if reached[v] != want {
					t.Fatalf("%s r=%d node %d: reached=%v, dist=%d", tc.name, radius, v, reached[v], dist[v])
				}
			}
		}
	}
	// Empty source set and radius 0 short-circuit without running rounds.
	net := NewNetwork(pathGraph(10), 1)
	if out := FloodStepped(net, make([]bool, 10), 5); net.Rounds() != 0 {
		t.Fatalf("empty sources ran %d rounds (%v)", net.Rounds(), out)
	}
}

// TestFloodSteppedZeroAllocsPerRound is the allocation-regression gate
// for the flood kernel: its messages are single ints on the fast path, so
// steady-state rounds must not allocate. Setup cost is cancelled by
// differencing a short against a long flood of the same protocol.
func TestFloodSteppedZeroAllocsPerRound(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := cycleGraph(512)
	src := make([]bool, 512)
	src[0] = true
	measure := func(radius int) float64 {
		return testing.AllocsPerRun(3, func() {
			net := NewNetwork(g, 1)
			FloodStepped(net, src, radius)
		})
	}
	short, long := measure(5), measure(105)
	perRound := (long - short) / 100
	if perRound > 0.05 {
		t.Fatalf("flood allocates %.2f allocs/round (short=%.0f long=%.0f), want 0", perRound, short, long)
	}
}

// TestGatherSteppedAllocsBounded bounds the stepped gather's allocation
// rate. Gather payloads are variable-length boxed slices that receivers
// alias into, so rounds cannot be allocation-free by design — but the
// per-node-round allocation count must stay a small constant (the packed
// frontier buffer plus lane boxing), nothing proportional to ball size
// beyond the retained data itself.
func TestGatherSteppedAllocsBounded(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := cycleGraph(256)
	measure := func(radius int) float64 {
		return testing.AllocsPerRun(3, func() {
			net := NewNetwork(g, 1)
			GatherStepped(net, radius)
		})
	}
	short, long := measure(4), measure(24)
	perNodeRound := (long - short) / (20 * 256)
	// On a cycle every round ships one two-record frontier per node: the
	// packed buffer, its boxing, and amortized state growth. Anything past
	// ~6 allocs/node-round means a regression (the blocking path costs a
	// map + ballMsg + coroutine bookkeeping per node-round, ~3x more).
	if perNodeRound > 6 {
		t.Fatalf("stepped gather allocates %.1f allocs/node-round (short=%.0f long=%.0f)", perNodeRound, short, long)
	}
}

// TestCollectComponentsMatchesCentral pins CollectComponents against
// graph.ConnectedComponents: identical component labels and count on
// connected, disconnected and isolated-node graphs, with strict dead-send
// mode proving the announce-then-halt protocol stages no late sends.
func TestCollectComponentsMatchesCentral(t *testing.T) {
	prev := StrictDeadSends()
	SetStrictDeadSends(true)
	defer SetStrictDeadSends(prev)

	graphs := []struct {
		name string
		g    *graph.G
	}{
		{"path-20", pathGraph(20)},
		{"cycle-33", cycleGraph(33)},
		{"rand-sparse", randomGraph(120, 0.01, 9)},
		{"rand-medium", randomGraph(80, 0.05, 10)},
		{"isolated-mix", func() *graph.G {
			g := graph.New(25)
			g.MustEdge(1, 2)
			g.MustEdge(2, 3)
			g.MustEdge(10, 11)
			g.MustEdge(20, 21)
			g.MustEdge(21, 22)
			g.MustEdge(22, 20)
			return g
		}()},
		{"all-isolated", graph.New(9)},
	}
	for _, tc := range graphs {
		wantComp, wantCount := tc.g.ConnectedComponents()
		net := NewNetwork(tc.g, 1)
		net.TrackDeadSends(true)
		comp, count, ok := CollectComponents(net)
		if !ok {
			t.Fatalf("%s: unexpected cap overflow", tc.name)
		}
		if count != wantCount {
			t.Fatalf("%s: count=%d, want %d", tc.name, count, wantCount)
		}
		if !reflect.DeepEqual(comp, wantComp) {
			t.Fatalf("%s: comp=%v, want %v", tc.name, comp, wantComp)
		}
		if late := net.LateDeadSends(); len(late) != 0 {
			t.Fatalf("%s: late dead sends %v — DONE protocol leaked", tc.name, late)
		}
	}
}

// TestCollectComponentsCapFallback checks the overflow path: a component
// larger than componentCap makes CollectComponents report ok=false (and a
// nil assignment) so the caller falls back to a central traversal. The
// star reaches the cap in one round, keeping the test fast.
func TestCollectComponentsCapFallback(t *testing.T) {
	prev := StrictDeadSends()
	SetStrictDeadSends(true)
	defer SetStrictDeadSends(prev)

	n := componentCap + 5
	g := graph.New(n + 1)
	for v := 1; v <= n; v++ {
		g.MustEdge(0, v)
	}
	net := NewNetwork(g, 1)
	comp, count, ok := CollectComponents(net)
	if ok || comp != nil || count != 0 {
		t.Fatalf("capped collection returned ok=%v comp=%v count=%d, want failure", ok, comp != nil, count)
	}
}
