package local

// Tiled delivery: an alternative delivery kernel that batches message
// writes by receiver-slot range. Plain deliverBatch walks each sender's
// ports and writes every receiver slot as it comes — on expander-like
// graphs (rr4) the receiver slots of one sender are scattered across the
// whole lane array, and no node relabeling can fix that (an expander has
// no low-bandwidth order; see ROADMAP "expander gap"). The tiled kernel
// first bins each surviving message into a fixed receiver-slot tile
// (counting sort, two sequential passes over the sender's ports), then
// flushes tile by tile, so the scattered writes land inside one
// cache-resident window at a time.
//
// Semantics are bit-identical to deliverBatch: the same halt checks, dead
// -send records, tracer counters and receiver flags, in an order the
// engine never observes (each (receiver, port) slot has a unique sender,
// and flag stores are idempotent). SetTiledDelivery is the ablation hook;
// the equivalence tests pin identity against the plain kernel.

// tileShift fixes the tile span at 2^tileShift receiver slots: 32k slots
// = 128 KiB of int32 payload plus presence bytes, sized to stay inside a
// typical L2 while keeping the per-batch counting arrays tiny.
const tileShift = 15

// SetTiledDelivery toggles the tiled delivery kernel for subsequent runs
// on this network (off by default). Tiling is a memory-access-order
// detail with no observable effect on outputs, rounds or stats; it
// trades O(edges-per-batch) staging memory for receiver-side write
// locality on families with no exploitable labeling order. Fault
// injection uses its own delivery kernel, so an attached FaultPlan
// bypasses tiling.
func (net *Network) SetTiledDelivery(on bool) { net.tiledOn = on }

// TiledDelivery reports whether the tiled kernel is enabled.
func (net *Network) TiledDelivery() bool { return net.tiledOn }

// setupTiles sizes the per-batch tile staging: entry arrays capacity is
// the batch's directed-edge count (every port can stage at most one
// message per round, on exactly one lane), counts has one bucket per tile
// plus the running cursor row.
func (net *Network) setupTiles(bs int) {
	n := net.g.N()
	net.tileCount = (net.off[n] >> tileShift) + 1
	for i := range net.batches {
		b := &net.batches[i]
		lo := i * bs
		hi := min(lo+bs, n)
		ecap := net.off[hi] - net.off[lo]
		b.entSlot = make([]int32, ecap)
		b.entU = make([]int32, ecap)
		b.entVal = make([]int32, ecap)
		b.entMsg = make([]Message, ecap)
		b.tileCnt = make([]int32, net.tileCount+1)
	}
}

// deliverBatchTiled is the tiled twin of deliverBatch. Each lane runs
// three sequential passes over the batch's senders: count survivors per
// tile, place them at the tile cursors (handling drops, dead-send records
// and tracer counters exactly like the plain kernel), then flush tile by
// tile. The halt predicate is stable for the whole delivery phase, so
// evaluating it in both the count and place passes is sound.
//
//deltacolor:hotpath
//deltacolor:coordinator
func (net *Network) deliverBatchTiled(b *batch) {
	checkHalt := !net.noHalts
	count := net.countMsgs
	sf := net.slotFlat

	// Int lane.
	ne := int32(0)
	cnt := b.tileCnt
	for i := range cnt {
		cnt[i] = 0
	}
	for _, id := range b.senders {
		c := &net.ctxs[id]
		if c.nInts == 0 {
			continue
		}
		base := net.off[id]
		for p, h := range c.outHas {
			if h == 0 {
				continue
			}
			u := net.portsFlat[base+p]
			if checkHalt && net.haltSeg[u] != 0 {
				continue
			}
			var slot int32
			if sf != nil {
				slot = sf[base+p]
			} else {
				slot = int32(net.off[u]) + net.revFlat[base+p]
			}
			cnt[1+(slot>>tileShift)]++
			ne++
		}
	}
	if ne > 0 {
		for t := 1; t <= net.tileCount; t++ {
			cnt[t] += cnt[t-1]
		}
		for _, id := range b.senders {
			c := &net.ctxs[id]
			if c.nInts == 0 {
				continue
			}
			if count {
				b.trInts += c.nInts
			}
			base := net.off[id]
			oh := c.outHas
			for p, h := range oh {
				if h == 0 {
					continue
				}
				oh[p] = 0
				u := net.portsFlat[base+p]
				if checkHalt && net.haltSeg[u] != 0 {
					if count {
						b.trDrops++
					}
					if net.trackDead {
						b.dead = append(b.dead, DeadSend{From: c.id, Port: p, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
					}
					continue
				}
				var slot int32
				if sf != nil {
					slot = sf[base+p]
				} else {
					slot = int32(net.off[u]) + net.revFlat[base+p]
				}
				j := cnt[slot>>tileShift]
				cnt[slot>>tileShift] = j + 1
				b.entSlot[j] = slot
				b.entU[j] = u
				b.entVal[j] = c.outInt[p]
			}
			c.nInts = 0
		}
		for j := int32(0); j < ne; j++ {
			slot := b.entSlot[j]
			net.inInt[slot] = b.entVal[j]
			net.inHas[slot] = 1
			u := b.entU[j]
			if !net.recvInt[u].Load() {
				net.recvInt[u].Store(true)
			}
		}
	} else {
		// Every staged int message was dropped (or none staged): still run
		// the drop bookkeeping and lane clears the place pass would have.
		for _, id := range b.senders {
			c := &net.ctxs[id]
			if c.nInts == 0 {
				continue
			}
			if count {
				b.trInts += c.nInts
			}
			base := net.off[id]
			oh := c.outHas
			for p, h := range oh {
				if h == 0 {
					continue
				}
				oh[p] = 0
				if count {
					b.trDrops++
				}
				if net.trackDead {
					u := net.portsFlat[base+p]
					b.dead = append(b.dead, DeadSend{From: c.id, Port: p, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
				}
			}
			c.nInts = 0
		}
	}

	// Boxed lane: same three passes, payloads through entMsg.
	ne = 0
	for i := range cnt {
		cnt[i] = 0
	}
	for _, id := range b.senders {
		c := &net.ctxs[id]
		if c.nBoxed == 0 {
			continue
		}
		base := net.off[id]
		for p, msg := range c.out {
			if msg == nil {
				continue
			}
			u := net.portsFlat[base+p]
			if checkHalt && net.haltSeg[u] != 0 {
				continue
			}
			var slot int32
			if sf != nil {
				slot = sf[base+p]
			} else {
				slot = int32(net.off[u]) + net.revFlat[base+p]
			}
			cnt[1+(slot>>tileShift)]++
			ne++
		}
	}
	for t := 1; t <= net.tileCount; t++ {
		cnt[t] += cnt[t-1]
	}
	for _, id := range b.senders {
		c := &net.ctxs[id]
		if c.nBoxed > 0 {
			if count {
				b.trBoxed += c.nBoxed
			}
			base := net.off[id]
			out := c.out
			for p, msg := range out {
				if msg == nil {
					continue
				}
				out[p] = nil
				u := net.portsFlat[base+p]
				if checkHalt && net.haltSeg[u] != 0 {
					if count {
						b.trDrops++
					}
					if net.trackDead {
						b.dead = append(b.dead, DeadSend{From: c.id, Port: p, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
					}
					continue
				}
				var slot int32
				if sf != nil {
					slot = sf[base+p]
				} else {
					slot = int32(net.off[u]) + net.revFlat[base+p]
				}
				j := cnt[slot>>tileShift]
				cnt[slot>>tileShift] = j + 1
				b.entSlot[j] = slot
				b.entU[j] = u
				b.entMsg[j] = msg
			}
			c.nBoxed = 0
		}
		c.sentAny = false
	}
	for j := int32(0); j < ne; j++ {
		slot := b.entSlot[j]
		net.inBoxed[slot] = b.entMsg[j]
		b.entMsg[j] = nil
		u := b.entU[j]
		if !net.recvAny[u].Load() {
			net.recvAny[u].Store(true)
		}
	}
	b.senders = b.senders[:0]
}
