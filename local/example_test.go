package local_test

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/local"
)

// Writing a LOCAL algorithm from scratch: each node learns the minimum ID
// in its 2-neighborhood in exactly two rounds. The harness delivers one
// message per edge per round; Next() is the round barrier.
func ExampleNetwork_Run() {
	// A path 0-1-2-3.
	g := graph.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)

	net := local.NewNetwork(g, 1)
	outs := net.Run(func(ctx *local.Ctx) {
		min := ctx.ID()
		for round := 0; round < 2; round++ {
			ctx.Broadcast(min)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.Recv(p).(int); ok && m < min {
					min = m
				}
			}
		}
		ctx.SetOutput(min)
	})

	fmt.Println(outs, "in", net.Rounds(), "rounds")
	// Output: [0 0 0 1] in 2 rounds
}
