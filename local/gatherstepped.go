package local

import "sync/atomic"

// This file is the native stepped form of ball gathering: the same
// flooding protocol as the blocking GatherBall (gather.go), unrolled at
// its Next boundaries into a Stepped program with flat per-node state.
// Instead of a coroutine stack, a map of adjacency lists and a reflective
// ballMsg per round, a node keeps its knowledge as two growing arrays
// (discovery-ordered IDs and their adjacency slices) and ships each
// round's frontier as one packed []int32 — the payload shrinks by the map
// and interface headers, and a round touches only compact memory. The
// blocking GatherBall survives as the reference implementation the
// stepped engine is pinned against (TestGatherSteppedMatchesBlocking and
// the BFS ground-truth property test run both).

// Ball is the flat form of a gathered radius-t ball: node IDs in
// discovery order (IDs[0] is the center) with Adj[i] holding the known
// adjacency of IDs[i] in port order, nil for nodes at distance exactly
// Radius (known only from their traveling self-reports). Info converts to
// the map-based BallInfo; consumers on the hot path read the flat form
// directly and skip the map materialization.
type Ball struct {
	Center int
	Radius int
	IDs    []int32
	Adj    [][]int32
}

// Info materializes the BallInfo view of the ball: the exact value the
// blocking GatherBall returns for the same node and radius (same key set,
// same adjacency contents and nil-ness).
func (b *Ball) Info() *BallInfo {
	adj := make(map[int][]int, len(b.IDs))
	for i, id := range b.IDs {
		a := b.Adj[i]
		if a == nil {
			adj[int(id)] = nil
			continue
		}
		conv := make([]int, len(a))
		for j, u := range a {
			conv[j] = int(u)
		}
		adj[int(id)] = conv
	}
	return &BallInfo{Center: b.Center, Radius: b.Radius, Adj: adj}
}

// steppedGatherOff ablates the native stepped gather for callers of
// GatherBalls (and the internal consumers that dispatch on
// SteppedGatherEnabled); the zero value means the stepped path is ON.
var steppedGatherOff atomic.Bool

// SetSteppedGather toggles the native stepped gather path (on by
// default). The blocking coroutine path (GatherBall under Network.Run) is
// the compatibility shim GatherBalls falls back to; results are
// byte-identical either way — the hook exists so the equivalence suite
// and ablation benchmarks can pin that claim, exactly like SetRelabel and
// SetIntFastPath.
func SetSteppedGather(on bool) { steppedGatherOff.Store(!on) }

// SteppedGatherEnabled reports the current package default.
func SteppedGatherEnabled() bool { return !steppedGatherOff.Load() }

// gatherState is one node's flat gather state. ids/adj grow in discovery
// order; freshAt[i] is the 1-based round in which entry i last became
// fresh (new or upgraded), deduplicating the per-round frontier without a
// per-round clear. seen accelerates membership tests once the ball
// outgrows linear scanning (small balls never allocate the map).
type gatherState struct {
	ids     []int32
	adj     [][]int32
	freshAt []int32
	fresh   []int32 // indices into ids, this round's frontier
	seen    map[int32]int32
	round   int32
}

// gatherScanMax is the ball size up to which membership tests stay linear
// scans over the flat id array; beyond it the state switches to a map.
// Small balls (the common case: radius 2–4 on bounded degree) stay
// allocation-light and cache-resident.
const gatherScanMax = 96

// find returns the index of id in s.ids, or -1.
//
//deltacolor:hotpath
func (s *gatherState) find(id int32) int32 {
	if s.seen != nil {
		if i, ok := s.seen[id]; ok {
			return i
		}
		return -1
	}
	for i, x := range s.ids {
		if x == id {
			return int32(i)
		}
	}
	return -1
}

// add appends a new (id, adjacency) entry and returns its index.
func (s *gatherState) add(id int32, a []int32) int32 {
	i := int32(len(s.ids))
	s.ids = append(s.ids, id)
	s.adj = append(s.adj, a)
	s.freshAt = append(s.freshAt, 0)
	if s.seen != nil {
		s.seen[id] = i
	} else if len(s.ids) > gatherScanMax {
		s.seen = make(map[int32]int32, 2*len(s.ids))
		for j, x := range s.ids {
			s.seen[x] = int32(j)
		}
	}
	return i
}

// learn merges one received record into the state, marking the entry
// fresh when it is new or upgrades a nil adjacency — the same rule as the
// blocking merge (gather.go): first sighting wins, a later non-nil
// adjacency fills in a nil placeholder, anything else is a duplicate.
//
//deltacolor:hotpath
func (s *gatherState) learn(id int32, a []int32) {
	i := s.find(id)
	if i < 0 {
		i = s.add(id, a)
	} else if s.adj[i] == nil && a != nil {
		s.adj[i] = a
	} else {
		return
	}
	if s.freshAt[i] != s.round {
		s.freshAt[i] = s.round
		s.fresh = append(s.fresh, i)
	}
}

// gatherProgram is the stepped unrolling of GatherBall's loop. Round 0
// (Init) broadcasts the id-only self-intro; step k consumes the round-k
// arrivals, learns its own adjacency from the port intros when k == 1,
// rebroadcasts the frontier as one packed []int32, and materializes the
// flat Ball after exactly t rounds. Record encoding: id, count,
// neighbors...; count == -1 marks an id-only record (nil adjacency).
func gatherProgram(t int) Stepped[gatherState] {
	return Stepped[gatherState]{
		Init: func(ctx *Ctx, s *gatherState) bool {
			if t <= 0 {
				// Radius 0: the ball is the center alone; its own adjacency
				// is the empty (non-nil) list, matching the blocking form.
				ctx.SetOutput(&Ball{Center: ctx.ID(), Radius: t, IDs: []int32{int32(ctx.ID())}, Adj: [][]int32{{}}})
				return false
			}
			s.ids = append(s.ids, int32(ctx.ID()))
			s.adj = append(s.adj, nil)
			s.freshAt = append(s.freshAt, 0)
			// "I exist": adjacency is unknown until the port intros arrive.
			//lint:ignore hotpathalloc gather payloads are variable-length and receivers retain aliases into them, so each round ships a freshly allocated boxed []int32 by design (the blocking shim allocates a map per message instead)
			ctx.Broadcast([]int32{int32(ctx.ID()), -1})
			return true
		},
		Step: func(ctx *Ctx, s *gatherState) bool {
			s.round++
			s.fresh = s.fresh[:0]
			deg := ctx.Degree()
			if s.round == 1 {
				// Port intros: learn our own adjacency (port order) and the
				// neighbors as id-only entries. Entry 0 is the center; its
				// freshness mirrors the blocking form's fresh[self] update
				// after round 0.
				my := make([]int32, 0, deg)
				for p := 0; p < deg; p++ {
					m, ok := ctx.Recv(p).([]int32)
					if !ok {
						continue
					}
					id := m[0]
					my = append(my, id)
					s.learn(id, nil)
				}
				s.adj[0] = my
				if s.freshAt[0] != s.round {
					s.freshAt[0] = s.round
					s.fresh = append(s.fresh, 0)
				}
			} else {
				for p := 0; p < deg; p++ {
					m, ok := ctx.Recv(p).([]int32)
					if !ok {
						continue
					}
					for i := 0; i < len(m); {
						id, cnt := m[i], m[i+1]
						if cnt < 0 {
							s.learn(id, nil)
							i += 2
							continue
						}
						// The adjacency slice aliases the message: payload
						// buffers are allocated per sender round and never
						// reused, so the alias stays valid for the run.
						s.learn(id, m[i+2:i+2+int(cnt):i+2+int(cnt)])
						i += 2 + int(cnt)
					}
				}
			}
			if int(s.round) == t {
				ctx.SetOutput(&Ball{Center: ctx.ID(), Radius: t, IDs: s.ids, Adj: s.adj})
				return false
			}
			if len(s.fresh) > 0 {
				words := 0
				for _, i := range s.fresh {
					words += 2 + len(s.adj[i])
				}
				//lint:ignore hotpathalloc see Init: one packed []int32 per sender round is the gather payload contract; receivers alias into it, so the buffer cannot be pooled or reused
				out := make([]int32, 0, words)
				for _, i := range s.fresh {
					a := s.adj[i]
					if a == nil {
						out = append(out, s.ids[i], -1)
						continue
					}
					out = append(out, s.ids[i], int32(len(a)))
					out = append(out, a...)
				}
				ctx.Broadcast(out)
			}
			return true
		},
	}
}

// GatherStepped collects the radius-t ball of every node through the
// engine's native stepped form and returns the flat balls indexed by
// external node ID. It consumes exactly t rounds (net.Rounds() == t), like
// the blocking GatherBall it replaces on the hot path.
func GatherStepped(net *Network, t int) []*Ball {
	outs := RunStepped(net, gatherProgram(t))
	balls := make([]*Ball, len(outs))
	for v, o := range outs {
		balls[v] = o.(*Ball)
	}
	return balls
}

// GatherBalls collects every node's radius-t ball as BallInfo values,
// dispatching to the native stepped gather (default) or to the blocking
// coroutine shim (SetSteppedGather(false)). The two paths return
// byte-identical balls and consume identical rounds; only the engine form
// and the wire encoding differ.
func GatherBalls(net *Network, t int) []*BallInfo {
	if !SteppedGatherEnabled() {
		return gatherBallsBlocking(net, t)
	}
	flat := GatherStepped(net, t)
	balls := make([]*BallInfo, len(flat))
	for v, b := range flat {
		balls[v] = b.Info()
	}
	return balls
}

// gatherBallsBlocking is the compatibility shim: the pre-port coroutine
// path, GatherBall under Network.Run. It is kept as the reference
// implementation the stepped engine is tested against, not as a hot path.
func gatherBallsBlocking(net *Network, t int) []*BallInfo {
	outs := net.Run(func(ctx *Ctx) {
		ctx.SetOutput(GatherBall(ctx, t))
	})
	balls := make([]*BallInfo, len(outs))
	for v, o := range outs {
		balls[v] = o.(*BallInfo)
	}
	return balls
}
