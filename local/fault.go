// Deterministic fault injection for the LOCAL runtime.
//
// A FaultPlan attached to a Network perturbs the delivery path with
// message drops, duplications, bounded delays, and node crash windows —
// all decided by pure hashes of (plan seed, run sequence, round, edge
// slot), so a faulty run is exactly reproducible across worker counts,
// batch sizes and repeated executions, and two networks built the same
// way observe the same fault schedule.
//
// The healthy engine pays exactly one nil-pointer check per batch for
// this file to exist: doBatch dispatches to the faulty kernels below only
// when a plan is attached, so the zero-allocations-per-round guarantee of
// the fast path is untouched (TestTracerZeroAllocsPerRound and the E15
// overhead gate both run with fault == nil).
//
// Fault model:
//
//   - Drop: a staged message vanishes (counted in FaultStats.Drops).
//   - Delay: a staged message is postponed 1..MaxDelay rounds, then
//     injected into the receiver's inbox lane before that round's regular
//     delivery; a fresh message on the same (receiver, port) overwrites
//     the stale injection, preserving the one-message-per-edge-per-round
//     rule. A delayed message whose receiver halts first, or whose due
//     round lies beyond the end of the run, is lost (DelayedDrops).
//   - Duplicate: the message is delivered normally and additionally
//     re-injected in the following round (Dups).
//   - Crash window: the node freezes for rounds [From, To): its program
//     does not step, anything sent to it is dropped (CrashDrops), and its
//     inbox is wiped. At round To it resumes with its program state
//     intact — the single-process runtime models a process that stops
//     participating, not one that loses memory. To == 0 means the node
//     never comes back.
//
// Because dropped or delayed messages can stall a protocol forever, any
// plan that enables a fault must set RoundLimit: the engine force-halts
// the run after that many rounds (FaultStats.RoundLimited), so every
// faulty execution terminates. Node programs that panic on fault-mangled
// input are force-halted instead of killing the process (NodePanics);
// detection and repair then happen above the runtime (deltacolor.Recolor).
package local

import (
	"fmt"
	"math"
	"sync/atomic"
)

// CrashWindow takes one node offline for the half-open round interval
// [From, To). From is 1-based and must be >= 1 (nodes always execute
// their init segment); To == 0 means the node never restarts. Windows
// naming nodes outside the network are ignored, so one plan can be
// shared by networks of different sizes (quotient networks included).
type CrashWindow struct {
	Node int // external node ID
	From int // first offline round (1-based)
	To   int // first round back online; 0 = never
}

// FaultPlan is a deterministic fault schedule. The zero value injects
// nothing. Probabilities are per staged message; every decision is a pure
// hash of (Seed, run sequence, round, directed-edge slot), independent of
// the network's own randomness seed, so the fault schedule and the
// protocol's coin flips vary independently.
//
// FromRound/ToRound bound the rounds in which message faults (drop,
// duplicate, delay) fire: 1-based, inclusive, zero meaning unbounded on
// that side. Crash windows carry their own bounds.
//
// A plan must Validate before use; SetFaultPlan and SetDefaultFaultPlan
// enforce that. Plans are treated as immutable once attached.
type FaultPlan struct {
	Seed      int64   // fault-schedule seed (independent of the network seed)
	DropProb  float64 // per-message drop probability
	DupProb   float64 // per-message duplicate probability
	DelayProb float64 // per-message delay probability
	MaxDelay  int     // delays are uniform in 1..MaxDelay rounds

	FromRound int // first round message faults fire in (0 = from the start)
	ToRound   int // last round message faults fire in (0 = no end)

	Crashes []CrashWindow

	// RoundLimit force-halts a run after this many rounds. Required
	// whenever the plan injects any fault; a plan with only RoundLimit
	// set is a plain round budget.
	RoundLimit int
}

// active reports whether the plan injects any fault at all.
func (p *FaultPlan) active() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.DelayProb > 0 || len(p.Crashes) > 0
}

// Validate checks the plan's parameters.
func (p *FaultPlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"DropProb", p.DropProb}, {"DupProb", p.DupProb}, {"DelayProb", p.DelayProb}} {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault plan: %s = %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("fault plan: MaxDelay = %d is negative", p.MaxDelay)
	}
	if p.DelayProb > 0 && p.MaxDelay < 1 {
		return fmt.Errorf("fault plan: DelayProb > 0 requires MaxDelay >= 1")
	}
	if p.FromRound < 0 || p.ToRound < 0 {
		return fmt.Errorf("fault plan: negative round bound [%d,%d]", p.FromRound, p.ToRound)
	}
	if p.ToRound > 0 && p.FromRound > p.ToRound {
		return fmt.Errorf("fault plan: FromRound %d > ToRound %d", p.FromRound, p.ToRound)
	}
	for _, w := range p.Crashes {
		if w.Node < 0 {
			return fmt.Errorf("fault plan: crash window names negative node %d", w.Node)
		}
		if w.From < 1 {
			return fmt.Errorf("fault plan: crash window for node %d starts at round %d (must be >= 1)", w.Node, w.From)
		}
		if w.To != 0 && w.To <= w.From {
			return fmt.Errorf("fault plan: crash window for node %d is empty: [%d,%d)", w.Node, w.From, w.To)
		}
	}
	if p.RoundLimit < 0 {
		return fmt.Errorf("fault plan: RoundLimit = %d is negative", p.RoundLimit)
	}
	if p.active() && p.RoundLimit < 1 {
		return fmt.Errorf("fault plan: a plan that injects faults must set RoundLimit (faults can stall protocols forever)")
	}
	return nil
}

// FaultStats counts the faults injected during the last run. All zero
// when no plan is attached.
type FaultStats struct {
	Drops        int64 // messages dropped by DropProb
	Dups         int64 // duplicate deliveries queued by DupProb
	Delays       int64 // messages postponed by DelayProb
	DelayedDrops int64 // delayed/duplicated messages lost before injection
	CrashDrops   int64 // messages dropped because the receiver was offline
	OfflineSteps int64 // node-rounds frozen inside crash windows
	NodePanics   int64 // node programs that panicked and were force-halted
	RoundLimited int64 // 1 when the run hit the plan's RoundLimit
}

// Total returns the number of injected fault events (excluding
// OfflineSteps and RoundLimited, which are states rather than events).
func (s FaultStats) Total() int64 {
	return s.Drops + s.Dups + s.Delays + s.DelayedDrops + s.CrashDrops + s.NodePanics
}

// defaultFaultPlan is the package default installed on new networks; see
// SetDefaultFaultPlan.
var defaultFaultPlan atomic.Pointer[FaultPlan]

// SetDefaultFaultPlan installs a process-wide fault plan picked up by
// every Network created afterwards (exactly like SetDefaultTracer), or
// removes it when p is nil. The plan is validated here so the pickup in
// NewNetwork cannot fail. Pass nil around fault-free sections — the
// repair engine's internal networks, for example, must not inherit the
// plan that broke the run they are repairing (deltacolor.Recolor does
// this automatically).
func SetDefaultFaultPlan(p *FaultPlan) error {
	if p != nil {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	defaultFaultPlan.Store(p)
	return nil
}

// DefaultFaultPlan returns the currently installed package default (nil
// when none).
func DefaultFaultPlan() *FaultPlan { return defaultFaultPlan.Load() }

// SetFaultPlan attaches a fault plan to this network (nil detaches). Must
// not be called during a run; the plan applies to subsequent runs.
func (net *Network) SetFaultPlan(p *FaultPlan) error {
	if p != nil {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	net.fault = p
	net.crashW = nil
	if p != nil && len(p.Crashes) > 0 {
		net.crashW = make(map[int][]CrashWindow, len(p.Crashes))
		for _, w := range p.Crashes {
			net.crashW[w.Node] = append(net.crashW[w.Node], w)
		}
	}
	return nil
}

// FaultPlan returns the attached plan (nil when none).
func (net *Network) FaultPlan() *FaultPlan { return net.fault }

// FaultStats returns the fault counters of the last run.
func (net *Network) FaultStats() FaultStats { return net.faultStats }

// pendingFault is a delayed or duplicated message waiting to be injected
// into its receiver's inbox lane at the start of round due.
type pendingFault struct {
	due   int     // 1-based round whose delivery injects the message
	node  int32   // internal receiver index
	slot  int     // receiver's inbox lane slot
	isInt bool    // int lane vs boxed lane
	val   int32   // int payload
	boxed Message // boxed payload
}

// Hash salts separating the independent fault decisions on one message.
const (
	saltDrop     = 0x9ddf_ea08_eb38_2d69
	saltDup      = 0x2545_f491_4f6c_dd1d
	saltDelay    = 0xda94_2042_e4dd_58b5
	saltDelayLen = 0x8b72_e734_0b87_0ae5
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// faultBits derives the decision bits for one (message, fault kind). It
// is a pure function of its arguments — no RNG stream, no iteration
// order — which is what makes the schedule independent of batching and
// worker scheduling.
func faultBits(seed uint64, runSeq int64, round, slot int, salt uint64) uint64 {
	x := seed + salt
	x = mix64(x + uint64(runSeq)*0x9e3779b97f4a7c15)
	x = mix64(x + uint64(round)*0xc2b2ae3d27d4eb4f + uint64(slot)*0x165667b19e3779f9)
	return mix64(x)
}

// u01 maps hash bits to a uniform float64 in [0, 1).
func u01(bits uint64) float64 { return float64(bits>>11) * (1.0 / (1 << 53)) }

// offlineAt reports whether the node with external ID ext is inside a
// crash window at the given 1-based round.
func (net *Network) offlineAt(ext, round int) bool {
	for _, w := range net.crashW[ext] {
		if round >= w.From && (w.To == 0 || round < w.To) {
			return true
		}
	}
	return false
}

// stepBatchFaulty is stepBatch with crash windows and panic containment.
// It is deliberately not on the hot path: a network with a fault plan
// attached trades throughput for the fault model.
//
//deltacolor:coordinator
func (net *Network) stepBatchFaulty(fn func(*Ctx) bool, b *batch) {
	hasCrash := net.crashW != nil
	kept := b.live[:0]
	for _, id := range b.live {
		c := &net.ctxs[id]
		if hasCrash && net.offlineAt(c.id, net.rounds) {
			// Frozen: the program does not execute this round, and
			// anything already in the inbox is lost with the outage.
			b.ftOffline++
			if net.recvAny[id].Load() {
				clear(c.in)
				net.recvAny[id].Store(false)
			}
			if net.recvInt[id].Load() {
				clearBytes(c.inHas)
				net.recvInt[id].Store(false)
			}
			kept = append(kept, id)
			continue
		}
		if net.stepNodeRecover(fn, c, b) {
			kept = append(kept, id)
		} else {
			net.haltSeg[id] = int32(net.rounds) + 1
			b.halts++
		}
		if net.recvAny[id].Load() {
			clear(c.in)
			net.recvAny[id].Store(false)
		}
		if net.recvInt[id].Load() {
			clearBytes(c.inHas)
			net.recvInt[id].Store(false)
		}
		if c.sentAny {
			b.senders = append(b.senders, id)
		}
	}
	b.live = kept
}

// stepNodeRecover runs one node segment, converting a panic into a halt.
// Under fault injection a protocol may legitimately observe states its
// author never considered (a missing announcement, a duplicated token);
// a node that crashes on such input is force-halted and counted, so the
// run terminates and the recovery layer above can repair the damage.
//
//deltacolor:coordinator
func (net *Network) stepNodeRecover(fn func(*Ctx) bool, c *Ctx, b *batch) (cont bool) {
	defer func() {
		if r := recover(); r != nil {
			b.ftPanics++
			cont = false
		}
	}()
	return fn(c)
}

// deliverBatchFaulty is deliverBatch with the fault model applied per
// staged message: receiver-offline drop, then drop, then delay, then
// delivery plus optional duplication. At most one fault fires per
// message. Protocol-level dead sends (halted receivers) are recorded
// exactly as in the healthy kernel, so the strict dead-send gate keeps
// its meaning under fault injection.
//
//deltacolor:coordinator
func (net *Network) deliverBatchFaulty(b *batch) {
	fp := net.fault
	round := net.rounds + 1
	dropP, dupP, delayP := 0.0, 0.0, 0.0
	if round >= fp.FromRound && (fp.ToRound == 0 || round <= fp.ToRound) {
		dropP, dupP, delayP = fp.DropProb, fp.DupProb, fp.DelayProb
	}
	seed := uint64(fp.Seed)
	rs := net.runSeq
	maxDelay := uint64(fp.MaxDelay)
	hasCrash := net.crashW != nil
	checkHalt := !net.noHalts
	count := net.countMsgs
	sf := net.slotFlat
	for _, id := range b.senders {
		c := &net.ctxs[id]
		base := net.off[id]
		if c.nBoxed > 0 {
			if count {
				b.trBoxed += c.nBoxed
			}
			out := c.out
			for pt, msg := range out {
				if msg == nil {
					continue
				}
				out[pt] = nil
				u := net.portsFlat[base+pt]
				if checkHalt && net.haltSeg[u] != 0 {
					if count {
						b.trDrops++
					}
					if net.trackDead {
						b.dead = append(b.dead, DeadSend{From: c.id, Port: pt, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
					}
					continue
				}
				if hasCrash && net.offlineAt(net.toExt(int(u)), round) {
					b.ftCrashIn++
					continue
				}
				if dropP > 0 && u01(faultBits(seed, rs, round, base+pt, saltDrop)) < dropP {
					b.ftDrops++
					continue
				}
				var slot int
				if sf != nil {
					slot = int(sf[base+pt])
				} else {
					slot = net.off[u] + int(net.revFlat[base+pt])
				}
				if delayP > 0 && u01(faultBits(seed, rs, round, base+pt, saltDelay)) < delayP {
					d := 1 + int(faultBits(seed, rs, round, base+pt, saltDelayLen)%maxDelay)
					b.pend = append(b.pend, pendingFault{due: round + d, node: u, slot: slot, boxed: msg})
					b.ftDelays++
					continue
				}
				net.inBoxed[slot] = msg
				if net.inHas[slot] != 0 {
					// A stale injected int on this slot must not shadow the
					// fresh boxed message.
					net.inHas[slot] = 0
				}
				if !net.recvAny[u].Load() {
					net.recvAny[u].Store(true)
				}
				if dupP > 0 && u01(faultBits(seed, rs, round, base+pt, saltDup)) < dupP {
					b.pend = append(b.pend, pendingFault{due: round + 1, node: u, slot: slot, boxed: msg})
					b.ftDups++
				}
			}
			c.nBoxed = 0
		}
		if c.nInts > 0 {
			if count {
				b.trInts += c.nInts
			}
			oh := c.outHas
			for pt, h := range oh {
				if h == 0 {
					continue
				}
				oh[pt] = 0
				u := net.portsFlat[base+pt]
				if checkHalt && net.haltSeg[u] != 0 {
					if count {
						b.trDrops++
					}
					if net.trackDead {
						b.dead = append(b.dead, DeadSend{From: c.id, Port: pt, To: net.toExt(int(u)), Round: net.rounds + 1, HaltRound: int(net.haltSeg[u])})
					}
					continue
				}
				if hasCrash && net.offlineAt(net.toExt(int(u)), round) {
					b.ftCrashIn++
					continue
				}
				if dropP > 0 && u01(faultBits(seed, rs, round, base+pt, saltDrop)) < dropP {
					b.ftDrops++
					continue
				}
				var slot int
				if sf != nil {
					slot = int(sf[base+pt])
				} else {
					slot = net.off[u] + int(net.revFlat[base+pt])
				}
				v := c.outInt[pt]
				if delayP > 0 && u01(faultBits(seed, rs, round, base+pt, saltDelay)) < delayP {
					d := 1 + int(faultBits(seed, rs, round, base+pt, saltDelayLen)%maxDelay)
					b.pend = append(b.pend, pendingFault{due: round + d, node: u, slot: slot, isInt: true, val: v})
					b.ftDelays++
					continue
				}
				net.inInt[slot] = v
				net.inHas[slot] = 1
				if !net.recvInt[u].Load() {
					net.recvInt[u].Store(true)
				}
				if dupP > 0 && u01(faultBits(seed, rs, round, base+pt, saltDup)) < dupP {
					b.pend = append(b.pend, pendingFault{due: round + 1, node: u, slot: slot, isInt: true, val: v})
					b.ftDups++
				}
			}
			c.nInts = 0
		}
		c.sentAny = false
	}
	b.senders = b.senders[:0]
}

// injectPending writes every due delayed/duplicated message into its
// receiver's inbox lane. Runs on the coordinator before the round's
// regular delivery phase, so fresh messages overwrite stale injections
// slot by slot. Receivers that halted or are offline lose the message.
//
//deltacolor:coordinator
func (net *Network) injectPending() {
	round := net.rounds + 1
	kept := net.pendFault[:0]
	for _, pm := range net.pendFault {
		if pm.due != round {
			kept = append(kept, pm)
			continue
		}
		if net.haltSeg[pm.node] != 0 {
			net.faultStats.DelayedDrops++
			continue
		}
		if net.crashW != nil && net.offlineAt(net.toExt(int(pm.node)), round) {
			net.faultStats.CrashDrops++
			continue
		}
		if pm.isInt {
			net.inInt[pm.slot] = pm.val
			net.inHas[pm.slot] = 1
			net.recvInt[pm.node].Store(true)
		} else {
			net.inBoxed[pm.slot] = pm.boxed
			net.recvAny[pm.node].Store(true)
		}
	}
	net.pendFault = kept
}

// drainFault folds the per-batch fault counters and pending-message lists
// into the network's run-level state, and feeds the tracer's cumulative
// fault counters. Coordinator-only, once per round.
//
//deltacolor:coordinator
func (net *Network) drainFault(tr *Tracer) {
	s := &net.faultStats
	var drops, dups, delays, crash int64
	for i := range net.batches {
		b := &net.batches[i]
		if len(b.pend) > 0 {
			net.pendFault = append(net.pendFault, b.pend...)
			b.pend = b.pend[:0]
		}
		if b.ftDrops|b.ftDups|b.ftDelays|b.ftCrashIn|b.ftOffline|b.ftPanics == 0 {
			continue
		}
		drops += int64(b.ftDrops)
		dups += int64(b.ftDups)
		delays += int64(b.ftDelays)
		crash += int64(b.ftCrashIn)
		s.OfflineSteps += int64(b.ftOffline)
		s.NodePanics += int64(b.ftPanics)
		b.ftDrops, b.ftDups, b.ftDelays, b.ftCrashIn, b.ftOffline, b.ftPanics = 0, 0, 0, 0, 0, 0
	}
	s.Drops += drops
	s.Dups += dups
	s.Delays += delays
	s.CrashDrops += crash
	if tr != nil && net.countMsgs {
		tr.countFaults(drops+crash, dups, delays)
	}
}

// finishFaultRun closes out fault accounting at the end of a run: any
// message still awaiting injection is lost, and the separate fault-drop
// total is published to MessageStats so the dead-send accounting (and
// its strict CI gate) stays distinct from injected faults.
//
//deltacolor:coordinator
func (net *Network) finishFaultRun(tr *Tracer) {
	net.drainFault(tr)
	if n := len(net.pendFault); n > 0 {
		net.faultStats.DelayedDrops += int64(n)
		net.pendFault = net.pendFault[:0]
	}
	if net.stats != nil {
		s := &net.faultStats
		net.stats.DroppedByFault = int(s.Drops + s.CrashDrops + s.DelayedDrops)
	}
}
