package local

import (
	"testing"

	"deltacolor/graph"
)

func pathGraph(n int) *graph.G {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) *graph.G {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)
	}
	return g
}

func TestRunNoRounds(t *testing.T) {
	g := pathGraph(4)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		ctx.SetOutput(ctx.ID() * 2)
	})
	if net.Rounds() != 0 {
		t.Fatalf("rounds=%d", net.Rounds())
	}
	for v, o := range outs {
		if o.(int) != v*2 {
			t.Fatalf("output[%d]=%v", v, o)
		}
	}
}

func TestMessageDelivery(t *testing.T) {
	g := pathGraph(3)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		ctx.Broadcast(ctx.ID())
		ctx.Next()
		sum := 0
		for p := 0; p < ctx.Degree(); p++ {
			if m := ctx.Recv(p); m != nil {
				sum += m.(int)
			}
		}
		ctx.SetOutput(sum)
	})
	if net.Rounds() != 1 {
		t.Fatalf("rounds=%d", net.Rounds())
	}
	// Node 0 hears 1; node 1 hears 0+2; node 2 hears 1.
	want := []int{1, 2, 1}
	for v := range want {
		if outs[v].(int) != want[v] {
			t.Fatalf("node %d heard %v, want %d", v, outs[v], want[v])
		}
	}
}

func TestPortDirectionality(t *testing.T) {
	// Each node sends its ID on port 0 only; the receiver must see it on
	// the reverse port.
	g := graph.New(2)
	g.MustEdge(0, 1)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		ctx.Send(0, ctx.ID()+100)
		ctx.Next()
		ctx.SetOutput(ctx.Recv(0))
	})
	if outs[0].(int) != 101 || outs[1].(int) != 100 {
		t.Fatalf("outs=%v", outs)
	}
}

func TestHaltedNodeMessagesStillDelivered(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Broadcast("bye")
			return // halt immediately after staging
		}
		ctx.Next()
		ctx.SetOutput(ctx.Recv(0))
	})
	if outs[1] != "bye" {
		t.Fatalf("node 1 got %v", outs[1])
	}
}

func TestMultiRoundFlood(t *testing.T) {
	// Count distinct IDs heard after r rounds of flooding on a cycle.
	n, r := 12, 3
	g := cycleGraph(n)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		known := map[int]bool{ctx.ID(): true}
		for i := 0; i < r; i++ {
			snapshot := make([]int, 0, len(known))
			for id := range known {
				snapshot = append(snapshot, id)
			}
			ctx.Broadcast(snapshot)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.Recv(p).([]int); ok {
					for _, id := range m {
						known[id] = true
					}
				}
			}
		}
		ctx.SetOutput(len(known))
	})
	if net.Rounds() != r {
		t.Fatalf("rounds=%d", net.Rounds())
	}
	for v, o := range outs {
		if o.(int) != 2*r+1 {
			t.Fatalf("node %d knows %v ids, want %d", v, o, 2*r+1)
		}
	}
}

func TestRunWithInput(t *testing.T) {
	g := pathGraph(3)
	net := NewNetwork(g, 1)
	inputs := []any{10, 20, 30}
	outs := net.RunWithInput(func(ctx *Ctx) {
		ctx.SetOutput(ctx.Input().(int) + 1)
	}, inputs)
	for v := range outs {
		if outs[v].(int) != inputs[v].(int)+1 {
			t.Fatal("inputs not wired")
		}
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	g := pathGraph(4)
	draw := func(seed int64) []int64 {
		net := NewNetwork(g, seed)
		outs := net.Run(func(ctx *Ctx) { ctx.SetOutput(ctx.Rand().Int63()) })
		vals := make([]int64, len(outs))
		for i, o := range outs {
			vals[i] = o.(int64)
		}
		return vals
	}
	a, b, c := draw(1), draw(1), draw(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestStaggeredHalts(t *testing.T) {
	// Node v halts after v rounds; later nodes must keep making progress.
	g := cycleGraph(6)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		for i := 0; i < ctx.ID(); i++ {
			ctx.Next()
		}
		ctx.SetOutput(ctx.ID())
	})
	if net.Rounds() < 5 {
		t.Fatalf("rounds=%d", net.Rounds())
	}
	for v, o := range outs {
		if o.(int) != v {
			t.Fatal("outputs wrong")
		}
	}
}

func TestGatherBall(t *testing.T) {
	g := cycleGraph(10)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		b := GatherBall(ctx, 3)
		ctx.SetOutput(b)
	})
	if net.Rounds() != 3 {
		t.Fatalf("rounds=%d", net.Rounds())
	}
	b0 := outs[0].(*BallInfo)
	// Existence known for distance <= 3: nodes 7,8,9,0,1,2,3 on C10.
	if len(b0.Adj) != 7 {
		t.Fatalf("node 0 knows %d nodes, want 7", len(b0.Adj))
	}
	// Adjacency complete for distance <= 2.
	for _, u := range []int{8, 9, 0, 1, 2} {
		if len(b0.Adj[u]) != 2 {
			t.Fatalf("adjacency of %d incomplete: %v", u, b0.Adj[u])
		}
	}
}

func TestAccountant(t *testing.T) {
	var a Accountant
	a.Charge("x", 3)
	a.Charge("y", 4)
	if a.Total() != 7 {
		t.Fatalf("total=%d", a.Total())
	}
	if len(a.Phases()) != 2 {
		t.Fatal("phases")
	}
	if s := a.String(); s != "x:3 + y:4 = 7" {
		t.Fatalf("string=%q", s)
	}
}
