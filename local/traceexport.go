package local

// Trace exporters: Chrome trace-event JSON (loads in chrome://tracing and
// https://ui.perfetto.dev) and a compact JSONL form that round-trips
// losslessly (WriteTraceJSONL → ReadTraceJSONL → WriteTraceJSONL is
// byte-identical), for downstream tooling that wants to diff or aggregate
// traces rather than view them.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceDump bundles everything one traced run produced: the span timeline
// of the pipeline (nil when spans were not collected), the engine's
// per-round records (ring contents, oldest first; empty below TraceFull),
// and the cumulative counters.
type TraceDump struct {
	Span     *Span        `json:"span,omitempty"`
	Rounds   []RoundTrace `json:"rounds,omitempty"`
	Counters Counters     `json:"counters"`
}

// Dump snapshots the tracer into a TraceDump with the given span root
// (may be nil).
func (t *Tracer) Dump(root *Span) *TraceDump {
	return &TraceDump{Span: root, Rounds: t.Rounds(), Counters: t.Counters()}
}

// ---------------------------------------------------------------------------
// JSONL.

// traceLine is one line of the JSONL trace stream. Exactly one of the
// payload fields is set, per Type.
type traceLine struct {
	Type     string      `json:"type"` // "counters" | "span" | "round"
	Counters *Counters   `json:"counters,omitempty"`
	Span     *Span       `json:"span,omitempty"`
	Round    *RoundTrace `json:"round,omitempty"`
}

// WriteTraceJSONL writes the dump as JSON Lines: a counters line, the span
// tree as a single nested line (when present), then one line per recorded
// round. The encoding is canonical — parsing and re-emitting a stream
// reproduces it byte for byte (the schema round-trip test pins this).
func WriteTraceJSONL(w io.Writer, d *TraceDump) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	c := d.Counters
	if err := enc.Encode(traceLine{Type: "counters", Counters: &c}); err != nil {
		return err
	}
	if d.Span != nil {
		if err := enc.Encode(traceLine{Type: "span", Span: d.Span}); err != nil {
			return err
		}
	}
	for i := range d.Rounds {
		if err := enc.Encode(traceLine{Type: "round", Round: &d.Rounds[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL parses a stream written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) (*TraceDump, error) {
	d := &TraceDump{}
	dec := json.NewDecoder(r)
	sawCounters := false
	for {
		var ln traceLine
		if err := dec.Decode(&ln); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace jsonl: %w", err)
		}
		switch ln.Type {
		case "counters":
			if ln.Counters == nil {
				return nil, fmt.Errorf("trace jsonl: counters line without counters")
			}
			d.Counters = *ln.Counters
			sawCounters = true
		case "span":
			if ln.Span == nil {
				return nil, fmt.Errorf("trace jsonl: span line without span")
			}
			d.Span = ln.Span
		case "round":
			if ln.Round == nil {
				return nil, fmt.Errorf("trace jsonl: round line without round")
			}
			d.Rounds = append(d.Rounds, *ln.Round)
		default:
			return nil, fmt.Errorf("trace jsonl: unknown line type %q", ln.Type)
		}
	}
	if !sawCounters {
		return nil, fmt.Errorf("trace jsonl: missing counters line")
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Chrome trace events.

// chromeEvent is one entry of the trace-event format's traceEvents array
// (the subset Perfetto needs: complete events "X", counter events "C" and
// thread-name metadata "M"). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromePid     = 1
	tidPipeline   = 1 // span timeline (pipeline → phase → primitive)
	tidEngine     = 2 // per-round engine slices
	tidCounters   = 3 // live-node / message counter tracks
	nanosPerMicro = 1e3
)

// WriteChromeTrace writes the dump in Chrome trace-event JSON. The span
// tree lands on a "pipeline" thread as nested complete events, the
// engine's rounds on an "engine" thread (one slice per round, with the
// phase split and lane counts in args), and two counter tracks expose
// live nodes and per-round messages over time. Open the file in
// https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, d *TraceDump) error {
	var evs []chromeEvent
	meta := func(tid int, name string) {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(tidPipeline, "pipeline")
	if len(d.Rounds) > 0 {
		meta(tidEngine, "engine rounds")
		meta(tidCounters, "engine counters")
	}

	if d.Span != nil {
		d.Span.Walk(func(s *Span, depth int) {
			evs = append(evs, chromeEvent{
				Name: s.Name, Ph: "X", Pid: chromePid, Tid: tidPipeline,
				Ts:  float64(s.StartNanos) / nanosPerMicro,
				Dur: float64(s.DurNanos) / nanosPerMicro,
				Args: map[string]any{
					"rounds":   s.Rounds,
					"messages": s.Messages,
					"depth":    depth,
				},
			})
		})
	}

	for i := range d.Rounds {
		r := &d.Rounds[i]
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("run %d round %d", r.Run, r.Round),
			Ph:   "X", Pid: chromePid, Tid: tidEngine,
			Ts:  float64(r.StartNanos) / nanosPerMicro,
			Dur: float64(r.DeliverNanos+r.StepNanos) / nanosPerMicro,
			Args: map[string]any{
				"deliver_us": float64(r.DeliverNanos) / nanosPerMicro,
				"step_us":    float64(r.StepNanos) / nanosPerMicro,
				"live":       r.Live,
				"senders":    r.Senders,
				"halts":      r.Halts,
				"int_msgs":   r.IntMsgs,
				"boxed_msgs": r.BoxedMsgs,
				"drops":      r.Drops,
			},
		})
		ts := float64(r.StartNanos) / nanosPerMicro
		evs = append(evs, chromeEvent{
			Name: "live nodes", Ph: "C", Pid: chromePid, Tid: tidCounters, Ts: ts,
			Args: map[string]any{"live": r.Live},
		})
		evs = append(evs, chromeEvent{
			Name: "messages", Ph: "C", Pid: chromePid, Tid: tidCounters, Ts: ts,
			Args: map[string]any{"int": r.IntMsgs, "boxed": r.BoxedMsgs},
		})
	}

	out := struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata,omitempty"`
	}{
		TraceEvents: evs,
		Metadata: map[string]any{
			"tool":     "deltacolor",
			"counters": d.Counters,
		},
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}
