package local

import (
	"math/rand"
	"reflect"
	"testing"

	"deltacolor/graph"
)

// withRelabel runs f under the given package-wide relabel default and
// restores the previous one.
func withRelabel(on bool, f func()) {
	prev := RelabelEnabled()
	SetRelabel(on)
	defer SetRelabel(prev)
	f()
}

// scrambledGraph returns a connected graph whose labels are deliberately
// scattered (a randomly relabeled cycle plus chords), so the locality
// order is guaranteed to differ from the identity.
func scrambledGraph(n int, seed int64) *graph.G {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(perm[i], perm[(i+1)%n])
	}
	for k := 0; k < n/4; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustEdge(u, v)
		}
	}
	return g
}

// TestRelabelActuallyRelabels guards the test premise: on a scrambled
// graph the internal order must differ from the identity (otherwise the
// suite below would vacuously pass).
func TestRelabelActuallyRelabels(t *testing.T) {
	net := NewNetwork(scrambledGraph(64, 3), 1)
	if !net.Relabeled() {
		t.Fatal("scrambled graph produced an identity locality order; invariance tests would be vacuous")
	}
	withRelabel(false, func() {
		if NewNetwork(scrambledGraph(64, 3), 1).Relabeled() {
			t.Fatal("SetRelabel(false) did not ablate the relabeling")
		}
	})
}

// TestRelabelIDAndPortSurface: with relabeling active, every node must
// still observe its external ID, the external port numbering (port p
// leads to g.Neighbors(id)[p]), its external input, and the output array
// must be in external order.
func TestRelabelIDAndPortSurface(t *testing.T) {
	g := scrambledGraph(120, 7)
	net := NewNetwork(g, 1)
	if !net.Relabeled() {
		t.Fatal("premise: network must be relabeled")
	}
	n := g.N()
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = v*10 + 1
	}
	seen := make([]bool, n)
	outs := net.RunWithInput(func(ctx *Ctx) {
		id := ctx.ID()
		if id < 0 || id >= ctx.N() {
			t.Errorf("ctx.ID() = %d outside [0,%d)", id, ctx.N())
		}
		if seen[id] {
			t.Errorf("duplicate ctx.ID() %d", id)
		}
		seen[id] = true
		if ctx.Degree() != g.Deg(id) {
			t.Errorf("node %d: Degree() = %d, want %d", id, ctx.Degree(), g.Deg(id))
		}
		if got := ctx.Input().(int); got != id*10+1 {
			t.Errorf("node %d: Input() = %d, want %d", id, got, id*10+1)
		}
		ctx.BroadcastInt(id)
		ctx.Next()
		for p := 0; p < ctx.Degree(); p++ {
			got, ok := ctx.RecvInt(p)
			if !ok || got != g.Neighbors(id)[p] {
				t.Errorf("node %d port %d: received %v (ok=%v), want neighbor %d", id, p, got, ok, g.Neighbors(id)[p])
			}
		}
		ctx.SetOutput(id)
	}, inputs)
	for v := 0; v < n; v++ {
		if outs[v] != v {
			t.Fatalf("output order broken: outs[%d] = %v", v, outs[v])
		}
	}
}

// runOutcome captures every observable surface of one run for the
// relabel-on/off equivalence checks.
type runOutcome struct {
	outs   []any
	rounds int
	dead   []DeadSend
	late   []DeadSend
	stats  MessageStats
}

func captureRun(g *graph.G, seed int64, f NodeFunc) runOutcome {
	net := NewNetwork(g, seed)
	net.TrackDeadSends(true)
	net.EnableMessageStats()
	outs := net.Run(f)
	return runOutcome{
		outs:   outs,
		rounds: net.Rounds(),
		dead:   net.DeadSends(),
		late:   net.LateDeadSends(),
		stats:  *net.MessageStats(),
	}
}

// TestRelabelInvariance: relabeling on vs off must produce identical
// outputs, round counts, dead-send reports (external From/To) and
// message stats for a protocol that uses randomness, mixed message
// paths, and irregular halting.
func TestRelabelInvariance(t *testing.T) {
	proto := func(ctx *Ctx) {
		sum := ctx.Rand().Intn(1000)
		rounds := 2 + ctx.ID()%4
		for i := 0; i < rounds; i++ {
			if i%2 == 0 {
				ctx.BroadcastInt(sum)
			} else {
				ctx.Broadcast([2]int{ctx.ID(), sum})
			}
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				switch m := ctx.Recv(p).(type) {
				case int:
					sum += m
				case [2]int:
					sum += m[1]
				}
			}
		}
		ctx.SetOutput(sum)
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := scrambledGraph(150, seed)
		var on, off runOutcome
		withRelabel(true, func() { on = captureRun(g, seed, proto) })
		withRelabel(false, func() { off = captureRun(g, seed, proto) })
		if !reflect.DeepEqual(on, off) {
			t.Fatalf("seed %d: relabel-on and relabel-off runs differ:\non:  %+v\noff: %+v", seed, on, off)
		}
		if len(on.dead) == 0 {
			t.Fatalf("seed %d: protocol staged no dead sends; DeadSend surface untested", seed)
		}
	}
}

// TestRelabelGatherBall: the flooded ball must report external IDs and
// external adjacency regardless of relabeling.
func TestRelabelGatherBall(t *testing.T) {
	g := scrambledGraph(80, 5)
	collect := func() []any {
		net := NewNetwork(g, 1)
		return net.Run(func(ctx *Ctx) {
			ctx.SetOutput(GatherBall(ctx, 2))
		})
	}
	var on, off []any
	withRelabel(true, func() { on = collect() })
	withRelabel(false, func() { off = collect() })
	for v := range on {
		bOn, bOff := on[v].(*BallInfo), off[v].(*BallInfo)
		if bOn.Center != v {
			t.Fatalf("ball center %d at external index %d", bOn.Center, v)
		}
		if !reflect.DeepEqual(bOn, bOff) {
			t.Fatalf("node %d: relabeled ball differs from ablated ball", v)
		}
		// Every adjacency the ball reports must match the external graph.
		for id, adj := range bOn.Adj {
			if adj == nil {
				continue
			}
			if len(adj) != g.Deg(id) {
				t.Fatalf("ball of %d: node %d adjacency has %d entries, want %d", v, id, len(adj), g.Deg(id))
			}
			for i, u := range adj {
				if g.Neighbors(id)[i] != u {
					t.Fatalf("ball of %d: node %d adjacency[%d] = %d, want %d", v, id, i, u, g.Neighbors(id)[i])
				}
			}
		}
	}
}

// TestRelabelQuotientNetwork: quotient construction consumes external
// member IDs and its own network relabels independently; outputs must be
// identical with relabeling on and off at both levels.
func TestRelabelQuotientNetwork(t *testing.T) {
	parent := scrambledGraph(90, 9)
	var groups [][]int
	for v := 0; v+2 < parent.N(); v += 9 {
		groups = append(groups, []int{v, v + 1, v + 2})
	}
	proto := func(ctx *Ctx) {
		sum := ctx.ID()
		for i := 0; i < 2; i++ {
			ctx.BroadcastInt(sum)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					sum += m
				}
			}
		}
		ctx.SetOutput(sum)
	}
	run := func() []any { return QuotientNetwork(parent, groups, 3).Run(proto) }
	var on, off []any
	withRelabel(true, func() { on = run() })
	withRelabel(false, func() { off = run() })
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("quotient outputs differ:\non:  %v\noff: %v", on, off)
	}
	if len(on) != len(groups) {
		t.Fatalf("quotient has %d outputs, want one per group (%d)", len(on), len(groups))
	}
}

// TestRelabelStepped: the stepped executor keeps its per-node state by
// internal index; outputs and rounds must nevertheless be identical to
// the ablated run and to the blocking form.
func TestRelabelStepped(t *testing.T) {
	g := scrambledGraph(130, 11)
	run := func() ([]any, int) {
		net := NewNetwork(g, 7)
		outs := RunStepped(net, intFloodStepped(3))
		return outs, net.Rounds()
	}
	var onOuts, offOuts []any
	var onRounds, offRounds int
	withRelabel(true, func() { onOuts, onRounds = run() })
	withRelabel(false, func() { offOuts, offRounds = run() })
	if onRounds != offRounds || !reflect.DeepEqual(onOuts, offOuts) {
		t.Fatalf("stepped relabel-on differs from relabel-off (rounds %d vs %d)", onRounds, offRounds)
	}
}
