package local

import "testing"

// TestNetworkReuseResetsRunState is the regression test for the
// run-state leak: a second Run on the same network must start from
// clean dead-send logs, message-stat counters and run stats — a clean
// second run must not report the first run's dead sends, message
// counts, or rounds.
func TestNetworkReuseResetsRunState(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	net.TrackDeadSends(true)
	net.EnableMessageStats()

	// Run 1: node 0 halts immediately, node 1 keeps talking to it — two
	// dead sends, two messages, two rounds.
	net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return
		}
		ctx.Send(0, "hello?")
		ctx.Next()
		ctx.Send(0, "anyone?")
		ctx.Next()
	})
	if len(net.DeadSends()) != 2 {
		t.Fatalf("run 1: dead sends = %v, want 2", net.DeadSends())
	}
	st1 := *net.MessageStats()
	if st1.Messages != 2 || st1.Dropped != 2 {
		t.Fatalf("run 1: stats = %+v, want 2 messages, 2 dropped", st1)
	}
	rounds1 := net.LastRunStats().Rounds

	// Run 2: one clean round, no dead sends. Every report must describe
	// this run only.
	net.Run(func(ctx *Ctx) {
		ctx.Broadcast("fine")
		ctx.Next()
	})
	if ds := net.DeadSends(); ds != nil {
		t.Errorf("run 2 inherited dead sends: %v", ds)
	}
	st2 := *net.MessageStats()
	if st2.Messages != 2 || st2.Dropped != 0 || st2.TotalBytes == st1.TotalBytes {
		t.Errorf("run 2 stats not reset: %+v (run 1: %+v)", st2, st1)
	}
	if st2.RoundsActive != 1 {
		t.Errorf("run 2 RoundsActive = %d, want 1", st2.RoundsActive)
	}
	lr := net.LastRunStats()
	if lr.Rounds != 1 || lr.Rounds == rounds1 {
		t.Errorf("run 2 LastRunStats = %+v, want Rounds=1 (run 1 had %d)", lr, rounds1)
	}
	if net.Rounds() != 1 {
		t.Errorf("run 2 Rounds() = %d, want 1", net.Rounds())
	}
}

// TestSetupClearsLastRunStats: setup must zero lastRun so a run that is
// still in flight (or died mid-run) never exposes the previous run's
// numbers.
func TestSetupClearsLastRunStats(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	net.Run(func(ctx *Ctx) { ctx.Next() })
	if net.LastRunStats().Rounds == 0 {
		t.Fatal("first run recorded no stats")
	}
	net.setup(nil)
	if st := net.LastRunStats(); st != (RunStats{}) {
		t.Fatalf("setup left stale run stats: %+v", st)
	}
}
