package local

import (
	"runtime/debug"
	"testing"

	"deltacolor/graph"
)

// intFlood mirrors floodProtocol on the int fast path, as a stepped
// program: irregular halting, per-node randomness, broadcast+fold.
func intFloodStepped(rounds int) Stepped[[2]int] {
	return Stepped[[2]int]{
		Init: func(ctx *Ctx, s *[2]int) bool {
			s[0] = ctx.Rand().Intn(1000)
			if rounds+ctx.ID()%5 == 0 {
				ctx.SetOutput(s[0])
				return false
			}
			ctx.BroadcastInt(s[0])
			return true
		},
		Step: func(ctx *Ctx, s *[2]int) bool {
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					s[0] = (s[0] + m) % 1_000_003
				}
			}
			s[1]++
			if s[1] == rounds+ctx.ID()%5 {
				ctx.SetOutput(s[0])
				return false
			}
			ctx.BroadcastInt(s[0])
			return true
		},
	}
}

// TestBatchSizeInvariance runs the same protocol under forced batch sizes
// (including size 1 and a size larger than the network) crossed with
// worker counts and requires identical outputs and round counts: batching
// is a scheduling detail, never a semantic one.
func TestBatchSizeInvariance(t *testing.T) {
	g := randomGraph(200, 0.03, 42)
	run := func(batchSize, workers int) ([]any, int) {
		net := NewNetwork(g, 7)
		net.setBatch(batchSize)
		net.setShards(workers)
		outs := net.Run(floodProtocol(4))
		return outs, net.Rounds()
	}
	base, baseRounds := run(0, 1)
	for _, bs := range []int{1, 3, 64, 1024} {
		for _, w := range []int{1, 3, 8} {
			outs, rounds := run(bs, w)
			if rounds != baseRounds {
				t.Fatalf("batch=%d workers=%d: rounds=%d, want %d", bs, w, rounds, baseRounds)
			}
			for v := range outs {
				if outs[v] != base[v] {
					t.Fatalf("batch=%d workers=%d: output[%d]=%v, want %v", bs, w, v, outs[v], base[v])
				}
			}
		}
	}
}

// TestSteppedMatchesBlocking runs the same irregular protocol in blocking
// (coroutine) and stepped form and requires identical outputs and rounds:
// the stepped form is the exact unrolling of the blocking one.
func TestSteppedMatchesBlocking(t *testing.T) {
	g := randomGraph(150, 0.04, 9)
	blocking := NewNetwork(g, 7)
	wantOuts := blocking.Run(func(ctx *Ctx) {
		sum := ctx.Rand().Intn(1000)
		for i := 0; i < 4+ctx.ID()%5; i++ {
			ctx.BroadcastInt(sum)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					sum = (sum + m) % 1_000_003
				}
			}
		}
		ctx.SetOutput(sum)
	})
	wantRounds := blocking.Rounds()

	stepped := NewNetwork(g, 7)
	stepped.setBatch(16)
	gotOuts := RunStepped(stepped, intFloodStepped(4))
	if stepped.Rounds() != wantRounds {
		t.Fatalf("stepped rounds=%d, blocking rounds=%d", stepped.Rounds(), wantRounds)
	}
	for v := range wantOuts {
		if gotOuts[v] != wantOuts[v] {
			t.Fatalf("node %d: stepped=%v blocking=%v", v, gotOuts[v], wantOuts[v])
		}
	}
}

// TestIntPathDirectionalityAndOverwrite exercises SendInt slot placement
// and the cross-path overwrite contract (one message per edge per round,
// last staging wins regardless of path).
func TestIntPathDirectionalityAndOverwrite(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		switch ctx.ID() {
		case 0:
			// Stage boxed, overwrite with int: receiver must see the int.
			ctx.Send(0, "boxed")
			ctx.SendInt(0, 41)
			ctx.Next()
			v, ok := ctx.RecvInt(0)
			if !ok {
				t.Error("node 0: no int received")
			}
			ctx.SetOutput(v)
		case 1:
			// Stage int, overwrite with boxed: receiver must see the boxed.
			ctx.SendInt(0, 99)
			ctx.Send(0, 42)
			ctx.Next()
			// Mixed read: Recv surfaces the int-path message too.
			m := ctx.Recv(0)
			ctx.SetOutput(m)
		}
	})
	if outs[0] != 42 || outs[1] != 41 {
		t.Fatalf("outs = %v, want [42 41]", outs)
	}
}

// TestIntPathOverflowFallsBack sends a value outside int32: it must arrive
// through the boxed fallback, visible to both Recv and RecvInt.
func TestIntPathOverflowFallsBack(t *testing.T) {
	g := pathGraph(2)
	big := int(1) << 40
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		ctx.BroadcastInt(big)
		ctx.Next()
		v, ok := ctx.RecvInt(0)
		if !ok {
			t.Errorf("node %d: no int received", ctx.ID())
		}
		ctx.SetOutput(v)
	})
	for v, o := range outs {
		if o != big {
			t.Fatalf("node %d got %v, want %d", v, o, big)
		}
	}
}

// TestBroadcastDegreeZero pins the degree-0 contract: Broadcast and
// BroadcastInt are no-ops (no sender registration) and the run completes
// normally for isolated nodes.
func TestBroadcastDegreeZero(t *testing.T) {
	g := graph.New(3)
	g.MustEdge(0, 1) // node 2 stays isolated
	net := NewNetwork(g, 1)
	outs := net.Run(func(ctx *Ctx) {
		ctx.Broadcast("x")
		ctx.BroadcastInt(7)
		if ctx.Degree() == 0 && ctx.sentAny {
			t.Error("degree-0 broadcast must not register the node as a sender")
		}
		ctx.Next()
		got := false
		if ctx.Degree() > 0 {
			got = ctx.Recv(0) != nil
		}
		ctx.SetOutput(got)
	})
	if outs[0] != true || outs[1] != true || outs[2] != false {
		t.Fatalf("outs = %v, want [true true false]", outs)
	}
}

// TestIntPathDeadSendsAndStats checks dead-send tracking, HaltRound
// bookkeeping and the 4-byte message costing on the int path.
func TestIntPathDeadSendsAndStats(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g, 1)
	net.TrackDeadSends(true)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return // halts in sweep 0 => HaltRound 1
		}
		ctx.SendInt(0, 1)
		ctx.Next()
		ctx.SendInt(0, 2)
		ctx.Next()
	})
	dead := net.DeadSends()
	if len(dead) != 2 {
		t.Fatalf("dead sends = %v, want 2 records", dead)
	}
	for i, d := range dead {
		if d.From != 1 || d.To != 0 || d.Round != i+1 || d.HaltRound != 1 {
			t.Fatalf("dead[%d] = %+v", i, d)
		}
	}
	// Round 1 crossed the halt in flight (forgivable); round 2 is late.
	late := net.LateDeadSends()
	if len(late) != 1 || late[0].Round != 2 {
		t.Fatalf("late dead sends = %v, want the round-2 record only", late)
	}
	st := net.MessageStats()
	if st.Messages != 2 || st.TotalBytes != 8 || st.MaxBytes != intMsgBytes {
		t.Fatalf("stats = %+v, want 2 messages x 4 bytes", st)
	}
	if st.Dropped != 2 {
		t.Fatalf("stats.Dropped = %d, want 2", st.Dropped)
	}
}

// TestIntPathZeroAllocsPerRound is the allocation-regression gate for the
// tentpole: staging and delivering int-path messages must not allocate.
// The per-run setup cost is cancelled by differencing a short against a
// long run of the same protocol on the same graph.
func TestIntPathZeroAllocsPerRound(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := cycleGraph(512)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			net := NewNetwork(g, 1)
			RunStepped(net, intFloodStepped(rounds))
		})
	}
	short, long := measure(5), measure(105)
	perRound := (long - short) / 100
	if perRound > 0.05 {
		t.Fatalf("int path allocates %.2f allocs/round (short=%.0f long=%.0f), want 0", perRound, short, long)
	}
}

// TestSteppedNetworkReuseAndReseed reuses one network across stepped runs
// with different seeds: state must fully reset and randomness must follow
// the new seed, matching a freshly built network.
func TestSteppedNetworkReuseAndReseed(t *testing.T) {
	g := cycleGraph(40)
	reused := NewNetwork(g, 1)
	first := RunStepped(reused, intFloodStepped(3))
	reused.Reseed(99)
	second := RunStepped(reused, intFloodStepped(3))

	fresh := NewNetwork(g, 99)
	wantSecond := RunStepped(fresh, intFloodStepped(3))
	for v := range second {
		if second[v] != wantSecond[v] {
			t.Fatalf("reseeded run diverges from fresh network at node %d: %v vs %v", v, second[v], wantSecond[v])
		}
	}
	same := true
	for v := range first {
		if first[v] != second[v] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different outputs")
	}
}
