package local

import (
	"sort"
	"testing"

	"deltacolor/graph"
)

// quotientGroups builds an assortment of groups over a random graph:
// disjoint blobs, a singleton, and two overlapping groups (sharing a
// node), covering every adjacency rule of the quotient construction.
func quotientGroups(g *graph.G) [][]int {
	n := g.N()
	groups := [][]int{
		{0, 1, 2},
		{5},
		{n / 2, n/2 + 1},
		{n/2 + 1, n/2 + 2}, // overlaps the previous group
	}
	for i := 0; i+10 < n; i += 17 {
		groups = append(groups, []int{i + 7, i + 8})
	}
	return groups
}

// TestQuotientNetworkMatchesGraphQuotient checks that the port-table
// construction produces exactly the edge set of graph.Quotient.
func TestQuotientNetworkMatchesGraphQuotient(t *testing.T) {
	g := randomGraph(120, 0.05, 11)
	groups := quotientGroups(g)

	want := graph.Quotient(g, groups)
	got := QuotientNetwork(g, groups, 3).Graph()

	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("quotient shape: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < want.N(); v++ {
		a := append([]int(nil), want.Neighbors(v)...)
		b := append([]int(nil), got.Neighbors(v)...)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("node %d: degree %d vs %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: neighbors %v vs %v", v, b, a)
			}
		}
	}
}

// TestQuotientNetworkRunsProtocols runs a port-order-independent protocol
// on both constructions and requires identical outputs: the quotient
// network is a drop-in replacement for NewNetwork(graph.Quotient(...)).
func TestQuotientNetworkRunsProtocols(t *testing.T) {
	g := randomGraph(90, 0.06, 13)
	groups := quotientGroups(g)

	// Aggregate protocol: sum of neighbor IDs over two rounds (invariant
	// under port reordering).
	proto := func(ctx *Ctx) {
		sum := 0
		for r := 0; r < 2; r++ {
			ctx.BroadcastInt(ctx.ID() + sum)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					sum += m
				}
			}
		}
		ctx.SetOutput(sum)
	}
	want := NewNetwork(graph.Quotient(g, groups), 3).Run(proto)
	got := QuotientNetwork(g, groups, 3).Run(proto)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("quotient node %d: %v vs %v", v, got[v], want[v])
		}
	}
}

// TestQuotientBuilderReusedMatchesFresh checks that a builder reused
// across many builds (the batched-repair shape: different group sets over
// one parent) produces exactly the graph a fresh QuotientNetwork call
// does, including after groups that exercise the shared-member spill map.
func TestQuotientBuilderReusedMatchesFresh(t *testing.T) {
	g := randomGraph(120, 0.05, 11)
	qb := NewQuotientBuilder(g)
	groupSets := [][][]int{
		quotientGroups(g),
		{{3, 4}, {10, 11, 12}, {40}},
		{{0, 1, 2}, {2, 3, 4}, {90, 91}}, // overlap again, fresh epoch
		quotientGroups(g),
	}
	for si, groups := range groupSets {
		want := QuotientNetwork(g, groups, 3).Graph()
		got := qb.Build(groups, 3).Graph()
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("set %d: got n=%d m=%d, want n=%d m=%d", si, got.N(), got.M(), want.N(), want.M())
		}
		for v := 0; v < want.N(); v++ {
			a := append([]int(nil), want.Neighbors(v)...)
			b := append([]int(nil), got.Neighbors(v)...)
			sort.Ints(a)
			sort.Ints(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("set %d node %d: neighbors %v vs %v", si, v, b, a)
				}
			}
		}
	}
}

// BenchmarkQuotientBuild measures the quotient construction over a large
// parent with a small group set — the batched-repair shape. "fresh" pays
// the O(n) owner table per build; "reused" amortizes it through the
// epoch-stamped QuotientBuilder.
func BenchmarkQuotientBuild(b *testing.B) {
	g := randomGraph(100_000, 4.0/100_000, 7)
	var groups [][]int
	for v := 0; v+1 < g.N(); v += 397 {
		groups = append(groups, []int{v, v + 1})
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			QuotientNetwork(g, groups, 1)
		}
	})
	b.Run("reused", func(b *testing.B) {
		qb := NewQuotientBuilder(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qb.Build(groups, 1)
		}
	})
}

// TestQuotientNetworkSharedMemberAdjacent pins the safety property the
// anchor ruling set and the batched repair engine both rely on: two groups
// that share a member are always adjacent in the quotient, so an MIS over
// the quotient network can never select both. (core.discoverAnchors
// additionally keeps anchor groups disjoint by construction; this is the
// backstop for group sets that do overlap, like realized repair balls.)
func TestQuotientNetworkSharedMemberAdjacent(t *testing.T) {
	g := graph.New(6)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(3, 4)
	g.MustEdge(4, 5)
	cases := [][][]int{
		{{0, 1, 2}, {2, 3, 4}},         // share node 2
		{{0, 1}, {1, 2}, {2, 3}},       // chain of overlaps
		{{0, 1, 2, 3}, {3}, {3, 4, 5}}, // singleton inside both
	}
	for ci, groups := range cases {
		net := QuotientNetwork(g, groups, 1)
		qg := net.Graph()
		for a := 0; a < len(groups); a++ {
			inA := map[int]bool{}
			for _, v := range groups[a] {
				inA[v] = true
			}
			for b := a + 1; b < len(groups); b++ {
				shared := false
				for _, v := range groups[b] {
					if inA[v] {
						shared = true
						break
					}
				}
				if shared && !qg.HasEdge(a, b) {
					t.Fatalf("case %d: groups %d and %d share a member but are not adjacent", ci, a, b)
				}
			}
		}
	}
}
