package local

import (
	"sort"
	"testing"

	"deltacolor/graph"
)

// TestGatherBallMatchesBFS is the ground-truth property test for the
// flooding primitive: on random graphs, the ball gathered in t rounds
// must contain exactly the nodes at BFS distance <= t, with complete
// adjacency for every node at distance <= t-1 (their adjacency had t-1
// rounds to travel) and only the bare self-report (nil adjacency) for
// nodes at distance exactly t. Both implementations are pinned against
// the same ground truth: the blocking coroutine GatherBall (the
// compatibility shim's reference) and the native stepped gather.
func TestGatherBallMatchesBFS(t *testing.T) {
	impls := []struct {
		name    string
		collect func(net *Network, radius int) []*BallInfo
	}{
		{"blocking", gatherBallsBlocking},
		{"stepped", func(net *Network, radius int) []*BallInfo {
			flat := GatherStepped(net, radius)
			balls := make([]*BallInfo, len(flat))
			for v, b := range flat {
				balls[v] = b.Info()
			}
			return balls
		}},
	}
	cases := []struct {
		n    int
		p    float64
		seed int64
	}{
		{40, 0.05, 1},
		{60, 0.08, 2},
		{50, 0.15, 3},
		{30, 0.5, 4},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			for _, tc := range cases {
				g := randomGraph(tc.n, tc.p, tc.seed)
				for _, radius := range []int{1, 2, 3} {
					net := NewNetwork(g, tc.seed)
					net.setShards(4)
					balls := impl.collect(net, radius)
					if net.Rounds() != radius {
						t.Fatalf("n=%d p=%v t=%d: rounds=%d", tc.n, tc.p, radius, net.Rounds())
					}
					for v := 0; v < g.N(); v++ {
						assertBallMatchesBFS(t, g, v, radius, balls[v])
					}
				}
			}
		})
	}
}

func assertBallMatchesBFS(t *testing.T, g *graph.G, v, radius int, ball *BallInfo) {
	t.Helper()
	bfs := g.BFSLimited(v, radius)
	want := map[int]bool{}
	for _, u := range bfs.Order {
		want[u] = true
	}
	if ball.Center != v || ball.Radius != radius {
		t.Fatalf("ball center/radius = %d/%d, want %d/%d", ball.Center, ball.Radius, v, radius)
	}
	if len(ball.Adj) != len(want) {
		t.Fatalf("t=%d center=%d: knows %d nodes, BFS ball has %d", radius, v, len(ball.Adj), len(want))
	}
	for u, adj := range ball.Adj {
		if !want[u] {
			t.Fatalf("center %d learned %d outside its %d-ball", v, u, radius)
		}
		switch {
		case bfs.Dist[u] < radius:
			got := append([]int(nil), adj...)
			exp := append([]int(nil), g.Neighbors(u)...)
			sort.Ints(got)
			sort.Ints(exp)
			if len(got) != len(exp) {
				t.Fatalf("center %d: adjacency of %d (dist %d) has %d entries, want %d",
					v, u, bfs.Dist[u], len(got), len(exp))
			}
			for i := range got {
				if got[i] != exp[i] {
					t.Fatalf("center %d: adjacency of %d = %v, want %v", v, u, got, exp)
				}
			}
		default: // dist == radius: only the self-report made it
			if adj != nil {
				t.Fatalf("center %d: node %d at distance %d should have nil adjacency, got %v",
					v, u, radius, adj)
			}
		}
	}
}
