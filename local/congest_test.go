package local

import (
	"reflect"
	"testing"

	"deltacolor/graph"
)

func path4() *graph.G {
	g := graph.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	return g
}

func TestMessageStatsCountsAndSizes(t *testing.T) {
	g := path4()
	net := NewNetwork(g, 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		// One round: everyone broadcasts a single int (8 bytes).
		ctx.Broadcast(42)
		ctx.Next()
	})
	st := net.MessageStats()
	if st == nil {
		t.Fatal("stats not recorded")
	}
	// Path 0-1-2-3 has 6 directed (port) messages.
	if st.Messages != 6 {
		t.Fatalf("messages = %d, want 6", st.Messages)
	}
	if st.MaxBytes != 8 || st.TotalBytes != 48 {
		t.Fatalf("bytes = max %d total %d, want 8, 48", st.MaxBytes, st.TotalBytes)
	}
	if st.RoundsActive != 1 {
		t.Fatalf("roundsActive = %d, want 1", st.RoundsActive)
	}
}

func TestMessageStatsGrowingMessages(t *testing.T) {
	g := path4()
	net := NewNetwork(g, 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		// Round 1: small message; round 2: big slice.
		ctx.Broadcast(1)
		ctx.Next()
		big := make([]int, 100)
		ctx.Broadcast(big)
		ctx.Next()
	})
	st := net.MessageStats()
	if st.MaxBytes < 800 {
		t.Fatalf("max bytes = %d, want >= 800 (100 ints)", st.MaxBytes)
	}
	if st.MaxRound != 2 {
		t.Fatalf("max round = %d, want 2", st.MaxRound)
	}
	if st.RoundsActive != 2 {
		t.Fatalf("roundsActive = %d, want 2", st.RoundsActive)
	}
}

func TestMessageStatsOffByDefault(t *testing.T) {
	net := NewNetwork(path4(), 1)
	net.Run(func(ctx *Ctx) {
		ctx.Broadcast(1)
		ctx.Next()
	})
	if net.MessageStats() != nil {
		t.Fatal("stats should be nil when not enabled")
	}
}

// chainNode builds pointer chains for the depth-cap tests.
type chainNode struct {
	Next *chainNode
}

func makeChain(depth int) *chainNode {
	head := &chainNode{}
	cur := head
	for i := 0; i < depth; i++ {
		cur.Next = &chainNode{}
		cur = cur.Next
	}
	return head
}

// deepSlice nests a slice k levels deep: [[[...[1]...]]].
func deepSlice(k int) any {
	var v any = []int{1}
	for i := 0; i < k; i++ {
		v = []any{v}
	}
	return v
}

// TestEstimateSizeTable pins the wire-size model on nested
// map/slice/pointer payloads, including subtrees deeper than the
// reflection cap: a capped subtree is charged the conservative floor and
// flagged, never silently dropped.
func TestEstimateSizeTable(t *testing.T) {
	type pair struct {
		A int32
		B string
	}
	cases := []struct {
		name      string
		v         any
		want      int // -1: only the conservative floor is checked
		truncated bool
	}{
		{"int", 7, 8, false},
		{"bool", true, 1, false},
		{"string", "hello", 5, false},
		{"slice-of-int", []int{1, 2, 3}, 4 + 3*8, false},
		{"nested-slice", [][]int32{{1, 2}, {3}}, 4 + (4 + 2*4) + (4 + 4), false},
		{"map", map[int8]int8{1: 2}, 4 + 1 + 1, false},
		{"nested-map", map[int8][]int8{1: {2, 3}}, 4 + 1 + (4 + 2), false},
		{"struct", pair{A: 1, B: "xy"}, 4 + 2, false},
		{"pointer", &pair{A: 1, B: "xy"}, 1 + 4 + 2, false},
		{"nil-pointer", (*pair)(nil), 1, false},
		// Each chain level costs 1 (ptr) and the final nil Next costs 1;
		// a 5-link chain stays well under the cap.
		{"chain-under-cap", makeChain(5), 5*1 + 1*1 + 1, false},
		{"chain-past-cap", makeChain(40), -1, true},
		{"slices-past-cap", deepSlice(2 * maxEstimateDepth), -1, true},
		{"map-past-cap", map[string]any{"k": deepSlice(2 * maxEstimateDepth)}, -1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var truncated bool
			got := estimateSize(reflect.ValueOf(tc.v), 0, &truncated)
			if truncated != tc.truncated {
				t.Fatalf("truncated = %v, want %v", truncated, tc.truncated)
			}
			if tc.want >= 0 && got != tc.want {
				t.Fatalf("size = %d, want %d", got, tc.want)
			}
			if tc.want < 0 && got < truncatedSubtreeBytes {
				t.Fatalf("truncated estimate %d below the conservative floor %d", got, truncatedSubtreeBytes)
			}
		})
	}
}

// TestEstimateSizeCycleTerminates: the depth cap is the defense against
// cyclic payloads; a self-referential value must terminate, be flagged
// truncated, and carry a nonzero conservative size.
func TestEstimateSizeCycleTerminates(t *testing.T) {
	a, b := &chainNode{}, &chainNode{}
	a.Next, b.Next = b, a
	var truncated bool
	got := estimateSize(reflect.ValueOf(a), 0, &truncated)
	if !truncated {
		t.Fatal("cyclic payload not flagged truncated")
	}
	if got < truncatedSubtreeBytes {
		t.Fatalf("cyclic estimate %d below floor %d", got, truncatedSubtreeBytes)
	}
}

// TestMessageStatsTruncatedSurface: a run that ships a too-deep payload
// must surface the undercount in MessageStats.Truncated; shallow
// payloads must leave it zero.
func TestMessageStatsTruncatedSurface(t *testing.T) {
	net := NewNetwork(path4(), 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		switch ctx.ID() {
		case 0:
			ctx.Send(0, makeChain(40))
		case 3:
			ctx.Send(0, "shallow")
		}
		ctx.Next()
	})
	st := net.MessageStats()
	if st.Messages != 2 {
		t.Fatalf("messages = %d, want 2", st.Messages)
	}
	if st.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1 (only the deep chain)", st.Truncated)
	}
}

func TestEstimateSizeKinds(t *testing.T) {
	type payload struct {
		A int
		B string
		C []byte
		D map[int]int
		E *int
	}
	x := 7
	p := payload{A: 1, B: "abc", C: []byte{1, 2}, D: map[int]int{1: 2}, E: &x}
	net := NewNetwork(path4(), 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(0, p)
		}
		ctx.Next()
	})
	st := net.MessageStats()
	if st.Messages != 1 {
		t.Fatalf("messages = %d, want 1", st.Messages)
	}
	// 8 (A) + 3 (B) + 4+2 (C) + 4+16 (D) + 1+8 (E) = 46.
	if st.TotalBytes != 46 {
		t.Fatalf("estimated bytes = %d, want 46", st.TotalBytes)
	}
}
