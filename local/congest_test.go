package local

import (
	"testing"

	"deltacolor/graph"
)

func path4() *graph.G {
	g := graph.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	return g
}

func TestMessageStatsCountsAndSizes(t *testing.T) {
	g := path4()
	net := NewNetwork(g, 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		// One round: everyone broadcasts a single int (8 bytes).
		ctx.Broadcast(42)
		ctx.Next()
	})
	st := net.MessageStats()
	if st == nil {
		t.Fatal("stats not recorded")
	}
	// Path 0-1-2-3 has 6 directed (port) messages.
	if st.Messages != 6 {
		t.Fatalf("messages = %d, want 6", st.Messages)
	}
	if st.MaxBytes != 8 || st.TotalBytes != 48 {
		t.Fatalf("bytes = max %d total %d, want 8, 48", st.MaxBytes, st.TotalBytes)
	}
	if st.RoundsActive != 1 {
		t.Fatalf("roundsActive = %d, want 1", st.RoundsActive)
	}
}

func TestMessageStatsGrowingMessages(t *testing.T) {
	g := path4()
	net := NewNetwork(g, 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		// Round 1: small message; round 2: big slice.
		ctx.Broadcast(1)
		ctx.Next()
		big := make([]int, 100)
		ctx.Broadcast(big)
		ctx.Next()
	})
	st := net.MessageStats()
	if st.MaxBytes < 800 {
		t.Fatalf("max bytes = %d, want >= 800 (100 ints)", st.MaxBytes)
	}
	if st.MaxRound != 2 {
		t.Fatalf("max round = %d, want 2", st.MaxRound)
	}
	if st.RoundsActive != 2 {
		t.Fatalf("roundsActive = %d, want 2", st.RoundsActive)
	}
}

func TestMessageStatsOffByDefault(t *testing.T) {
	net := NewNetwork(path4(), 1)
	net.Run(func(ctx *Ctx) {
		ctx.Broadcast(1)
		ctx.Next()
	})
	if net.MessageStats() != nil {
		t.Fatal("stats should be nil when not enabled")
	}
}

func TestEstimateSizeKinds(t *testing.T) {
	type payload struct {
		A int
		B string
		C []byte
		D map[int]int
		E *int
	}
	x := 7
	p := payload{A: 1, B: "abc", C: []byte{1, 2}, D: map[int]int{1: 2}, E: &x}
	net := NewNetwork(path4(), 1)
	net.EnableMessageStats()
	net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(0, p)
		}
		ctx.Next()
	})
	st := net.MessageStats()
	if st.Messages != 1 {
		t.Fatalf("messages = %d, want 1", st.Messages)
	}
	// 8 (A) + 3 (B) + 4+2 (C) + 4+16 (D) + 1+8 (E) = 46.
	if st.TotalBytes != 46 {
		t.Fatalf("estimated bytes = %d, want 46", st.TotalBytes)
	}
}
