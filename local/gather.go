package local

import (
	"maps"
	"slices"
)

// BallInfo is the knowledge a node accumulates by flooding for t rounds:
// the IDs and full adjacency lists of every node within distance t of the
// center. Because messages are unbounded in the LOCAL model, this is the
// canonical way a t-round algorithm "sees" its t-neighborhood.
type BallInfo struct {
	Center int
	Radius int
	Adj    map[int][]int // known adjacency, complete for nodes at distance <= Radius
}

// ballMsg carries newly learned (node, adjacency) pairs.
type ballMsg struct {
	adj map[int][]int
}

// GatherBall floods for t rounds and returns the radius-t ball around the
// calling node. It consumes exactly t rounds of the network.
func GatherBall(ctx *Ctx, t int) *BallInfo {
	known := map[int][]int{}
	// A node does not know its neighbors' IDs a priori, only ports; the
	// first exchange reveals them, after which adjacency lists of nodes at
	// distance <= t-1 are complete and those at distance t are known from
	// their own self-reports that traveled t hops.
	fresh := map[int][]int{ctx.ID(): nil} // filled after round 1 below
	// We learn our own adjacency by receiving neighbor IDs in round 1, so
	// track it separately.
	myAdj := make([]int, 0, ctx.Degree())

	for round := 0; round < t; round++ {
		// Send everything learned last round (plus self-intro in round 0).
		msg := ballMsg{adj: map[int][]int{}}
		if round == 0 {
			msg.adj[ctx.ID()] = nil // "I exist"; adjacency filled next round
		} else {
			for id, a := range fresh {
				msg.adj[id] = a
			}
		}
		ctx.Broadcast(msg)
		ctx.Next()
		fresh = map[int][]int{}
		for p := 0; p < ctx.Degree(); p++ {
			m, ok := ctx.Recv(p).(ballMsg)
			if !ok {
				continue
			}
			// Sorted keys: the append below must not inherit map
			// iteration order (protodeterminism).
			for _, id := range slices.Sorted(maps.Keys(m.adj)) {
				a := m.adj[id]
				if round == 0 {
					// Port p's self-intro: learn neighbor ID.
					myAdj = append(myAdj, id)
				}
				if _, seen := known[id]; !seen || known[id] == nil && a != nil {
					known[id] = a
					fresh[id] = a
				}
			}
		}
		if round == 0 {
			// Now we can report our own adjacency.
			known[ctx.ID()] = myAdj
			fresh[ctx.ID()] = myAdj
		}
	}
	known[ctx.ID()] = myAdj
	return &BallInfo{Center: ctx.ID(), Radius: t, Adj: known}
}
