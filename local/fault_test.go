package local

import (
	"fmt"
	"hash/fnv"
	"testing"

	"deltacolor/graph"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		ok   bool
	}{
		{"zero plan", FaultPlan{}, true},
		{"round budget only", FaultPlan{RoundLimit: 10}, true},
		{"drop with limit", FaultPlan{DropProb: 0.1, RoundLimit: 100}, true},
		{"drop without limit", FaultPlan{DropProb: 0.1}, false},
		{"crash without limit", FaultPlan{Crashes: []CrashWindow{{Node: 1, From: 2, To: 3}}}, false},
		{"prob out of range", FaultPlan{DropProb: 1.5, RoundLimit: 10}, false},
		{"negative prob", FaultPlan{DupProb: -0.1, RoundLimit: 10}, false},
		{"delay without max", FaultPlan{DelayProb: 0.1, RoundLimit: 10}, false},
		{"delay ok", FaultPlan{DelayProb: 0.1, MaxDelay: 3, RoundLimit: 10}, true},
		{"crash from round 0", FaultPlan{Crashes: []CrashWindow{{Node: 0, From: 0}}, RoundLimit: 10}, false},
		{"crash empty window", FaultPlan{Crashes: []CrashWindow{{Node: 0, From: 3, To: 3}}, RoundLimit: 10}, false},
		{"crash forever", FaultPlan{Crashes: []CrashWindow{{Node: 0, From: 3}}, RoundLimit: 10}, true},
		{"bad message window", FaultPlan{DropProb: 0.1, FromRound: 5, ToRound: 2, RoundLimit: 10}, false},
		{"negative limit", FaultPlan{RoundLimit: -1}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestSetFaultPlanRejectsInvalid(t *testing.T) {
	net := NewNetwork(pathGraph(3), 1)
	if err := net.SetFaultPlan(&FaultPlan{DropProb: 0.5}); err == nil {
		t.Fatal("attach of invalid plan succeeded")
	}
	if net.FaultPlan() != nil {
		t.Fatal("invalid plan left attached")
	}
	if err := SetDefaultFaultPlan(&FaultPlan{DropProb: 2}); err == nil {
		t.Fatal("invalid default plan accepted")
	}
}

func TestDefaultFaultPlanPickup(t *testing.T) {
	plan := &FaultPlan{DropProb: 0.25, RoundLimit: 64}
	if err := SetDefaultFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = SetDefaultFaultPlan(nil) }()
	net := NewNetwork(pathGraph(4), 1)
	if net.FaultPlan() != plan {
		t.Fatal("NewNetwork did not pick up the default fault plan")
	}
	_ = SetDefaultFaultPlan(nil)
	net2 := NewNetwork(pathGraph(4), 1)
	if net2.FaultPlan() != nil {
		t.Fatal("plan still attached after default cleared")
	}
}

// broadcastRounds is the shared fixed-round probe: every node broadcasts
// its ID for rounds rounds and outputs how many int messages it received.
func broadcastRounds(rounds int) NodeFunc {
	return func(ctx *Ctx) {
		got := 0
		for r := 0; r < rounds; r++ {
			ctx.BroadcastInt(ctx.ID())
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if _, ok := ctx.RecvInt(p); ok {
					got++
				}
			}
		}
		ctx.SetOutput(got)
	}
}

func TestDropAllMessages(t *testing.T) {
	g := pathGraph(4) // directed degree sum 6
	net := NewNetwork(g, 1)
	net.EnableMessageStats()
	tr := NewTracer(TraceCounters, 0)
	net.SetTracer(tr)
	if err := net.SetFaultPlan(&FaultPlan{Seed: 9, DropProb: 1, RoundLimit: 50}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(broadcastRounds(3))
	for v, o := range outs {
		if o.(int) != 0 {
			t.Fatalf("node %d received %v messages despite DropProb=1", v, o)
		}
	}
	// Three delivery rounds of 6 staged messages each, all dropped.
	fs := net.FaultStats()
	if fs.Drops != 18 {
		t.Fatalf("Drops = %d, want 18", fs.Drops)
	}
	if got := net.MessageStats().DroppedByFault; got != 18 {
		t.Fatalf("MessageStats.DroppedByFault = %d, want 18", got)
	}
	if got := tr.Counters().FaultDrops; got != 18 {
		t.Fatalf("tracer FaultDrops = %d, want 18", got)
	}
	if fs.RoundLimited != 0 {
		t.Fatalf("run flagged RoundLimited, rounds=%d", net.Rounds())
	}
}

func TestNoFaultsLeaveStatsZero(t *testing.T) {
	net := NewNetwork(pathGraph(4), 1)
	net.EnableMessageStats()
	net.Run(broadcastRounds(2))
	if fs := net.FaultStats(); fs != (FaultStats{}) {
		t.Fatalf("fault stats nonzero without a plan: %+v", fs)
	}
	if got := net.MessageStats().DroppedByFault; got != 0 {
		t.Fatalf("DroppedByFault = %d without a plan", got)
	}
}

// faultHashProbe runs a fixed number of rounds and outputs a hash of
// everything the node observed (per-port values per round), so any
// schedule difference changes the output.
func faultHashProbe(rounds int) NodeFunc {
	return func(ctx *Ctx) {
		h := fnv.New64a()
		buf := make([]byte, 8)
		put := func(v int) {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf)
		}
		for r := 0; r < rounds; r++ {
			ctx.BroadcastInt(ctx.ID()*1000 + r)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if v, ok := ctx.RecvInt(p); ok {
					put(p)
					put(v)
				}
			}
		}
		ctx.SetOutput(h.Sum64())
	}
}

func TestFaultScheduleDeterministicAcrossWorkers(t *testing.T) {
	plan := &FaultPlan{
		Seed: 7, DropProb: 0.3, DupProb: 0.2, DelayProb: 0.2, MaxDelay: 3,
		Crashes:    []CrashWindow{{Node: 5, From: 2, To: 4}, {Node: 17, From: 3}},
		RoundLimit: 60,
	}
	run := func(workers, batchSize int) ([]any, FaultStats, int) {
		net := NewNetwork(cycleGraph(101), 3)
		net.SetWorkers(workers)
		net.setBatch(batchSize)
		if err := net.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		outs := net.Run(faultHashProbe(6))
		return outs, net.FaultStats(), net.Rounds()
	}
	base, baseStats, baseRounds := run(1, 0)
	if baseStats.Total() == 0 {
		t.Fatal("probe run injected no faults; test is vacuous")
	}
	for _, cfg := range [][2]int{{4, 0}, {4, 7}, {2, 13}} {
		outs, fs, rounds := run(cfg[0], cfg[1])
		if fs != baseStats {
			t.Fatalf("workers=%d batch=%d: fault stats %+v != %+v", cfg[0], cfg[1], fs, baseStats)
		}
		if rounds != baseRounds {
			t.Fatalf("workers=%d batch=%d: rounds %d != %d", cfg[0], cfg[1], rounds, baseRounds)
		}
		for v := range base {
			if outs[v] != base[v] {
				t.Fatalf("workers=%d batch=%d: node %d output %v != %v", cfg[0], cfg[1], v, outs[v], base[v])
			}
		}
	}
}

func TestFaultScheduleVariesAcrossRuns(t *testing.T) {
	// Consecutive runs on one network must see different fault schedules
	// (the run sequence number is part of the hash domain) — otherwise a
	// retry loop would deterministically hit the identical failure.
	net := NewNetwork(cycleGraph(101), 3)
	if err := net.SetFaultPlan(&FaultPlan{Seed: 7, DropProb: 0.3, RoundLimit: 60}); err != nil {
		t.Fatal(err)
	}
	a := net.Run(faultHashProbe(6))
	b := net.Run(faultHashProbe(6))
	same := true
	for v := range a {
		if a[v] != b[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two consecutive runs observed the identical fault schedule")
	}
}

func TestCrashWindowFreezeAndRestart(t *testing.T) {
	net := NewNetwork(pathGraph(3), 1)
	if err := net.SetFaultPlan(&FaultPlan{
		Crashes:    []CrashWindow{{Node: 1, From: 2, To: 4}},
		RoundLimit: 50,
	}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(broadcastRounds(5))
	// Node 1 freezes during rounds 2 and 3: it misses those two steps (so
	// its five loop iterations stretch to round 7) and the messages sent
	// to it in rounds 2 and 3 are dropped. It hears both neighbors in
	// rounds 1, 4 and 5; the neighbors hear node 1's broadcasts of rounds
	// 1, 2 and 5 plus each hears nothing from the far end (degree 1).
	if got := outs[1].(int); got != 6 {
		t.Errorf("frozen node received %d, want 6", got)
	}
	if outs[0].(int) != 3 || outs[2].(int) != 3 {
		t.Errorf("neighbors received %v / %v, want 3 / 3", outs[0], outs[2])
	}
	fs := net.FaultStats()
	if fs.OfflineSteps != 2 {
		t.Errorf("OfflineSteps = %d, want 2", fs.OfflineSteps)
	}
	if fs.CrashDrops != 4 {
		t.Errorf("CrashDrops = %d, want 4", fs.CrashDrops)
	}
	if net.Rounds() != 7 {
		t.Errorf("rounds = %d, want 7", net.Rounds())
	}
}

func TestDelayedMessageArrivesLater(t *testing.T) {
	g := graph.New(2)
	g.MustEdge(0, 1)
	net := NewNetwork(g, 1)
	if err := net.SetFaultPlan(&FaultPlan{Seed: 3, DelayProb: 1, MaxDelay: 1, RoundLimit: 20}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.SendInt(0, 7)
		}
		got := 0
		for r := 1; r <= 4; r++ {
			ctx.Next()
			if v, ok := ctx.RecvInt(0); ok && got == 0 {
				if v != 7 {
					ctx.SetOutput(-v)
					return
				}
				got = r
			}
		}
		ctx.SetOutput(got)
	})
	// MaxDelay=1 makes every delay exactly one round: the round-1 message
	// arrives in round 2.
	if got := outs[1].(int); got != 2 {
		t.Fatalf("message arrived in round %v, want 2", outs[1])
	}
	if fs := net.FaultStats(); fs.Delays != 1 || fs.Drops != 0 {
		t.Fatalf("stats %+v, want exactly one delay", fs)
	}
}

func TestDuplicatedMessageArrivesTwice(t *testing.T) {
	g := graph.New(2)
	g.MustEdge(0, 1)
	net := NewNetwork(g, 1)
	if err := net.SetFaultPlan(&FaultPlan{Seed: 3, DupProb: 1, RoundLimit: 20}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.SendInt(0, 7)
		}
		seen := 0
		for r := 1; r <= 4; r++ {
			ctx.Next()
			if _, ok := ctx.RecvInt(0); ok {
				seen++
			}
		}
		ctx.SetOutput(seen)
	})
	// One staged message, duplicated: delivered in round 1 and re-injected
	// in round 2. The duplicate is not re-faulted, so exactly twice.
	if got := outs[1].(int); got != 2 {
		t.Fatalf("message seen %v times, want 2", outs[1])
	}
	if fs := net.FaultStats(); fs.Dups != 1 {
		t.Fatalf("stats %+v, want exactly one dup", fs)
	}
}

func TestRoundLimitForceHalts(t *testing.T) {
	net := NewNetwork(cycleGraph(8), 1)
	if err := net.SetFaultPlan(&FaultPlan{RoundLimit: 5}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(func(ctx *Ctx) {
		for {
			ctx.BroadcastInt(1)
			ctx.Next()
		}
	})
	if net.Rounds() != 5 {
		t.Fatalf("rounds = %d, want the limit 5", net.Rounds())
	}
	if fs := net.FaultStats(); fs.RoundLimited != 1 {
		t.Fatalf("RoundLimited = %d, want 1", fs.RoundLimited)
	}
	if outs[0] != nil {
		t.Fatalf("force-halted node has output %v", outs[0])
	}
}

func TestNodePanicContained(t *testing.T) {
	net := NewNetwork(pathGraph(3), 1)
	if err := net.SetFaultPlan(&FaultPlan{RoundLimit: 10}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(func(ctx *Ctx) {
		ctx.BroadcastInt(1)
		ctx.Next()
		if ctx.ID() == 1 {
			panic("fault-mangled state")
		}
		ctx.BroadcastInt(2)
		ctx.Next()
		ctx.SetOutput("done")
	})
	if outs[0] != "done" || outs[2] != "done" {
		t.Fatalf("healthy nodes did not finish: %v", outs)
	}
	if outs[1] != nil {
		t.Fatalf("panicked node has output %v", outs[1])
	}
	if fs := net.FaultStats(); fs.NodePanics != 1 {
		t.Fatalf("NodePanics = %d, want 1", fs.NodePanics)
	}
}

func TestPanicWithoutPlanStillPropagates(t *testing.T) {
	net := NewNetwork(pathGraph(2), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate on a healthy network")
		}
	}()
	net.SetWorkers(1)
	net.Run(func(ctx *Ctx) {
		panic("protocol bug")
	})
}

func TestMessageFaultWindow(t *testing.T) {
	// Drops confined to rounds [2,2]: round 1 and 3+ deliver normally.
	net := NewNetwork(pathGraph(4), 1)
	if err := net.SetFaultPlan(&FaultPlan{Seed: 1, DropProb: 1, FromRound: 2, ToRound: 2, RoundLimit: 50}); err != nil {
		t.Fatal(err)
	}
	outs := net.Run(broadcastRounds(3))
	// Each node misses exactly its round-2 inbound messages (degree each).
	want := map[int]int{0: 2, 1: 4, 2: 4, 3: 2}
	for v, o := range outs {
		if o.(int) != want[v] {
			t.Fatalf("node %d received %v, want %d (outs=%v)", v, o, want[v], fmt.Sprint(outs...))
		}
	}
	if fs := net.FaultStats(); fs.Drops != 6 {
		t.Fatalf("Drops = %d, want 6 (one round of 6 staged messages)", fs.Drops)
	}
}

// TestStrictDeadSendsSuppressedUnderFaults pins the accounting satellite:
// the strict late-dead-send panic is a protocol-bug detector, and an
// attached FaultPlan voids it — injected drops and crashes legitimately
// make halt knowledge stale, so the same protocol that fails strict mode
// on a healthy network must complete when a plan is attached.
func TestStrictDeadSendsSuppressedUnderFaults(t *testing.T) {
	prev := StrictDeadSends()
	SetStrictDeadSends(true)
	defer SetStrictDeadSends(prev)

	// Node 0 halts in sweep 0; node 1 keeps talking to it for two rounds.
	// The round-2 send is a late dead send: strict mode panics on it.
	chatty := func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return
		}
		ctx.SendInt(0, 1)
		ctx.Next()
		ctx.SendInt(0, 2)
		ctx.Next()
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("strict mode did not panic on a late dead send without a plan")
			}
		}()
		NewNetwork(pathGraph(2), 1).Run(chatty)
	}()

	// Same protocol, plan attached (its fault window never fires): the
	// strict check must stand down, and the run completes normally.
	net := NewNetwork(pathGraph(2), 1)
	if err := net.SetFaultPlan(&FaultPlan{Seed: 1, DropProb: 1, FromRound: 1000, ToRound: 1000, RoundLimit: 2000}); err != nil {
		t.Fatal(err)
	}
	net.Run(chatty)
	if late := net.LateDeadSends(); len(late) != 1 {
		t.Fatalf("late dead sends still tracked for post-mortems, got %v", late)
	}
	if fs := net.FaultStats(); fs.Total() != 0 {
		t.Fatalf("inert window injected faults: %+v", fs)
	}
}
