package local

import "reflect"

// CONGEST instrumentation. The LOCAL model allows unbounded messages; the
// CONGEST model caps them at O(log n) bits per edge per round. Measuring
// how large a LOCAL algorithm's messages actually get says how far it is
// from CONGEST-portable — the flooding-based phases of the Δ-coloring
// algorithms blow up (they ship whole balls), while the color-trial
// phases fit comfortably.
//
// Enable with Network.EnableMessageStats before Run; read the result via
// Network.MessageStats afterwards.

// MessageStats aggregates per-run message-size measurements.
type MessageStats struct {
	Messages     int // messages staged over the whole run (includes Dropped)
	TotalBytes   int // estimated payload bytes across all staged messages
	MaxBytes     int // largest single message, estimated bytes
	MaxRound     int // round in which the largest message was sent
	RoundsActive int // rounds in which at least one message was sent
	Dropped      int // messages staged for already-halted receivers (never delivered)
	Truncated    int // messages whose size estimate hit the reflection depth cap (undercounted; see maxEstimateDepth)

	// DroppedByFault counts messages an attached FaultPlan destroyed
	// (drops, crash-window drops, lost delayed messages). Kept separate
	// from Dropped so the strict dead-send accounting — a protocol-bug
	// detector — does not misfire on injected faults. Always 0 without a
	// plan.
	DroppedByFault int
}

// EnableMessageStats turns on message-size accounting for subsequent
// runs. It costs a reflection walk per delivered message, so it is off by
// default.
func (net *Network) EnableMessageStats() {
	net.stats = &MessageStats{}
}

// MessageStats returns the measurements of the last instrumented run, or
// nil when EnableMessageStats was not called.
func (net *Network) MessageStats() *MessageStats { return net.stats }

// intMsgBytes is the wire size charged per int-path message: one int32
// payload, the honest CONGEST cost of the small-integer protocols.
const intMsgBytes = 4

// recordMessages is called by the coordinator before delivery, with the
// staged messages of the closing round. It walks only the active sender
// lists (batch by batch, in deterministic order), so rounds where few
// nodes speak cost little to measure. Boxed messages are costed by a
// reflection walk; int-path messages are a flat int32 each.
func (net *Network) recordMessages() {
	any := false
	for i := range net.batches {
		for _, id := range net.batches[i].senders {
			c := &net.ctxs[id]
			ports := net.ports[id]
			if c.nBoxed > 0 {
				for p, msg := range c.out {
					if msg == nil {
						continue
					}
					any = true
					var truncated bool
					sz := estimateSize(reflect.ValueOf(msg), 0, &truncated)
					net.record(sz, ports[p], truncated)
				}
			}
			if c.nInts > 0 {
				for p, h := range c.outHas {
					if h == 0 {
						continue
					}
					any = true
					net.record(intMsgBytes, ports[p], false)
				}
			}
		}
	}
	if any {
		net.stats.RoundsActive++
	}
}

// record accounts one staged message of sz bytes headed for node to
// (an internal index; it never leaves this accounting). truncated marks
// a size estimate that hit the reflection depth cap.
func (net *Network) record(sz, to int, truncated bool) {
	net.stats.Messages++
	net.stats.TotalBytes += sz
	if truncated {
		net.stats.Truncated++
	}
	if sz > net.stats.MaxBytes {
		net.stats.MaxBytes = sz
		// The round counter has not been incremented for the closing
		// round yet, so it is rounds+1 in 1-based reporting.
		net.stats.MaxRound = net.rounds + 1
	}
	if net.haltSeg[to] != 0 {
		net.stats.Dropped++
	}
}

// maxEstimateDepth caps the reflection walk of estimateSize, defending
// against cyclic structures (a linked ring would otherwise never
// terminate). A subtree at the cap cannot be measured, so it is charged
// truncatedSubtreeBytes — a conservative floor, every real value costs
// at least that once unwrapped — and the message is counted in
// MessageStats.Truncated so undercounted totals are visible instead of
// silent.
const maxEstimateDepth = 12

// truncatedSubtreeBytes is the flat conservative charge for a subtree
// below maxEstimateDepth: the size of one word-sized scalar, the
// smallest payload a non-empty subtree can serialize to.
const truncatedSubtreeBytes = 8

// estimateSize walks a value and estimates its wire size in bytes: the
// payload a real implementation would serialize. Pointers and interfaces
// unwrap; maps and slices sum elements plus per-entry overhead. Depth is
// capped at maxEstimateDepth; truncated is set when the cap was hit, and
// the capped subtree is charged truncatedSubtreeBytes instead of being
// dropped.
func estimateSize(v reflect.Value, depth int, truncated *bool) int {
	if !v.IsValid() {
		return 0
	}
	if depth > maxEstimateDepth {
		*truncated = true
		return truncatedSubtreeBytes
	}
	switch v.Kind() {
	case reflect.Bool:
		return 1
	case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Float64:
		return 8
	case reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.String:
		return len(v.String())
	case reflect.Slice, reflect.Array:
		sz := 4 // length prefix
		for i := 0; i < v.Len(); i++ {
			sz += estimateSize(v.Index(i), depth+1, truncated)
		}
		return sz
	case reflect.Map:
		sz := 4
		iter := v.MapRange()
		for iter.Next() {
			sz += estimateSize(iter.Key(), depth+1, truncated)
			sz += estimateSize(iter.Value(), depth+1, truncated)
		}
		return sz
	case reflect.Struct:
		sz := 0
		for i := 0; i < v.NumField(); i++ {
			sz += estimateSize(v.Field(i), depth+1, truncated)
		}
		return sz
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			return 1
		}
		return 1 + estimateSize(v.Elem(), depth+1, truncated)
	default:
		return 8
	}
}
