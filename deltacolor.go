// Package deltacolor is the public API of this repository: distributed
// Δ-coloring in the LOCAL model, reproducing "Improved Distributed
// Δ-Coloring" (Ghaffari, Hirvonen, Kuhn, Maus; PODC 2018).
//
// A Δ-coloring is a proper vertex coloring using only Δ = maxdeg(G) colors.
// By Brooks' theorem every connected graph that is neither a clique nor an
// odd cycle admits one; this package computes it with simulated LOCAL-model
// algorithms and reports the number of communication rounds consumed, the
// quantity the paper's theorems bound:
//
//   - Algorithm AlgRandomized (Theorems 1 and 3): DCC removal, random
//     T-node shattering, layered list colorings. O((log log n)²) rounds for
//     constant Δ; O(log Δ) + shattering for Δ >= 4.
//   - Algorithm AlgDeterministic (Theorem 4): ruling-set layering with
//     Brooks recolorings of the base layer. O(Δ²·log² n) rounds with this
//     repository's substituted subroutines.
//   - Algorithm AlgBaseline: the Panconesi–Srinivasan-style comparator the
//     paper improves on.
//
// Quickstart:
//
//	g := gen.MustRandomRegular(rand.New(rand.NewSource(1)), 1<<10, 4)
//	res, err := deltacolor.Color(g, deltacolor.Options{Seed: 1})
//	// res.Colors is a proper coloring with colors in [0, 4).
package deltacolor

import (
	"errors"
	"fmt"
	"math"

	"deltacolor/graph"
	"deltacolor/internal/baseline"
	"deltacolor/internal/core"
	"deltacolor/local"
)

// Algorithm selects the coloring algorithm.
type Algorithm int

const (
	// AlgAuto picks per the paper's theorem preconditions: the small-Δ
	// randomized version for Δ <= 5, the large-Δ version otherwise.
	AlgAuto Algorithm = iota + 1
	// AlgRandomized is the Section 4 randomized algorithm (Theorems 1/3).
	AlgRandomized
	// AlgDeterministic is the Theorem 4 deterministic algorithm.
	AlgDeterministic
	// AlgBaseline is the Panconesi–Srinivasan-style baseline.
	AlgBaseline
	// AlgNetDec is the Theorem 21 deterministic variant that rides on a
	// network decomposition instead of the AGLP ruling-set recursion.
	AlgNetDec
)

func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgRandomized:
		return "randomized"
	case AlgDeterministic:
		return "deterministic"
	case AlgBaseline:
		return "baseline"
	case AlgNetDec:
		return "netdec"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options configures Color.
type Options struct {
	Algorithm Algorithm // default AlgAuto
	Seed      int64

	// Randomized-algorithm knobs (zero = the paper's defaults, see
	// core.RandOptions.AutoParams): DCC radius R, marking backoff B,
	// selection probability P.
	R       int
	Backoff int
	P       float64
	// Deterministic list coloring inside the randomized pipeline.
	DeterministicLists bool
}

// PhaseStat re-exports the per-phase round accounting.
type PhaseStat = local.PhaseStat

// Result is a completed Δ-coloring with its LOCAL round cost.
type Result struct {
	Colors    []int
	Delta     int
	Rounds    int
	Phases    []PhaseStat
	Repairs   int // nodes completed by the Brooks safety net
	Algorithm Algorithm

	// RepairBatches is the number of batches the Brooks repair engine ran
	// (repairs with pairwise-independent balls share a batch and are
	// charged max rounds, not the sum; see internal/brooks.RepairHoles).
	// Zero when no repairs were needed.
	RepairBatches int
	// RepairBatchRounds is the per-batch charged rounds histogram
	// (scheduling + execution per batch), in execution order across every
	// engine invocation of the run. len(RepairBatchRounds) == RepairBatches.
	RepairBatchRounds []int

	// Span is the run's nested timeline (pipeline → phase → primitive),
	// collected only when a tracer is installed process-wide with
	// local.SetDefaultTracer before the Color call; nil otherwise. Export
	// it with local.WriteChromeTrace / local.WriteTraceJSONL via
	// Tracer.Dump.
	Span *local.Span
}

// Snapshot is the counters view a monitoring endpoint (the future colord
// server) exposes for a traced sequence of runs: the engine's cumulative
// counters plus the repair activity of the completed colorings folded in
// with AddRun.
type Snapshot struct {
	Engine        local.Counters `json:"engine"`
	Colorings     int64          `json:"colorings"`
	RepairNodes   int64          `json:"repair_nodes"`
	RepairBatches int64          `json:"repair_batches"`
}

// AddRun folds one completed coloring into the snapshot.
func (s *Snapshot) AddRun(r *Result) {
	s.Colorings++
	s.RepairNodes += int64(r.Repairs)
	s.RepairBatches += int64(r.RepairBatches)
}

// TakeSnapshot captures the tracer's counters (tr may be nil — engine
// counters stay zero) plus the given results' repair activity.
func TakeSnapshot(tr *local.Tracer, results ...*Result) Snapshot {
	var s Snapshot
	if tr != nil {
		s.Engine = tr.Counters()
	}
	for _, r := range results {
		s.AddRun(r)
	}
	return s
}

// Errors re-exported for matching with errors.Is.
var (
	ErrComplete       = core.ErrComplete
	ErrOddCycle       = core.ErrOddCycle
	ErrDegreeTooSmall = core.ErrDegreeTooSmall
	ErrNotNice        = core.ErrNotNice
)

// ErrBadOptions is the sentinel all option-validation errors wrap; match
// with errors.Is(err, ErrBadOptions).
var ErrBadOptions = errors.New("invalid options")

// OptionError reports a single invalid Options field. It wraps
// ErrBadOptions for errors.Is matching.
type OptionError struct {
	Field  string
	Value  any
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("deltacolor: invalid option %s = %v: %s", e.Field, e.Value, e.Reason)
}

func (e *OptionError) Unwrap() error { return ErrBadOptions }

// validate rejects option values that the algorithm knobs cannot
// meaningfully interpret; zero values always pass (they select the
// paper's defaults via core.RandOptions.AutoParams).
func (opts Options) validate() error {
	if opts.R < 0 {
		return &OptionError{Field: "R", Value: opts.R, Reason: "DCC radius must be >= 0 (0 = auto)"}
	}
	if opts.Backoff < 0 {
		return &OptionError{Field: "Backoff", Value: opts.Backoff, Reason: "marking backoff must be >= 0 (0 = auto)"}
	}
	if opts.P < 0 || opts.P > 1 || math.IsNaN(opts.P) {
		// The accepted set is [0, 1]: the open-interval phrasing this
		// message once used contradicted the documented P = 0 auto value.
		return &OptionError{Field: "P", Value: opts.P, Reason: "selection probability must lie in [0, 1] (0 selects the paper's auto value)"}
	}
	return nil
}

// Color computes a Δ-coloring of g. The graph must be "nice" per the
// paper: every connected component is neither a path, a cycle, nor a
// clique, and Δ >= 3 (otherwise a typed error is returned).
func Color(g *graph.G, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	alg := opts.Algorithm
	if alg == 0 {
		alg = AlgAuto
	}
	if alg == AlgAuto {
		alg = AlgRandomized
	}
	switch alg {
	case AlgRandomized:
		mode := core.ListColorRandomized
		if opts.DeterministicLists {
			mode = core.ListColorDeterministic
		}
		res, err := core.Randomized(g, core.RandOptions{
			Seed:     opts.Seed,
			R:        opts.R,
			Backoff:  opts.Backoff,
			P:        opts.P,
			ListMode: mode,
		})
		if err != nil {
			return nil, err
		}
		return fromCore(res, AlgRandomized), nil
	case AlgDeterministic:
		res, err := core.Deterministic(g, opts.Seed)
		if err != nil {
			return nil, err
		}
		return fromCore(res, AlgDeterministic), nil
	case AlgNetDec:
		res, err := core.DeterministicNetDec(g, opts.Seed)
		if err != nil {
			return nil, err
		}
		return fromCore(res, AlgNetDec), nil
	case AlgBaseline:
		res, err := baseline.Color(g, opts.Seed)
		if err != nil {
			return nil, err
		}
		return &Result{
			Colors:    res.Colors,
			Delta:     res.Delta,
			Rounds:    res.Rounds,
			Phases:    res.Phases,
			Algorithm: AlgBaseline,
			// The baseline's stuck nodes are exactly the ones its Brooks
			// token walks complete, so they are its repair count.
			Repairs:           res.Stuck,
			RepairBatches:     res.RepairBatches,
			RepairBatchRounds: res.RepairBatchRounds,
			Span:              res.Span,
		}, nil
	default:
		return nil, &OptionError{Field: "Algorithm", Value: alg, Reason: "unknown algorithm"}
	}
}

func fromCore(res *core.Result, alg Algorithm) *Result {
	return &Result{
		Colors:            res.Colors,
		Delta:             res.Delta,
		Rounds:            res.Rounds,
		Phases:            res.Phases,
		Repairs:           res.Repairs,
		Algorithm:         alg,
		RepairBatches:     res.RepairBatches,
		RepairBatchRounds: res.RepairBatchRounds,
		Span:              res.Span,
	}
}
