// Frequency assignment on a radio tower network — the classic motivating
// workload for distributed coloring: towers whose ranges overlap must not
// share a frequency, the spectrum is scarce (we want max-degree many
// channels, not max-degree+1), and each tower can only talk to the towers
// it interferes with (the LOCAL model is the real communication model).
//
// The example builds a unit-disk interference graph from random tower
// positions, prunes it to a "nice" graph (the theorems' precondition),
// Δ-colors it, and prints the channel assignment statistics plus a small
// ASCII map.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/verify"
)

type tower struct{ x, y float64 }

func main() {
	const (
		nTowers = 900
		world   = 30.0 // towers live in a world×world square
		radius  = 1.45 // interference radius
		maxDeg  = 7    // drop weakest links above this degree (spectrum planning)
	)
	rng := rand.New(rand.NewSource(7))

	towers := make([]tower, nTowers)
	for i := range towers {
		towers[i] = tower{rng.Float64() * world, rng.Float64() * world}
	}

	g := interferenceGraph(towers, radius, maxDeg)
	delta := g.MaxDegree()
	fmt.Printf("interference graph: %d towers, %d conflicting pairs, Δ=%d\n", g.N(), g.M(), delta)

	// Real layouts are disconnected: a dense urban core plus isolated
	// towers, chains along roads, and the odd triangle. The distributed
	// Brooks theorem requires "nice" components (not a path, cycle or
	// clique); those degenerate components are trivially assignable anyway.
	// Color each component with the right tool.
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	comp, count := g.ConnectedComponents()
	byComp := make([][]int, count)
	for v, c := range comp {
		byComp[c] = append(byComp[c], v)
	}
	rounds, distributed, trivial := 0, 0, 0
	for _, nodes := range byComp {
		sub, orig, err := g.InducedSubgraph(nodes)
		if err != nil {
			log.Fatal(err)
		}
		res, err := deltacolor.Color(sub, deltacolor.Options{Seed: 7})
		switch {
		case err == nil:
			for i, c := range res.Colors {
				colors[orig[i]] = c
			}
			if res.Rounds > rounds {
				rounds = res.Rounds // components run in parallel in LOCAL
			}
			distributed += len(nodes)
		case errors.Is(err, deltacolor.ErrNotNice), errors.Is(err, deltacolor.ErrDegreeTooSmall),
			errors.Is(err, deltacolor.ErrComplete), errors.Is(err, deltacolor.ErrOddCycle):
			// Paths, small cycles, cliques, isolated towers: assign greedily
			// (uses at most deg+1 <= Δ+1 channels, usually far fewer).
			for _, v := range orig {
				colors[v] = greedyChannel(g, colors, v)
			}
			trivial += len(nodes)
		default:
			log.Fatalf("coloring failed: %v", err)
		}
	}

	channels := 0
	for _, c := range colors {
		if c+1 > channels {
			channels = c + 1
		}
	}
	if err := verify.DeltaColoring(g, colors, max(channels, delta)); err != nil {
		log.Fatalf("invalid assignment: %v", err)
	}
	fmt.Printf("assigned %d channels: %d towers via the distributed Δ-coloring (max %d LOCAL rounds),\n",
		channels, distributed, rounds)
	fmt.Printf("%d towers in degenerate components assigned trivially\n", trivial)

	// Spectrum usage per channel.
	counts := make([]int, channels)
	for _, c := range colors {
		counts[c]++
	}
	for c, k := range counts {
		fmt.Printf("  channel %d: %3d towers\n", c, k)
	}

	// Interference check by construction + map of the crowded center region.
	fmt.Println("\ncenter region (each cell shows the channel of its densest tower):")
	printMap(towers, colors, world)
}

// greedyChannel picks the lowest channel unused by v's already-assigned
// neighbors.
func greedyChannel(g *graph.G, colors []int, v int) int {
	used := map[int]bool{}
	for _, u := range g.Neighbors(v) {
		if colors[u] >= 0 {
			used[colors[u]] = true
		}
	}
	c := 0
	for used[c] {
		c++
	}
	return c
}

// interferenceGraph connects towers within the interference radius,
// dropping the longest links of overloaded towers so the degree stays
// within the available spectrum budget.
func interferenceGraph(towers []tower, radius float64, maxDeg int) *graph.G {
	n := len(towers)
	type link struct {
		u, v int
		d    float64
	}
	var links []link
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := towers[u].x - towers[v].x
			dy := towers[u].y - towers[v].y
			if d := math.Hypot(dx, dy); d <= radius {
				links = append(links, link{u, v, d})
			}
		}
	}
	// Strongest (shortest) interference first; skip links that would push a
	// tower over the degree budget.
	for i := 1; i < len(links); i++ {
		for j := i; j > 0 && links[j].d < links[j-1].d; j-- {
			links[j], links[j-1] = links[j-1], links[j]
		}
	}
	g := graph.New(n)
	for _, l := range links {
		if g.Deg(l.u) < maxDeg && g.Deg(l.v) < maxDeg {
			g.MustEdge(l.u, l.v)
		}
	}
	return g
}

// printMap renders a coarse grid of the central third of the world; each
// cell shows the channel digit of one tower inside it (or '.' if empty).
func printMap(towers []tower, colors []int, world float64) {
	const cells = 24
	lo, hi := world/3, 2*world/3
	grid := make([][]byte, cells)
	for r := range grid {
		grid[r] = make([]byte, cells)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	for i, t := range towers {
		if t.x < lo || t.x >= hi || t.y < lo || t.y >= hi {
			continue
		}
		r := int((t.y - lo) / (hi - lo) * cells)
		c := int((t.x - lo) / (hi - lo) * cells)
		grid[r][c] = byte('0' + colors[i]%10)
	}
	for _, row := range grid {
		fmt.Printf("  %s\n", row)
	}
}
