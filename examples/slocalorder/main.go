// SLOCAL demo (Remark 17 of the paper): Δ-coloring is computable in the
// sequential-LOCAL model with locality O(log_Δ n) — each node, processed
// in an ADVERSARIAL order, reads only a small ball (including outputs of
// already-processed nodes) and commits its color, with the Brooks token
// walk as the escape hatch when the greedy choice is blocked.
//
// The example runs the same graph under several processing orders —
// including a worst-case-ish "color the dense core last" order — and
// shows that the coloring is always valid and the measured locality stays
// within the theorem's bound.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"deltacolor/graph/gen"
	"deltacolor/slocal"
	"deltacolor/verify"
)

func main() {
	const n, d = 512, 4
	rng := rand.New(rand.NewSource(21))
	g := gen.MustRandomRegular(rng, n, d)

	bound := 3*int(math.Ceil(2*math.Log(float64(n))/math.Log(float64(d-1)))) + 1
	fmt.Printf("graph: n=%d Δ=%d; Theorem 5 locality bound (3·2·log_{Δ-1} n + 1) = %d\n\n", n, d, bound)

	orders := map[string][]int{
		"identity":           seq(n),
		"random":             rng.Perm(n),
		"high-degree-last":   byDegree(g.N(), func(v int) int { return g.Deg(v) }),
		"interleaved halves": interleave(n),
	}

	names := make([]string, 0, len(orders))
	for name := range orders {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		colors, locality, err := slocal.DeltaColor(g, orders[name])
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := verify.DeltaColoring(g, colors, d); err != nil {
			log.Fatalf("%s: invalid coloring: %v", name, err)
		}
		fmt.Printf("order %-18s -> valid Δ-coloring, measured locality %d (bound %d)\n", name, locality, bound)
	}

	fmt.Println("\nlocality is the largest ball any single node actually read or wrote;")
	fmt.Println("most nodes commit greedily at locality 1, the Brooks walks set the max.")
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func interleave(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n/2; i++ {
		out = append(out, i, n/2+i)
	}
	for i := 2 * (n / 2); i < n; i++ {
		out = append(out, i)
	}
	return out
}

func byDegree(n int, deg func(int) int) []int {
	out := seq(n)
	sort.SliceStable(out, func(i, j int) bool { return deg(out[i]) < deg(out[j]) })
	return out
}
