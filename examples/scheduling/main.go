// Exam scheduling with a conflict graph: courses that share a student must
// sit in different time slots. The number of slots is the resource being
// minimized — Δ-coloring saves one whole slot over the greedy Δ+1 bound,
// which for a registrar is an entire exam day.
//
// The example synthesizes a realistic enrollment (students pick a handful
// of courses with popularity skew), builds the conflict graph, colors it
// with both Δ and the greedy Δ+1 for contrast, and prints the timetable
// utilization.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/verify"
)

func main() {
	const (
		nCourses    = 600
		nStudents   = 4000
		coursesEach = 4
		maxConflict = 9 // cap conflicts per course (sectioning splits hot courses)
	)
	rng := rand.New(rand.NewSource(42))

	g := enrollmentConflicts(rng, nCourses, nStudents, coursesEach, maxConflict)
	delta := g.MaxDegree()
	fmt.Printf("conflict graph: %d courses, %d conflicting pairs, max conflicts per course Δ=%d\n",
		g.N(), g.M(), delta)

	res, err := deltacolor.Color(g, deltacolor.Options{Seed: 42})
	if err != nil {
		log.Fatalf("Δ-slot schedule failed: %v", err)
	}
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		log.Fatalf("invalid schedule: %v", err)
	}

	greedySlots := greedyColors(g)
	fmt.Printf("\nΔ-coloring:      %d slots guaranteed (%d LOCAL rounds, alg=%s)\n", res.Delta, res.Rounds, res.Algorithm)
	fmt.Printf("greedy measured: %d slots on this instance (its guarantee is only Δ+1 = %d)\n", greedySlots, res.Delta+1)
	fmt.Println("the Δ-coloring guarantee matters when enrollments are adversarial: greedy")
	fmt.Println("orderings exist that force Δ+1 slots, while Brooks' theorem promises Δ always.")

	counts := make([]int, res.Delta)
	for _, c := range res.Colors {
		counts[c]++
	}
	fmt.Println("\ntimetable utilization:")
	for slot, k := range counts {
		fmt.Printf("  slot %d: %3d exams %s\n", slot, k, bar(k))
	}
}

// enrollmentConflicts builds the course-conflict graph: course popularity
// is skewed (prefix-biased sampling), two courses conflict when a student
// takes both, and conflicts are capped per course. A course spine keeps
// the graph connected so the Δ-coloring preconditions hold even for
// unlucky enrollments.
func enrollmentConflicts(rng *rand.Rand, nCourses, nStudents, coursesEach, maxConflict int) *graph.G {
	g := graph.New(nCourses)
	// Spine: course i conflicts with course i+1 (shared core curriculum).
	for i := 0; i+1 < nCourses; i++ {
		g.MustEdge(i, i+1)
	}
	for s := 0; s < nStudents; s++ {
		picked := map[int]bool{}
		var courses []int
		for len(courses) < coursesEach {
			// Prefix bias: lower-numbered courses are more popular.
			c := int(float64(nCourses) * rng.Float64() * rng.Float64())
			if c >= nCourses || picked[c] {
				continue
			}
			picked[c] = true
			courses = append(courses, c)
		}
		for i := 0; i < len(courses); i++ {
			for j := i + 1; j < len(courses); j++ {
				u, v := courses[i], courses[j]
				if g.HasEdge(u, v) || g.Deg(u) >= maxConflict || g.Deg(v) >= maxConflict {
					continue
				}
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

// greedyColors runs the sequential greedy (Δ+1)-coloring and returns the
// number of slots it uses — the comparison point for the saved slot.
func greedyColors(g *graph.G) int {
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = -1
	}
	max := 0
	for v := 0; v < g.N(); v++ {
		used := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > max {
			max = c + 1
		}
	}
	return max
}

func bar(k int) string {
	out := make([]byte, k/4)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
