// Quickstart: color a random 4-regular graph with Δ = 4 colors and print
// the round accounting. This is the smallest complete use of the public
// API: build a graph, call deltacolor.Color, verify, inspect the result.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

func main() {
	// A random 4-regular graph on 1024 nodes. By Brooks' theorem it has a
	// 4-coloring (it is connected, not complete, not an odd cycle).
	rng := rand.New(rand.NewSource(1))
	g := gen.MustRandomRegular(rng, 1024, 4)

	res, err := deltacolor.Color(g, deltacolor.Options{Seed: 1})
	if err != nil {
		log.Fatalf("coloring failed: %v", err)
	}

	// Always verify — it is cheap and the whole point of the library.
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		log.Fatalf("invalid coloring: %v", err)
	}

	fmt.Printf("colored n=%d nodes with Δ=%d colors (one fewer than the greedy Δ+1)\n", g.N(), res.Delta)
	fmt.Printf("algorithm: %s, LOCAL rounds: %d, safety-net repairs: %d\n", res.Algorithm, res.Rounds, res.Repairs)
	fmt.Println("\nper-phase round accounting:")
	for _, ph := range res.Phases {
		fmt.Printf("  %-24s %6d\n", ph.Name, ph.Rounds)
	}

	// The color classes are balanced enough to use as e.g. time slots.
	counts := make([]int, res.Delta)
	for _, c := range res.Colors {
		counts[c]++
	}
	fmt.Println("\ncolor class sizes:")
	for c, k := range counts {
		fmt.Printf("  color %d: %4d nodes\n", c, k)
	}
}
