// Comparison sweep: every algorithm in the library on the same workloads,
// side by side — the fastest way to see the paper's headline claim (the
// randomized algorithm beats the 25-year-old baseline, and the gap grows
// with n) on your own machine. A compact version of experiment E4.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

func main() {
	algs := []deltacolor.Algorithm{
		deltacolor.AlgRandomized,
		deltacolor.AlgDeterministic,
		deltacolor.AlgNetDec,
		deltacolor.AlgBaseline,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tn\tΔ\trandomized\tdeterministic\tnetdec\tbaseline\tbaseline/randomized")

	for _, e := range []int{8, 9, 10, 11} {
		n := 1 << e
		rng := rand.New(rand.NewSource(int64(e)))
		g := gen.MustRandomRegular(rng, n, 4)

		rounds := make([]int, len(algs))
		for i, alg := range algs {
			res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: int64(e)})
			if err != nil {
				log.Fatalf("%v on n=%d: %v", alg, n, err)
			}
			if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
				log.Fatalf("%v produced an invalid coloring: %v", alg, err)
			}
			rounds[i] = res.Rounds
		}
		fmt.Fprintf(w, "random 4-regular\t%d\t4\t%d\t%d\t%d\t%d\t%.2fx\n",
			n, rounds[0], rounds[1], rounds[2], rounds[3],
			float64(rounds[3])/float64(rounds[0]))
	}

	// One structured workload for contrast: the torus (Δ = 4, all 4-cycles).
	g := gen.Torus(32, 32)
	fmt.Fprintln(w)
	rres, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bres, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgBaseline, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "torus 32x32\t%d\t4\t%d\t\t\t%d\t%.2fx\n",
		g.N(), rres.Rounds, bres.Rounds, float64(bres.Rounds)/float64(rres.Rounds))

	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrounds are simulated LOCAL communication rounds (the quantity the paper's theorems bound),")
	fmt.Println("not wall-clock time; see EXPERIMENTS.md for the full E1–E10 suite.")
}
