// Self-healing recoloring: detect the conflict set a fault or a graph
// mutation left behind, uncolor it into holes, and drive the batched
// Brooks repair engine instead of recoloring from scratch.
//
// This is the recovery half of the fault-injection tentpole (local/
// fault.go is the damage half) and the incremental path of the ROADMAP's
// coloring-as-a-service item: after edge/node churn (local.Network
// AddEdge/RemoveEdge/AddNode) or a run under a FaultPlan, Recolor
// restores a verified Δ-coloring touching O(conflict set) of the graph,
// while ColorUnderFaults packages the whole "run under faults, detect,
// repair, verify" loop for any pipeline.
package deltacolor

import (
	"errors"
	"fmt"

	"deltacolor/graph"
	"deltacolor/internal/brooks"
	"deltacolor/local"
	"deltacolor/verify"
)

// ErrUnrecoverable is the sentinel every recovery failure wraps: the
// repair engine could not restore a coloring that passes verification.
// Match with errors.Is; the concrete *UnrecoverableError carries the
// residual conflict set.
var ErrUnrecoverable = errors.New("unrecoverable coloring")

// UnrecoverableError reports a recovery that could not restore a valid
// Δ-coloring — never a panic, never a silently bad coloring. Residual
// holds the nodes still uncolored or in conflict when repair gave up.
type UnrecoverableError struct {
	Residual []int // conflict set that remains (external node IDs, ascending)
	Reason   error // what stopped recovery
}

func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("deltacolor: unrecoverable: %d node(s) in residual conflict set: %v", len(e.Residual), e.Reason)
}

// Unwrap exposes both the ErrUnrecoverable sentinel and the underlying
// reason to errors.Is / errors.As.
func (e *UnrecoverableError) Unwrap() []error { return []error{ErrUnrecoverable, e.Reason} }

// RecolorStats summarizes one Recolor pass.
type RecolorStats struct {
	Conflicts     int // nodes uncolored into holes (pre-existing holes included)
	Repaired      int // holes completed by their own repair procedure
	Changed       int // nodes whose color the repair engine touched
	RepairBatches int // scheduling batches the engine ran
	RepairRounds  int // charged LOCAL rounds (scheduling + execution, max-not-sum)
}

// ConflictSet returns the deterministic set of nodes that must be
// uncolored to make the remaining coloring a proper partial Δ-coloring:
// every node whose color is missing or out of range, plus — for each
// monochromatic edge whose endpoints are both still in range — the
// higher-ID endpoint. Uncoloring the returned set always yields a proper
// partial coloring (each bad edge loses at least one endpoint, and marks
// only accumulate), and the rule is a pure function of (g, colors), so
// detection is reproducible. Ascending order.
func ConflictSet(g *graph.G, colors []int, delta int) []int {
	n := g.N()
	marked := make([]bool, n)
	for v := 0; v < n && v < len(colors); v++ {
		if colors[v] < 0 || colors[v] >= delta {
			marked[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if marked[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if u > v && !marked[u] && colors[u] == colors[v] {
				marked[u] = true
			}
		}
	}
	var bad []int
	for v := 0; v < n; v++ {
		if marked[v] {
			bad = append(bad, v)
		}
	}
	return bad
}

// residualConflicts is the post-mortem for a failed recovery: holes plus
// conflict-set members of whatever state repair left behind.
func residualConflicts(g *graph.G, colors []int, delta int) []int {
	return ConflictSet(g, colors, delta)
}

// Recolor restores a verified Δ-coloring after faults or churn, mutating
// colors in place. It scans the conflict set, uncolors it into holes,
// feeds them to the batched Brooks repair engine (internal/brooks), and
// verifies the result — the incremental alternative to calling Color on
// the mutated graph from scratch, costing O(conflict set) repair work
// instead of a full pipeline (experiment E16 measures the gap).
//
// colors must have exactly one entry per node of g; after AddNode churn,
// append -1 entries for the new nodes first. delta is the color budget
// (typically MaxDegree of the mutated graph; it may exceed the original
// Δ after insertions). The process-wide default FaultPlan is detached
// while repair runs — the repair engine's internal networks must not
// inherit the plan that caused the damage — and restored afterwards.
//
// On failure the returned error wraps ErrUnrecoverable and carries the
// residual conflict set; colors then holds the partial state repair
// reached (holes are -1), never a silently improper coloring.
func Recolor(g *graph.G, colors []int, delta int, seed int64) (*RecolorStats, error) {
	if len(colors) != g.N() {
		return nil, fmt.Errorf("deltacolor: Recolor: %d colors for %d nodes (append -1 entries for added nodes)", len(colors), g.N())
	}
	if prev := local.DefaultFaultPlan(); prev != nil {
		_ = local.SetDefaultFaultPlan(nil)
		defer func() { _ = local.SetDefaultFaultPlan(prev) }()
	}
	conflicts := ConflictSet(g, colors, delta)
	for _, v := range conflicts {
		colors[v] = -1
	}
	stats := &RecolorStats{Conflicts: len(conflicts)}
	if len(conflicts) > 0 {
		res, err := brooks.RepairHoles(g, colors, conflicts, delta, seed)
		if err != nil {
			return stats, &UnrecoverableError{Residual: residualConflicts(g, colors, delta), Reason: err}
		}
		stats.Repaired = res.Fixed
		stats.Changed = len(res.Changed)
		stats.RepairBatches = len(res.Batches)
		stats.RepairRounds = res.TotalRounds()
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		return stats, &UnrecoverableError{Residual: residualConflicts(g, colors, delta), Reason: err}
	}
	return stats, nil
}

// ColorUnderFaults runs a full pipeline with the given FaultPlan
// injected into every network it builds, then detects, repairs and
// verifies the damage: the "run under FaultPlan, detect, repair,
// verify" mode of every pipeline. The plan is installed as the process
// default for the duration of the Color call (so the pipeline's internal
// networks all inherit it) and the previous default is restored before
// repair runs.
//
// The contract is all-or-typed-error: on nil error the returned
// Result.Colors passes verify.DeltaColoring; every fault-induced failure
// — a pipeline error, a pipeline panic on fault-mangled state, or a
// repair that cannot converge — returns an error wrapping
// ErrUnrecoverable. Precondition errors (ErrBadOptions, ErrNotNice,
// ErrComplete, ErrOddCycle, ErrDegreeTooSmall) are not fault-induced and
// pass through unwrapped.
//
// Determinism: same graph, same Options, same plan ⇒ byte-identical
// colors, rounds and repair stats, independent of worker count.
func ColorUnderFaults(g *graph.G, opts Options, plan *local.FaultPlan) (*Result, *RecolorStats, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	prev := local.DefaultFaultPlan()
	if plan != nil {
		if err := local.SetDefaultFaultPlan(plan); err != nil {
			return nil, nil, err
		}
	}
	res, runErr := colorRecovering(g, opts)
	_ = local.SetDefaultFaultPlan(prev)
	if runErr != nil {
		if isStructuralErr(runErr) {
			return nil, nil, runErr
		}
		return nil, nil, &UnrecoverableError{Reason: runErr}
	}
	stats, err := Recolor(g, res.Colors, res.Delta, opts.Seed^0x5eed_c0de)
	if err != nil {
		return res, stats, err
	}
	return res, stats, nil
}

// colorRecovering is Color with panic containment: under fault injection
// a pipeline's central code may trip over engine outputs truncated by a
// RoundLimit (a nil where a value always was, a partial layering), and
// that must surface as a recoverable error, not kill the process.
func colorRecovering(g *graph.G, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("pipeline panicked under faults: %v", r)
		}
	}()
	return Color(g, opts)
}

// isStructuralErr reports whether err is a precondition failure the
// caller must fix — unrelated to injected faults.
func isStructuralErr(err error) bool {
	for _, s := range []error{ErrBadOptions, ErrNotNice, ErrComplete, ErrOddCycle, ErrDegreeTooSmall} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}
