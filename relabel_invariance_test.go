package deltacolor_test

// External-ID invariance golden for the cache-locality relabeling: the
// LOCAL runtime may lay its tables out in any internal order, but every
// observable result — colors, rounds, repair counts, phase breakdowns —
// must be byte-identical with relabeling on (the default, which the
// pinned goldens in determinism_test.go already run under) and off (the
// local.SetRelabel ablation). A divergence here means an ID crossed the
// translation boundary untranslated.

import (
	"math/rand"
	"reflect"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

func TestRelabelInvarianceAcrossPipelines(t *testing.T) {
	cases := []struct {
		name string
		n, d int
		alg  deltacolor.Algorithm
		seed int64
		slow bool
	}{
		{name: "rand", n: 256, d: 4, alg: deltacolor.AlgRandomized, seed: 1},
		{name: "det", n: 128, d: 4, alg: deltacolor.AlgDeterministic, seed: 3, slow: true},
		{name: "netdec", n: 128, d: 4, alg: deltacolor.AlgNetDec, seed: 4, slow: true},
		{name: "baseline", n: 256, d: 4, alg: deltacolor.AlgBaseline, seed: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("slow invariance case skipped in -short")
			}
			g := gen.MustRandomRegular(rand.New(rand.NewSource(tc.seed)), tc.n, tc.d)
			run := func(relabel bool) *deltacolor.Result {
				prev := local.RelabelEnabled()
				local.SetRelabel(relabel)
				defer local.SetRelabel(prev)
				res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: tc.alg, Seed: tc.seed})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			on, off := run(true), run(false)
			if !reflect.DeepEqual(on.Colors, off.Colors) {
				t.Errorf("colors differ between relabel on and off")
			}
			if on.Rounds != off.Rounds {
				t.Errorf("rounds differ: on=%d off=%d", on.Rounds, off.Rounds)
			}
			if on.Repairs != off.Repairs {
				t.Errorf("repairs differ: on=%d off=%d", on.Repairs, off.Repairs)
			}
			if !reflect.DeepEqual(on.Phases, off.Phases) {
				t.Errorf("phase breakdowns differ:\non:  %v\noff: %v", on.Phases, off.Phases)
			}
		})
	}
}
