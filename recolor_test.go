package deltacolor_test

// Tests for the self-healing recovery surface: ConflictSet detection,
// Recolor repair after corruption and churn, the typed ErrUnrecoverable
// contract, and ColorUnderFaults — the "run under FaultPlan, detect,
// repair, verify" mode of every pipeline.

import (
	"errors"
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
	"deltacolor/verify"
)

// coloredRegular returns a verified Δ-colored random regular graph.
func coloredRegular(t *testing.T, n, d int, seed int64) (*graph.G, []int) {
	t.Helper()
	g := gen.MustRandomRegular(rand.New(rand.NewSource(seed)), n, d)
	res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Colors
}

func TestConflictSetDetectsCorruption(t *testing.T) {
	g, colors := coloredRegular(t, 128, 4, 11)

	if cs := deltacolor.ConflictSet(g, colors, 4); len(cs) != 0 {
		t.Fatalf("valid coloring reported conflicts %v", cs)
	}

	// Copy a neighbor's color onto node 0: every neighbor of 0 holding
	// that color now sits on a monochromatic edge, and each such edge
	// marks its higher-ID endpoint (the neighbor, since 0 is lowest).
	nb := g.Neighbors(0)[0]
	bad := append([]int(nil), colors...)
	bad[0] = bad[nb]
	want := map[int]bool{}
	for _, u := range g.Neighbors(0) {
		if bad[u] == bad[0] {
			want[u] = true
		}
	}
	cs := deltacolor.ConflictSet(g, bad, 4)
	if len(cs) != len(want) {
		t.Fatalf("conflict set = %v, want keys of %v", cs, want)
	}
	for _, v := range cs {
		if !want[v] {
			t.Fatalf("unexpected conflict node %d in %v", v, cs)
		}
	}

	// Out-of-range and holes are always conflicts.
	bad[5] = -1
	bad[7] = 4
	cs = deltacolor.ConflictSet(g, bad, 4)
	want[5], want[7] = true, true
	if len(cs) != len(want) {
		t.Fatalf("conflict set = %v, want keys of %v", cs, want)
	}
	for _, v := range cs {
		if !want[v] {
			t.Fatalf("unexpected conflict node %d in %v", v, cs)
		}
	}

	// Uncoloring the conflict set must leave a proper partial coloring.
	for _, v := range cs {
		bad[v] = -1
	}
	if err := verify.PartialColoring(g, bad, 4); err != nil {
		t.Fatalf("uncolored conflict set not a proper partial coloring: %v", err)
	}
}

func TestRecolorFixesInjectedCorruption(t *testing.T) {
	g, colors := coloredRegular(t, 256, 4, 21)
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 12; k++ {
		v := rng.Intn(g.N())
		colors[v] = rng.Intn(4) // may or may not conflict; Recolor decides
	}
	colors[3] = -1 // a hole
	colors[9] = 17 // out of range

	stats, err := deltacolor.Recolor(g, colors, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, colors, 4); err != nil {
		t.Fatalf("post-Recolor coloring invalid: %v", err)
	}
	if stats.Conflicts == 0 || stats.Changed == 0 {
		t.Fatalf("stats claim no work: %+v", stats)
	}
	t.Logf("recolor stats: %+v", stats)
}

func TestRecolorNoopOnValidColoring(t *testing.T) {
	g, colors := coloredRegular(t, 128, 4, 31)
	before := append([]int(nil), colors...)
	stats, err := deltacolor.Recolor(g, colors, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts != 0 || stats.Changed != 0 {
		t.Fatalf("noop recolor reported work: %+v", stats)
	}
	for v := range colors {
		if colors[v] != before[v] {
			t.Fatalf("noop recolor changed node %d", v)
		}
	}
}

func TestRecolorAfterChurn(t *testing.T) {
	g, colors := coloredRegular(t, 256, 4, 41)

	// Insert edges until one is monochromatic, then add a fresh node wired
	// to three others — the AddNode contract: caller appends -1 entries.
	rng := rand.New(rand.NewSource(5))
	mono := false
	for k := 0; k < 64 && !mono; k++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustEdge(u, v)
		mono = mono || colors[u] == colors[v]
	}
	nv := g.AddNode()
	for _, u := range []int{0, 1, 2} {
		g.MustEdge(nv, u)
	}
	colors = append(colors, -1)

	delta := g.MaxDegree()
	stats, err := deltacolor.Recolor(g, colors, delta, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		t.Fatalf("post-churn recolor invalid: %v", err)
	}
	if stats.Conflicts == 0 {
		t.Fatal("churn produced no conflicts to repair — test is vacuous")
	}
	t.Logf("churn recolor stats: %+v (Δ=%d)", stats, delta)
}

func TestRecolorUnrecoverableOnClique(t *testing.T) {
	// K4 is not Δ-colorable: uncoloring any conflict leaves a hole no
	// Brooks repair can fill with Δ=3 colors. Must surface as the typed
	// sentinel with a residual set — never a panic or a bad coloring.
	g := gen.Complete(4)
	colors := []int{0, 1, 2, 0} // nodes 0 and 3 collide
	_, err := deltacolor.Recolor(g, colors, 3, 1)
	if !errors.Is(err, deltacolor.ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable, got %v", err)
	}
	var ue *deltacolor.UnrecoverableError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v does not unwrap to *UnrecoverableError", err)
	}
	if len(ue.Residual) == 0 {
		t.Fatal("UnrecoverableError carries empty residual conflict set")
	}
	if err := verify.PartialColoring(g, colors, 3); err != nil {
		t.Fatalf("failed recovery left an improper partial coloring: %v", err)
	}
}

func TestRecolorRejectsLengthMismatch(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := deltacolor.Recolor(g, []int{0, 1}, 2, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestColorUnderFaultsNilPlanMatchesColor(t *testing.T) {
	g := gen.MustRandomRegular(rand.New(rand.NewSource(3)), 128, 4)
	opts := deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: 3}
	want, err := deltacolor.Color(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := deltacolor.ColorUnderFaults(g, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts != 0 {
		t.Fatalf("fault-free run needed repair: %+v", stats)
	}
	for v := range want.Colors {
		if got.Colors[v] != want.Colors[v] {
			t.Fatalf("node %d: %d != %d", v, got.Colors[v], want.Colors[v])
		}
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("rounds %d != %d", got.Rounds, want.Rounds)
	}
}

func TestColorUnderFaultsStructuralErrPassesThrough(t *testing.T) {
	plan := &local.FaultPlan{Seed: 1, DropProb: 0.1, RoundLimit: 100}
	_, _, err := deltacolor.ColorUnderFaults(gen.Complete(5), deltacolor.Options{}, plan)
	if !errors.Is(err, deltacolor.ErrComplete) {
		t.Fatalf("want ErrComplete, got %v", err)
	}
	if errors.Is(err, deltacolor.ErrUnrecoverable) {
		t.Fatal("structural error wrapped as unrecoverable")
	}
	if p := local.DefaultFaultPlan(); p != nil {
		t.Fatalf("default plan leaked after structural error: %+v", p)
	}
}

func TestColorUnderFaultsRepairsAndVerifies(t *testing.T) {
	// A bounded early burst of drops and delays: the pipeline limps but
	// terminates, then Recolor heals whatever the faults mangled. The
	// contract under test is all-or-typed-error, plus determinism: two
	// identical calls must agree byte for byte.
	g := gen.MustRandomRegular(rand.New(rand.NewSource(8)), 192, 4)
	opts := deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: 8}
	plan := &local.FaultPlan{
		Seed:     99,
		DropProb: 0.02, DelayProb: 0.05, MaxDelay: 2,
		FromRound: 1, ToRound: 40,
		RoundLimit: 20_000,
	}
	res1, st1, err1 := deltacolor.ColorUnderFaults(g, opts, plan)
	res2, st2, err2 := deltacolor.ColorUnderFaults(g, opts, plan)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("nondeterministic outcome: %v vs %v", err1, err2)
	}
	if err1 != nil {
		if !errors.Is(err1, deltacolor.ErrUnrecoverable) {
			t.Fatalf("fault failure not typed: %v", err1)
		}
		t.Skipf("plan unrecoverable for this pipeline (typed correctly): %v", err1)
	}
	if err := verify.DeltaColoring(g, res1.Colors, res1.Delta); err != nil {
		t.Fatalf("post-repair coloring invalid: %v", err)
	}
	if hashColors(res1.Colors) != hashColors(res2.Colors) {
		t.Fatal("colors differ across identical fault runs")
	}
	if *st1 != *st2 {
		t.Fatalf("repair stats differ: %+v vs %+v", st1, st2)
	}
	if p := local.DefaultFaultPlan(); p != nil {
		t.Fatalf("default plan leaked: %+v", p)
	}
	t.Logf("repair stats: %+v", st1)
}

// TestColorUnderFaultsProperty drives many random fault schedules through
// the randomized pipeline: every outcome must be either a verified
// coloring or an error wrapping ErrUnrecoverable — never a panic, never a
// silently improper coloring.
func TestColorUnderFaultsProperty(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	rng := rand.New(rand.NewSource(2026))
	healed, failed := 0, 0
	for trial := 0; trial < trials; trial++ {
		g := gen.MustRandomRegular(rng, 96+32*(trial%3), 4)
		plan := &local.FaultPlan{
			Seed:       rng.Int63(),
			DropProb:   0.05 * rng.Float64(),
			DupProb:    0.1 * rng.Float64(),
			DelayProb:  0.1 * rng.Float64(),
			MaxDelay:   1 + rng.Intn(3),
			FromRound:  1,
			ToRound:    10 + rng.Intn(60),
			RoundLimit: 20_000,
		}
		if rng.Intn(2) == 0 {
			v := rng.Intn(g.N())
			plan.Crashes = []local.CrashWindow{{Node: v, From: 2, To: 3 + rng.Intn(20)}}
		}
		opts := deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: int64(trial)}
		res, _, err := deltacolor.ColorUnderFaults(g, opts, plan)
		if err != nil {
			if !errors.Is(err, deltacolor.ErrUnrecoverable) {
				t.Fatalf("trial %d: untyped fault error: %v", trial, err)
			}
			failed++
			continue
		}
		if verr := verify.DeltaColoring(g, res.Colors, res.Delta); verr != nil {
			t.Fatalf("trial %d: nil error but invalid coloring: %v", trial, verr)
		}
		healed++
	}
	if p := local.DefaultFaultPlan(); p != nil {
		t.Fatalf("default plan leaked: %+v", p)
	}
	t.Logf("healed %d / unrecoverable %d of %d fault schedules", healed, failed, trials)
	if healed == 0 {
		t.Fatal("no schedule healed — fault magnitudes too aggressive for a meaningful property test")
	}
}
