package deltacolor_test

// Full-pipeline equivalence for the stepped ball-collection ports: every
// algorithm must produce byte-identical colors, rounds, repairs and phase
// breakdowns with the native stepped gather enabled (the default) and
// with the blocking coroutine shim (SetSteppedGather(false)). Together
// with TestColorDeterminismGoldens — which runs under the default — this
// proves the port changed the engine, not the algorithms: the goldens pin
// the stepped path to the pre-port captures, and this suite pins the shim
// to the stepped path.

import (
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

func TestSteppedGatherPortPipelineEquivalence(t *testing.T) {
	prev := local.SteppedGatherEnabled()
	defer local.SetSteppedGather(prev)

	cases := []struct {
		name string
		n, d int
		alg  deltacolor.Algorithm
		seed int64
		slow bool
	}{
		{name: "rand-n512-d4-s1", n: 512, d: 4, alg: deltacolor.AlgRandomized, seed: 1},
		{name: "rand-n512-d8-s2", n: 512, d: 8, alg: deltacolor.AlgRandomized, seed: 2},
		{name: "det-n256-d4-s3", n: 256, d: 4, alg: deltacolor.AlgDeterministic, seed: 3, slow: true},
		{name: "netdec-n256-d4-s4", n: 256, d: 4, alg: deltacolor.AlgNetDec, seed: 4, slow: true},
		{name: "baseline-n256-d4-s5", n: 256, d: 4, alg: deltacolor.AlgBaseline, seed: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("slow equivalence case skipped in -short")
			}
			g := gen.MustRandomRegular(rand.New(rand.NewSource(tc.seed)), tc.n, tc.d)

			local.SetSteppedGather(true)
			stepped, err := deltacolor.Color(g, deltacolor.Options{Algorithm: tc.alg, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			local.SetSteppedGather(false)
			blocking, err := deltacolor.Color(g, deltacolor.Options{Algorithm: tc.alg, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}

			if got, want := hashColors(stepped.Colors), hashColors(blocking.Colors); got != want {
				t.Errorf("colors hash: stepped %#x, blocking %#x", got, want)
			}
			if stepped.Rounds != blocking.Rounds {
				t.Errorf("rounds: stepped %d, blocking %d", stepped.Rounds, blocking.Rounds)
			}
			if stepped.Repairs != blocking.Repairs {
				t.Errorf("repairs: stepped %d, blocking %d", stepped.Repairs, blocking.Repairs)
			}
			if got, want := phaseString(stepped.Phases), phaseString(blocking.Phases); got != want {
				t.Errorf("phases: stepped %q, blocking %q", got, want)
			}
		})
	}
}
