package deltacolor_test

// Tracing must be observation-only: installing a tracer (even at full
// level, with span collection in every pipeline) may not change a single
// color, round charge, or phase name. The goldens in determinism_test.go
// pin the untraced outputs; this test pins traced == untraced directly
// for every pipeline, plus the span/snapshot surface that only exists
// when tracing is on.

import (
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

func TestTracingDoesNotPerturbColorings(t *testing.T) {
	cases := []struct {
		name string
		n, d int
		alg  deltacolor.Algorithm
		seed int64
		slow bool
	}{
		{name: "rand-n512-d4", n: 512, d: 4, alg: deltacolor.AlgRandomized, seed: 1},
		{name: "rand-n512-d8", n: 512, d: 8, alg: deltacolor.AlgRandomized, seed: 2},
		{name: "det-n256-d4", n: 256, d: 4, alg: deltacolor.AlgDeterministic, seed: 3, slow: true},
		{name: "netdec-n256-d4", n: 256, d: 4, alg: deltacolor.AlgNetDec, seed: 4, slow: true},
		{name: "baseline-n256-d4", n: 256, d: 4, alg: deltacolor.AlgBaseline, seed: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("slow case skipped in -short")
			}
			g := gen.MustRandomRegular(rand.New(rand.NewSource(tc.seed)), tc.n, tc.d)
			opts := deltacolor.Options{Algorithm: tc.alg, Seed: tc.seed}

			local.SetDefaultTracer(nil)
			plain, err := deltacolor.Color(g, opts)
			if err != nil {
				t.Fatalf("untraced run: %v", err)
			}
			if plain.Span != nil {
				t.Fatalf("untraced run returned a span")
			}

			tr := local.NewTracer(local.TraceFull, 0)
			local.SetDefaultTracer(tr)
			defer local.SetDefaultTracer(nil)
			traced, err := deltacolor.Color(g, opts)
			local.SetDefaultTracer(nil)
			if err != nil {
				t.Fatalf("traced run: %v", err)
			}

			if hashColors(traced.Colors) != hashColors(plain.Colors) {
				t.Fatalf("tracing changed the coloring: %#x vs %#x", hashColors(traced.Colors), hashColors(plain.Colors))
			}
			if traced.Rounds != plain.Rounds || traced.Repairs != plain.Repairs || traced.RepairBatches != plain.RepairBatches {
				t.Fatalf("tracing changed accounting: rounds %d/%d repairs %d/%d batches %d/%d",
					traced.Rounds, plain.Rounds, traced.Repairs, plain.Repairs, traced.RepairBatches, plain.RepairBatches)
			}
			if phaseString(traced.Phases) != phaseString(plain.Phases) {
				t.Fatalf("tracing changed phases:\ntraced %s\nplain  %s", phaseString(traced.Phases), phaseString(plain.Phases))
			}

			// The traced run must additionally expose the timeline: a root
			// span whose rolled-up rounds equal the run's total, and engine
			// counters that actually observed the pipelines' networks.
			if traced.Span == nil {
				t.Fatalf("traced run returned no span")
			}
			if traced.Span.Rounds != traced.Rounds {
				t.Fatalf("span rollup %d rounds != result %d", traced.Span.Rounds, traced.Rounds)
			}
			if len(traced.Span.Children) == 0 {
				t.Fatalf("root span has no children")
			}
			c := tr.Counters()
			if c.Runs == 0 || c.Rounds == 0 || c.Messages() == 0 {
				t.Fatalf("tracer observed nothing: %+v", c)
			}
			snap := deltacolor.TakeSnapshot(tr, traced)
			if snap.Colorings != 1 || snap.Engine.Rounds != c.Rounds || snap.RepairBatches != int64(traced.RepairBatches) {
				t.Fatalf("snapshot = %+v", snap)
			}
		})
	}
}
