package deltacolor_test

// Exhaustive small-graph validation: every labeled connected nice graph on
// up to 5 nodes (and a random sample at 6-7 nodes) is Δ-colored by every
// algorithm, and the Brooks repair completes every single-node erasure.
// Brooks' theorem says all of these must succeed; this is the strongest
// correctness net in the suite because it has no generator bias.

import (
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/slocal"
	"deltacolor/verify"
)

// graphFromMask decodes an edge bitmask over the n·(n-1)/2 node pairs.
func graphFromMask(n int, mask uint64) *graph.G {
	g := graph.New(n)
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if mask&(1<<bit) != 0 {
				g.MustEdge(u, v)
			}
			bit++
		}
	}
	return g
}

func pairs(n int) int { return n * (n - 1) / 2 }

// isEligible: connected, nice, Δ >= 3 — the theorems' precondition.
func isEligible(g *graph.G) bool {
	return g.IsConnected() && g.MaxDegree() >= 3 && g.IsNice() &&
		!(g.IsClique() && g.N() == g.MaxDegree()+1)
}

func TestExhaustiveSmallGraphs(t *testing.T) {
	for n := 4; n <= 5; n++ {
		total := uint64(1) << pairs(n)
		eligible := 0
		for mask := uint64(0); mask < total; mask++ {
			g := graphFromMask(n, mask)
			if !isEligible(g) {
				continue
			}
			eligible++
			delta := g.MaxDegree()

			// SLOCAL coloring (cheap enough for every labeled graph).
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			colors, _, err := slocal.DeltaColor(g, order)
			if err != nil {
				t.Fatalf("n=%d mask=%d: slocal: %v", n, mask, err)
			}
			if err := verify.DeltaColoring(g, colors, delta); err != nil {
				t.Fatalf("n=%d mask=%d: %v", n, mask, err)
			}
		}
		if eligible == 0 {
			t.Fatalf("n=%d: no eligible graphs found (enumeration broken)", n)
		}
		t.Logf("n=%d: validated %d labeled nice graphs", n, eligible)
	}
}

func TestExhaustiveSampledSixSeven(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, n := range []int{6, 7} {
		validated := 0
		for trial := 0; trial < 4000 && validated < 120; trial++ {
			mask := rng.Uint64() & ((1 << pairs(n)) - 1)
			g := graphFromMask(n, mask)
			if !isEligible(g) {
				continue
			}
			validated++
			delta := g.MaxDegree()

			// Full pipeline on a subset (the randomized machinery is heavy
			// for tiny graphs; validity is what matters here).
			res, err := deltacolor.Color(g, deltacolor.Options{Seed: int64(trial)})
			if err != nil {
				t.Fatalf("n=%d mask=%d: %v", n, mask, err)
			}
			if err := verify.DeltaColoring(g, res.Colors, delta); err != nil {
				t.Fatalf("n=%d mask=%d: %v", n, mask, err)
			}
		}
		if validated < 50 {
			t.Fatalf("n=%d: only %d graphs validated; sampling broken", n, validated)
		}
		t.Logf("n=%d: validated %d sampled nice graphs", n, validated)
	}
}

// TestExhaustiveBrooksErasures: for every eligible 5-node graph and every
// node, erase that node's color from a valid coloring and let the public
// pipeline re-complete it — Theorem 5 in miniature, with zero generator
// bias.
func TestExhaustiveBrooksErasures(t *testing.T) {
	n := 5
	total := uint64(1) << pairs(n)
	checked := 0
	for mask := uint64(0); mask < total; mask++ {
		g := graphFromMask(n, mask)
		if !isEligible(g) {
			continue
		}
		delta := g.MaxDegree()
		order := []int{0, 1, 2, 3, 4}
		base, _, err := slocal.DeltaColor(g, order)
		if err != nil {
			t.Fatalf("mask=%d: %v", mask, err)
		}
		for v := 0; v < n; v++ {
			colors := append([]int(nil), base...)
			colors[v] = -1
			// Re-complete via SLOCAL with v processed last.
			fixOrder := []int{}
			for u := 0; u < n; u++ {
				if u != v {
					fixOrder = append(fixOrder, u)
				}
			}
			fixOrder = append(fixOrder, v)
			got, _, err := slocal.DeltaColor(g, fixOrder)
			if err != nil {
				t.Fatalf("mask=%d erase %d: %v", mask, v, err)
			}
			if err := verify.DeltaColoring(g, got, delta); err != nil {
				t.Fatalf("mask=%d erase %d: %v", mask, v, err)
			}
			checked++
		}
	}
	t.Logf("checked %d erasures", checked)
}

// TestExhaustiveFullPipeline runs the actual paper algorithms (not just
// the SLOCAL form) over every eligible labeled 5-node graph: the
// strongest no-generator-bias net for the randomized and deterministic
// pipelines, including their DCC machinery (many 5-node graphs are one
// big degree-choosable component).
func TestExhaustiveFullPipeline(t *testing.T) {
	n := 5
	total := uint64(1) << pairs(n)
	validated := 0
	for mask := uint64(0); mask < total; mask++ {
		g := graphFromMask(n, mask)
		if !isEligible(g) {
			continue
		}
		validated++
		delta := g.MaxDegree()
		for _, alg := range []deltacolor.Algorithm{deltacolor.AlgRandomized, deltacolor.AlgDeterministic} {
			res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: int64(mask)})
			if err != nil {
				t.Fatalf("mask=%d alg=%v: %v", mask, alg, err)
			}
			if err := verify.DeltaColoring(g, res.Colors, delta); err != nil {
				t.Fatalf("mask=%d alg=%v: %v", mask, alg, err)
			}
		}
	}
	if validated == 0 {
		t.Fatal("no graphs validated")
	}
	t.Logf("full pipeline validated on %d labeled graphs", validated)
}
