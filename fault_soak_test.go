package deltacolor_test

// Fault-injection soak: a time-bounded randomized stress loop mixing
// fault schedules, live churn and incremental recovery, asserting the
// two invariants the robustness layer promises — every outcome is either
// a verified coloring or an error wrapping ErrUnrecoverable, and a
// healed coloring always passes verification. Intended to run under
// -race in CI (see the workflow's soak step); skipped in -short.

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/local"
	"deltacolor/verify"
)

// soakBudget bounds the soak's wall time; the loop stops starting new
// iterations once it is spent, so the test stays ~30s even under -race.
const soakBudget = 20 * time.Second

func TestFaultChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	rng := rand.New(rand.NewSource(0xdecade))
	deadline := time.Now().Add(soakBudget)
	iters, healed, unrecoverable := 0, 0, 0
	for time.Now().Before(deadline) {
		iters++
		n, d := 64+32*rng.Intn(4), 3+rng.Intn(3)
		g := gen.MustRandomRegular(rng, n, d)
		plan := &local.FaultPlan{
			Seed:       rng.Int63(),
			DropProb:   0.08 * rng.Float64(),
			DupProb:    0.1 * rng.Float64(),
			DelayProb:  0.1 * rng.Float64(),
			MaxDelay:   1 + rng.Intn(4),
			FromRound:  1 + rng.Intn(5),
			ToRound:    20 + rng.Intn(80),
			RoundLimit: 30_000,
		}
		for c := rng.Intn(3); c > 0; c-- {
			from := 1 + rng.Intn(10)
			plan.Crashes = append(plan.Crashes, local.CrashWindow{
				Node: rng.Intn(n), From: from, To: from + 1 + rng.Intn(25),
			})
		}
		opts := deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: rng.Int63()}
		res, _, err := deltacolor.ColorUnderFaults(g, opts, plan)
		if err != nil {
			if !errors.Is(err, deltacolor.ErrUnrecoverable) {
				t.Fatalf("iter %d: untyped fault error: %v", iters, err)
			}
			unrecoverable++
			continue
		}
		if verr := verify.DeltaColoring(g, res.Colors, res.Delta); verr != nil {
			t.Fatalf("iter %d: nil error but invalid coloring: %v", iters, verr)
		}
		healed++

		// Follow up with live churn on a network over the same graph and
		// an incremental repair — the coloring-as-a-service loop.
		net := local.NewNetwork(g, 4)
		colors := res.Colors
		for k := 0; k < 6; k++ {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) {
				if err := net.AddEdge(u, v); err != nil {
					t.Fatalf("iter %d: churn insert: %v", iters, err)
				}
			}
		}
		nv := net.AddNode()
		for k := 0; k < 2; k++ {
			if u := rng.Intn(nv); !g.HasEdge(nv, u) {
				if err := net.AddEdge(nv, u); err != nil {
					t.Fatalf("iter %d: churn wire: %v", iters, err)
				}
			}
		}
		colors = append(colors, -1)
		delta := g.MaxDegree()
		if _, err := deltacolor.Recolor(g, colors, delta, rng.Int63()); err != nil {
			if !errors.Is(err, deltacolor.ErrUnrecoverable) {
				t.Fatalf("iter %d: untyped recolor error: %v", iters, err)
			}
			unrecoverable++
			continue
		}
		if verr := verify.DeltaColoring(g, colors, delta); verr != nil {
			t.Fatalf("iter %d: post-churn recolor invalid: %v", iters, verr)
		}
	}
	t.Logf("soak: %d iterations, %d healed, %d unrecoverable", iters, healed, unrecoverable)
	if healed == 0 {
		t.Fatal("soak never healed a run — fault magnitudes drowned the signal")
	}
}
