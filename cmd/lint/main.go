// Command lint runs the project's invariant analyzers (see
// internal/analysis) over the module and exits nonzero on any finding.
// CI runs it as a hard gate next to go vet:
//
//	go run ./cmd/lint ./...
//
// Patterns follow go-list shape: "./..." walks the whole module, a
// "dir/..." prefix walks a subtree, anything else is a single package
// directory. Test files are not analyzed; testdata directories are
// skipped. Findings are silenced only by an auditable waiver:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above. A waiver without a reason is
// itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"deltacolor/internal/analysis"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	modPath, err := analysis.ReadModule(root)
	if err != nil {
		fatal(err)
	}

	paths, err := expand(patterns, root, modPath)
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader(analysis.ModuleResolver(modPath, root))
	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %v\n", err)
			failed = true
			continue
		}
		for _, d := range analysis.RunAnalyzers(pkg, analysis.All()) {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: lint [packages]\n\nAnalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lint: %v\n", err)
	os.Exit(1)
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expand resolves go-list-style patterns to a sorted list of import paths.
func expand(patterns []string, root, modPath string) ([]string, error) {
	set := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			paths, err := analysis.PackagesUnder(root, root, modPath)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				set[p] = true
			}
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(strings.TrimSuffix(pat, "/..."), "./")))
			paths, err := analysis.PackagesUnder(dir, root, modPath)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				set[p] = true
			}
		default:
			dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			path, ok, err := analysis.PackageAt(dir, root, modPath)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("no Go package at %s", pat)
			}
			set[path] = true
		}
	}
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}
