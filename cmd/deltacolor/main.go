// Command deltacolor generates or loads a graph, runs a chosen Δ-coloring
// algorithm on the simulated LOCAL network, verifies the result, and
// reports the round accounting.
//
// Examples:
//
//	deltacolor -gen regular -n 1024 -d 4 -alg randomized
//	deltacolor -gen torus -rows 32 -cols 32 -alg deterministic -phases
//	deltacolor -in graph.txt -alg baseline
//	deltacolor -gen regular -n 512 -d 5 -out graph.txt -alg none
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/obs"
	"deltacolor/local"
	"deltacolor/verify"
)

func main() {
	var (
		genName = flag.String("gen", "regular", "generator: regular | torus | grid | hypercube | tree | gnp | cliquechain | gallai")
		n       = flag.Int("n", 1024, "number of nodes (regular, tree, gnp)")
		d       = flag.Int("d", 4, "degree (regular) / max degree cap (gnp)")
		rows    = flag.Int("rows", 32, "rows (torus, grid)")
		cols    = flag.Int("cols", 32, "cols (torus, grid)")
		dim     = flag.Int("dim", 5, "dimension (hypercube)")
		p       = flag.Float64("p", 0.01, "edge probability (gnp)")
		k       = flag.Int("k", 16, "number of blocks (cliquechain, gallai)")
		c       = flag.Int("c", 4, "clique size (cliquechain) / max clique (gallai)")
		algName = flag.String("alg", "auto", "algorithm: auto | randomized | deterministic | netdec | baseline | none")
		seed    = flag.Int64("seed", 1, "random seed (graph generation and algorithm)")
		inFile  = flag.String("in", "", "read graph from file instead of generating (.g6 = graph6, anything else = edge list)")
		outFile = flag.String("out", "", "write the graph to this file (.g6 = graph6, else edge list)")
		dotFile = flag.String("dot", "", "write the colored graph as Graphviz DOT to this file")
		jsonOut = flag.Bool("json", false, "print the result as JSON (colors, rounds, phases) instead of the summary line")
		stats   = flag.Bool("stats", false, "print graph statistics (degree histogram, girth, diameter)")
		phases  = flag.Bool("phases", false, "print per-phase round accounting")
		quiet   = flag.Bool("q", false, "print only the summary line")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event file (open in ui.perfetto.dev) to this path")
		traceJSONL = flag.String("tracejsonl", "", "write the trace as compact JSONL to this path")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	tracer := local.TraceOff
	if *traceOut != "" || *traceJSONL != "" {
		tracer = local.TraceFull
	}
	tr := obs.InstallTracer(tracer)

	g, err := buildGraph(*inFile, *genName, *n, *d, *rows, *cols, *dim, *p, *k, *c, *seed)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	}
	if *stats {
		printStats(g)
	}

	if *outFile != "" {
		if err := writeGraph(*outFile, g); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *outFile)
		}
	}

	finishProfiles := func() {
		if err := stopCPU(); err != nil {
			fatal(err)
		}
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fatal(err)
		}
	}

	alg, run, err := parseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	if !run {
		finishProfiles()
		return
	}

	res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	finishProfiles()
	if err := obs.WriteTraces(tr, res.Span, *traceOut, *traceJSONL); err != nil {
		fatal(err)
	}
	if tr != nil && !*quiet {
		c := tr.Counters()
		fmt.Printf("trace: runs=%d engine_rounds=%d msgs=%d (int=%d boxed=%d) drops=%d\n",
			c.Runs, c.Rounds, c.Messages(), c.IntMessages, c.BoxedMessages, c.Drops)
	}
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		fatal(fmt.Errorf("result failed verification: %w", err))
	}
	if *jsonOut {
		if err := printJSON(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("ok alg=%s Δ=%d colors_used=%d rounds=%d repairs=%d\n",
			res.Algorithm, res.Delta, verify.CountColors(res.Colors), res.Rounds, res.Repairs)
	}
	if *phases {
		for _, ph := range res.Phases {
			fmt.Printf("  %-24s %6d rounds\n", ph.Name, ph.Rounds)
		}
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteDOT(f, g, res.Colors); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("wrote %s (render: dot -Tsvg %s > out.svg)\n", *dotFile, *dotFile)
		}
	}
}

// printJSON renders the result as a single machine-readable object.
func printJSON(res *deltacolor.Result) error {
	type phase struct {
		Name   string `json:"name"`
		Rounds int    `json:"rounds"`
	}
	out := struct {
		Algorithm string  `json:"algorithm"`
		Delta     int     `json:"delta"`
		Rounds    int     `json:"rounds"`
		Repairs   int     `json:"repairs"`
		Phases    []phase `json:"phases"`
		Colors    []int   `json:"colors"`
	}{
		Algorithm: res.Algorithm.String(),
		Delta:     res.Delta,
		Rounds:    res.Rounds,
		Repairs:   res.Repairs,
		Colors:    res.Colors,
	}
	for _, p := range res.Phases {
		out.Phases = append(out.Phases, phase{p.Name, p.Rounds})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printStats prints the degree histogram and (for graphs small enough to
// afford all-pairs BFS) girth and diameter.
func printStats(g *graph.G) {
	hist := map[int]int{}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		hist[g.Deg(v)]++
		if g.Deg(v) > maxDeg {
			maxDeg = g.Deg(v)
		}
	}
	fmt.Println("degree histogram:")
	for d := 0; d <= maxDeg; d++ {
		if hist[d] > 0 {
			fmt.Printf("  deg %2d: %d nodes\n", d, hist[d])
		}
	}
	if g.N() <= 4096 {
		fmt.Printf("girth: %d, diameter: %d, connected: %v\n", g.Girth(), g.Diameter(), g.IsConnected())
	} else {
		fmt.Println("girth/diameter: skipped (n > 4096)")
	}
}

// writeGraph writes g to path, choosing the format by extension.
func writeGraph(path string, g *graph.G) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".g6") {
		s, err := graph.ToGraph6(g)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(f, s)
		return err
	}
	return graph.WriteEdgeList(f, g)
}

func buildGraph(inFile, genName string, n, d, rows, cols, dim int, p float64, k, c int, seed int64) (*graph.G, error) {
	if inFile != "" {
		if strings.HasSuffix(inFile, ".g6") {
			data, err := os.ReadFile(inFile)
			if err != nil {
				return nil, err
			}
			return graph.FromGraph6(strings.TrimSpace(string(data)))
		}
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	rng := rand.New(rand.NewSource(seed))
	switch genName {
	case "regular":
		return gen.RandomRegular(rng, n, d)
	case "torus":
		return gen.Torus(rows, cols), nil
	case "grid":
		return gen.Grid(rows, cols), nil
	case "hypercube":
		return gen.Hypercube(dim), nil
	case "tree":
		return gen.RandomTree(rng, n), nil
	case "gnp":
		return gen.GNPMaxDeg(rng, n, p, d), nil
	case "cliquechain":
		// Flag semantics: -k blocks of size -c (CliqueChain takes size first).
		return gen.CliqueChain(c, k), nil
	case "gallai":
		return gen.GallaiTree(rng, k, c), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}

func parseAlg(name string) (deltacolor.Algorithm, bool, error) {
	switch name {
	case "auto":
		return deltacolor.AlgAuto, true, nil
	case "randomized":
		return deltacolor.AlgRandomized, true, nil
	case "deterministic":
		return deltacolor.AlgDeterministic, true, nil
	case "netdec":
		return deltacolor.AlgNetDec, true, nil
	case "baseline":
		return deltacolor.AlgBaseline, true, nil
	case "none":
		return 0, false, nil
	default:
		return 0, false, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deltacolor:", err)
	os.Exit(1)
}
