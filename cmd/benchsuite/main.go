// Command benchsuite runs the experiment suite E1–E16 (DESIGN.md §4) at
// full scale and prints every table as markdown — the exact content
// EXPERIMENTS.md records. Use -quick for a smoke-scale pass and -only to
// select individual experiments. -strict turns any message staged for a
// halted neighbor into a hard failure (dead-send regression gate). E12 is
// the runtime-throughput benchmark; -runtimejson additionally serializes
// its report (BENCH_runtime.json), and -baseline compares the fresh E12
// numbers against a checked-in report, failing on a rounds/s regression
// beyond -maxregress at the largest common scale. -mpbaseline is the
// scheduler's parallel-speedup gate: the fresh rr4 multi-worker sweep
// must not be slower (beyond -mpmargin) than the single-worker rr4
// rounds/s recorded in the given report — CI runs E12 once at
// GOMAXPROCS=1 and once at GOMAXPROCS=4 and feeds the first run's JSON
// to the second. E14 is the
// cache-locality relabeling ablation; -localityjson serializes its report
// (BENCH_locality.json), and under -strict the run fails if relabeling on
// delivers fewer rr4 rounds/s than relabeling off at the largest n. E15 is
// the tracer-overhead measurement; -overheadjson serializes its report
// (BENCH_overhead.json), and under -strict the run fails if full tracing
// costs more than 10% throughput. E16 is the churn/fault-recovery
// comparison; -churnjson serializes its report (BENCH_churn.json), and
// under -strict the run fails unless incremental Recolor beats the full
// pipeline on rounds and wall time at the largest n and at least one
// fault plan heals. -cpuprofile/-memprofile write pprof profiles of the
// suite itself.
//
//	go run ./cmd/benchsuite                  # full suite (minutes)
//	go run ./cmd/benchsuite -quick           # smoke scale (seconds)
//	go run ./cmd/benchsuite -quick -strict   # + dead-send regression gate
//	go run ./cmd/benchsuite -only E4,E6      # a subset
//	go run ./cmd/benchsuite -only E12 -runtimejson BENCH_runtime.json
//	go run ./cmd/benchsuite -quick -only E12 -baseline BENCH_runtime.json
//	go run ./cmd/benchsuite -quick -strict -only E14 -localityjson BENCH_locality_quick.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"deltacolor/internal/exp"
	"deltacolor/internal/obs"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run at smoke scale")
		seed       = flag.Int64("seed", 1, "experiment seed")
		only       = flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E6); empty = all")
		csvOut     = flag.Bool("csv", false, "emit CSV instead of markdown (notes omitted)")
		rtJSON     = flag.String("runtimejson", "", "write the E12 runtime report to this path (implies running E12)")
		locJSON    = flag.String("localityjson", "", "write the E14 locality report to this path (implies running E14)")
		strict     = flag.Bool("strict", false, "fail hard on dead sends (messages staged for halted neighbors)")
		baseline   = flag.String("baseline", "", "compare the E12 report against this baseline JSON (implies running E12)")
		maxRegress = flag.Float64("maxregress", 0.30, "max tolerated rounds/s regression vs -baseline (fraction)")
		mpBaseline = flag.String("mpbaseline", "", "multi-worker gate: the fresh E12 rr4 sweep must not be slower than this report's single-worker rr4 rounds/s (implies running E12)")
		mpMargin   = flag.Float64("mpmargin", 0.25, "noise margin for -mpbaseline (fraction)")
		ovhJSON    = flag.String("overheadjson", "", "write the E15 tracer-overhead report to this path (implies running E15)")
		churnJSON  = flag.String("churnjson", "", "write the E16 churn/fault-recovery report to this path (implies running E16)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the suite to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile at suite end to this path")
	)
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	runners := []struct {
		id string
		f  func(exp.Config) *exp.Table
	}{
		{"E1", exp.E1SmallDelta},
		{"E2", exp.E2LargeDelta},
		{"E3", exp.E3Deterministic},
		{"E4", exp.E4Baseline},
		{"E5", exp.E5Expansion},
		{"E6", exp.E6Shattering},
		{"E7", exp.E7Brooks},
		{"E7B", exp.E7Adversarial},
		{"E8", exp.E8NetDec},
		{"E9", exp.E9Structure},
		{"E10", exp.E10Ablations},
		{"E11", exp.E11Congest},
		{"E13", exp.E13RepairTail},
	}

	cfg := exp.Config{Quick: *quick, Seed: *seed, Strict: *strict}
	start := time.Now()
	ran := 0
	emit := func(id string, table *exp.Table, t0 time.Time) {
		if *csvOut {
			fmt.Printf("# %s — %s\n", table.ID, table.Title)
			if err := table.CSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		} else {
			table.Markdown(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t0 := time.Now()
		emit(r.id, r.f(cfg), t0)
	}
	// E12 runs once even when selected, exported as JSON and/or compared.
	if len(want) == 0 || want["E12"] || *rtJSON != "" || *baseline != "" || *mpBaseline != "" {
		t0 := time.Now()
		rep := exp.RuntimeThroughput(cfg)
		emit("E12", rep.Table(), t0)
		if *baseline != "" {
			f, err := os.Open(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
				os.Exit(1)
			}
			base, err := exp.ReadRuntimeReport(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
				os.Exit(1)
			}
			if err := exp.CompareRuntime(rep, base, *maxRegress); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchmark delta vs %s OK (tolerance -%.0f%%)\n", *baseline, *maxRegress*100)
		}
		if *mpBaseline != "" {
			f, err := os.Open(*mpBaseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpbaseline: %v\n", err)
				os.Exit(1)
			}
			base, err := exp.ReadRuntimeReport(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpbaseline: %v\n", err)
				os.Exit(1)
			}
			if err := exp.CompareMultiWorker(rep, base, *mpMargin); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "multi-worker gate vs %s OK (margin -%.0f%%)\n", *mpBaseline, *mpMargin*100)
		}
		writeReport(*rtJSON, "runtimejson", rep)
	}
	// E14 follows the E12 pattern: run once when selected, optionally
	// serialized, and gated under -strict (relabeling on must not lose to
	// the ablation on rr4 at the largest measured n).
	if len(want) == 0 || want["E14"] || *locJSON != "" {
		t0 := time.Now()
		rep := exp.LocalityAblation(cfg)
		emit("E14", rep.Table(), t0)
		if *strict {
			if err := exp.LocalityGate(rep); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "locality gate OK (relabel-on >= relabel-off on rr4)")
		}
		writeReport(*locJSON, "localityjson", rep)
	}
	// E15 mirrors E14: run once when selected, optionally serialized, and
	// gated under -strict (full tracing must cost <= 10% throughput).
	if len(want) == 0 || want["E15"] || *ovhJSON != "" {
		t0 := time.Now()
		rep := exp.TracerOverhead(cfg)
		emit("E15", rep.Table(), t0)
		if *strict {
			if err := exp.OverheadGate(rep); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "tracer overhead gate OK (full tracing <= 10% cost)")
		}
		writeReport(*ovhJSON, "overheadjson", rep)
	}
	// E16 mirrors E14/E15: run once when selected, optionally serialized,
	// and gated under -strict (incremental Recolor must beat the full
	// pipeline on rounds and wall time at the largest n, and at least one
	// fault plan must heal to a verified coloring).
	if len(want) == 0 || want["E16"] || *churnJSON != "" {
		t0 := time.Now()
		rep := exp.ChurnRecovery(cfg)
		emit("E16", rep.Table(), t0)
		if *strict {
			if err := exp.ChurnGate(rep); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "churn gate OK (incremental recolor wins; faults heal)")
		}
		writeReport(*churnJSON, "churnjson", rep)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%q\n", *only)
		os.Exit(1)
	}
	if err := stopCPU(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
		os.Exit(1)
	}
	if err := obs.WriteHeapProfile(*memProfile); err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "suite done in %v\n", time.Since(start).Round(time.Millisecond))
}

// writeReport serializes an experiment report to path (a no-op when the
// flag was not given); any failure is fatal under the flag's name.
func writeReport(path, flagName string, rep interface{ WriteJSON(io.Writer) error }) {
	if path == "" {
		return
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flagName, err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
