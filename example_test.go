package deltacolor_test

import (
	"fmt"
	"math/rand"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

// The smallest complete use of the library: generate a nice graph, color
// it with Δ colors, verify.
func ExampleColor() {
	rng := rand.New(rand.NewSource(1))
	g := gen.MustRandomRegular(rng, 64, 4)

	res, err := deltacolor.Color(g, deltacolor.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		panic(err)
	}
	fmt.Println("colors used:", verify.CountColors(res.Colors), "of Δ =", res.Delta)
	// Output: colors used: 4 of Δ = 4
}

// Brooks' theorem excludes exactly two families; the API reports them as
// typed errors.
func ExampleColor_preconditions() {
	_, err := deltacolor.Color(gen.Complete(5), deltacolor.Options{})
	fmt.Println(err != nil)

	_, err = deltacolor.Color(gen.Cycle(7), deltacolor.Options{})
	fmt.Println(err != nil)
	// Output:
	// true
	// true
}

// Algorithms are selectable; all return per-phase round accounting.
func ExampleOptions() {
	g := gen.Torus(8, 8)
	res, err := deltacolor.Color(g, deltacolor.Options{
		Algorithm: deltacolor.AlgDeterministic,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Algorithm, res.Delta, res.Rounds > 0, len(res.Phases) > 0)
	// Output: deterministic 4 true true
}
