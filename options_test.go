package deltacolor_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
)

func TestColorRejectsBadOptions(t *testing.T) {
	g := gen.MustRandomRegular(rand.New(rand.NewSource(1)), 64, 4)
	cases := []struct {
		name  string
		opts  deltacolor.Options
		field string
	}{
		{"negative R", deltacolor.Options{R: -1}, "R"},
		{"negative backoff", deltacolor.Options{Backoff: -3}, "Backoff"},
		{"negative P", deltacolor.Options{P: -0.5}, "P"},
		{"P above one", deltacolor.Options{P: 1.5}, "P"},
		{"NaN P", deltacolor.Options{P: math.NaN()}, "P"},
		{"+Inf P", deltacolor.Options{P: math.Inf(1)}, "P"},
		{"-Inf P", deltacolor.Options{P: math.Inf(-1)}, "P"},
		{"bad options on deterministic too", deltacolor.Options{Algorithm: deltacolor.AlgDeterministic, R: -7}, "R"},
		{"unknown algorithm", deltacolor.Options{Algorithm: deltacolor.Algorithm(99)}, "Algorithm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := deltacolor.Color(g, tc.opts)
			if err == nil {
				t.Fatalf("Color accepted %+v (res=%v)", tc.opts, res)
			}
			if !errors.Is(err, deltacolor.ErrBadOptions) {
				t.Fatalf("err = %v, want ErrBadOptions", err)
			}
			var oe *deltacolor.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("err = %T, want *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("err field = %q, want %q", oe.Field, tc.field)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error message %q does not name the field", err)
			}
			if tc.field == "P" && !strings.Contains(err.Error(), "[0, 1]") {
				// The accepted set is [0, 1] (0 = auto); the message must
				// say so instead of the old contradictory "(0, 1]".
				t.Fatalf("P error message %q does not state the closed bounds [0, 1]", err)
			}
		})
	}
}

func TestColorAcceptsZeroAndValidOptions(t *testing.T) {
	g := gen.MustRandomRegular(rand.New(rand.NewSource(2)), 64, 4)
	for _, opts := range []deltacolor.Options{
		{Seed: 1}, // P = 0 is the documented auto value and must pass
		{Seed: 1, R: 2, Backoff: 4, P: 0.25},
		{Seed: 1, P: 1},
	} {
		res, err := deltacolor.Color(g, opts)
		if err != nil {
			t.Fatalf("Color rejected valid options %+v: %v", opts, err)
		}
		if len(res.Colors) != 64 {
			t.Fatalf("bad result for %+v", opts)
		}
	}
}
