package brooks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

// greedyAllBut colors every node except v greedily with delta colors using
// the Brooks slack heuristic: process nodes by decreasing BFS distance
// from v, so every processed node has an unprocessed neighbor (towards v)
// and therefore a free color among delta.
func greedyAllBut(t *testing.T, g *graph.G, v, delta int) []int {
	t.Helper()
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	res := g.BFS(v)
	order := append([]int(nil), res.Order...)
	// Reverse BFS order: farthest first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for _, u := range order {
		if u == v {
			continue
		}
		used := make([]bool, delta)
		for _, w := range g.Neighbors(u) {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := -1
		for x := 0; x < delta; x++ {
			if !used[x] {
				c = x
				break
			}
		}
		if c < 0 {
			t.Fatalf("greedy setup failed at node %d", u)
		}
		colors[u] = c
	}
	return colors
}

func TestSearchRadius(t *testing.T) {
	if r := SearchRadius(1024, 4); r <= 0 {
		t.Fatal("positive radius expected")
	}
	if SearchRadius(10, 2) != 1 || SearchRadius(1, 5) != 1 {
		t.Fatal("degenerate inputs")
	}
	// Monotone in n.
	if SearchRadius(1<<20, 4) < SearchRadius(1<<10, 4) {
		t.Fatal("radius should grow with n")
	}
}

func TestFixOneFreeColor(t *testing.T) {
	// Star K1,3 with Δ=3: center uncolored, leaves all color 0 -> center
	// has a free color immediately.
	g := graph.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(0, 3)
	partial := []int{-1, 0, 0, 0}
	res, err := FixOne(g, partial, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFree || res.Colors[0] == 0 {
		t.Fatalf("mode=%v color=%d", res.Mode, res.Colors[0])
	}
	if err := verify.DeltaColoring(g, res.Colors, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFixOneAlreadyColoredErrors(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := FixOne(g, []int{0, 1, 0, 1}, 0, 3); err == nil {
		t.Fatal("want error for colored node")
	}
}

func TestFixOneOnRandomRegular(t *testing.T) {
	for _, d := range []int{3, 4, 5} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed*10 + int64(d)))
			g, err := gen.RandomRegular(rng, 64, d)
			if err != nil {
				t.Fatal(err)
			}
			v := rng.Intn(64)
			partial := greedyAllBut(t, g, v, d)
			res, err := FixOne(g, partial, v, d)
			if err != nil {
				t.Fatalf("d=%d seed=%d: %v", d, seed, err)
			}
			if err := verify.DeltaColoring(g, res.Colors, d); err != nil {
				t.Fatalf("d=%d seed=%d: %v", d, seed, err)
			}
			bound := SearchRadius(64, d)
			if res.Radius > 3*bound {
				t.Fatalf("radius %d exceeds 3x bound %d", res.Radius, bound)
			}
		}
	}
}

func TestFixOneRadiusWithinTheorem5Bound(t *testing.T) {
	// Theorem 5: recoloring confined to the 2·log_{Δ-1} n neighborhood.
	// Our implementation may extend by the DCC diameter; assert <= 3x.
	rng := rand.New(rand.NewSource(99))
	g, err := gen.RandomRegular(rng, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	bound := SearchRadius(512, 4)
	for trial := 0; trial < 10; trial++ {
		v := rng.Intn(512)
		partial := greedyAllBut(t, g, v, 4)
		res, err := FixOne(g, partial, v, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Radius > 3*bound {
			t.Fatalf("trial %d: radius %d > 3*%d", trial, res.Radius, bound)
		}
		if err := verify.DeltaColoring(g, res.Colors, 4); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFixOneLowDegreeEscape(t *testing.T) {
	// A 3-regular-ish graph with one degree-2 node: the token can always
	// escape to it.
	g := gen.Grid(4, 4) // corners have degree 2
	delta := g.MaxDegree()
	v := 5 // interior node
	partial := greedyAllBut(t, g, v, delta)
	res, err := FixOne(g, partial, v, delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, res.Colors, delta); err != nil {
		t.Fatal(err)
	}
}

func TestFixOneInputNotMutated(t *testing.T) {
	g := gen.Hypercube(3)
	v := 0
	partial := greedyAllBut(t, g, v, 3)
	snapshot := append([]int(nil), partial...)
	if _, err := FixOne(g, partial, v, 3); err != nil {
		t.Fatal(err)
	}
	for i := range partial {
		if partial[i] != snapshot[i] {
			t.Fatal("FixOne mutated its input")
		}
	}
}

// Property: FixOne completes arbitrary greedy partial colorings on random
// regular graphs, never using color >= Δ.
func TestFixOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + 2*rng.Intn(30)
		d := 3 + rng.Intn(3)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return true // skip rare sampling failure
		}
		v := rng.Intn(n)
		colors := make([]int, n)
		for i := range colors {
			colors[i] = -1
		}
		res := g.BFS(v)
		order := append([]int(nil), res.Order...)
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		for _, u := range order {
			if u == v {
				continue
			}
			used := make([]bool, d)
			for _, w := range g.Neighbors(u) {
				if c := colors[w]; c >= 0 {
					used[c] = true
				}
			}
			c := -1
			for x := 0; x < d; x++ {
				if !used[x] {
					c = x
					break
				}
			}
			if c < 0 {
				return true // greedy setup impossible; skip
			}
			colors[u] = c
		}
		out, err := FixOne(g, colors, v, d)
		if err != nil {
			return false
		}
		return verify.DeltaColoring(g, out.Colors, d) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeFree.String() != "free" || ModeDCC.String() != "dcc" ||
		ModeLowDegree.String() != "low-degree" || ModeFallback.String() != "fallback" {
		t.Fatal("mode strings")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
