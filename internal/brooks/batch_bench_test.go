package brooks

import (
	"testing"

	"deltacolor/graph"
)

// benchHoleRuns punches horizontal runs of adjacent holes into a grid
// checkerboard: adjacent holes always conflict in the scheduling quotient
// (their balls touch), so each run drains over several MIS iterations —
// the exact shape where the per-iteration O(n) owner scans the
// QuotientBuilder amortizes used to dominate (holes << n, iterations > 1).
func benchHoleRuns(rows, cols, runs, runLen int) (*graph.G, []int, []int) {
	g, colors := checkerboard(rows, cols)
	var holes []int
	stride := rows / (runs + 1)
	for i := 1; i <= runs; i++ {
		r := i * stride
		for c := 2; c < 2+runLen && c < cols; c++ {
			v := r*cols + c
			colors[v] = -1
			holes = append(holes, v)
		}
	}
	return g, colors, holes
}

// BenchmarkRepairHolesManySmall measures the batched repair engine on a
// 200k-node grid with 3200 holes in 200 adjacent runs. Before the shared
// QuotientBuilder, every MIS iteration rebuilt the quotient's node-indexed
// owner table from scratch — two O(n) passes against a hole set three
// orders of magnitude smaller, repeated for every iteration the adjacent
// runs force.
func BenchmarkRepairHolesManySmall(b *testing.B) {
	g, base, holes := benchHoleRuns(400, 500, 200, 16)
	colors := make([]int, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(colors, base)
		res, err := RepairHoles(g, colors, holes, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Batches)), "iterations")
		}
	}
}
