package brooks

import (
	"math/rand"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/gallai"
	"deltacolor/verify"
)

// rainbowAt recolors v's neighbors so all delta colors appear around v,
// keeping the coloring proper elsewhere. It solves the small
// color-to-neighbor assignment by backtracking (colors and neighbors both
// number at most delta). Returns success; on failure colors may be
// partially modified but stays proper away from v.
func rainbowAt(g *graph.G, colors []int, v, delta int) bool {
	nbrs := g.Neighbors(v)
	if len(nbrs) < delta {
		return false
	}
	// canTake[u][c]: recoloring u to c keeps the coloring proper (ignoring
	// v itself, which is uncolored).
	canTake := func(u, c int) bool {
		for _, w := range g.Neighbors(u) {
			if w != v && colors[w] == c {
				return false
			}
		}
		// u's own neighbors among nbrs will be reassigned too; handled by
		// the assignment check below (pairwise distinctness suffices only
		// if adjacent neighbors get distinct colors, which backtracking
		// enforces via the evolving colors array).
		return true
	}
	assigned := make([]int, len(nbrs)) // neighbor index -> color, -1 unset
	for i := range assigned {
		assigned[i] = -1
	}
	orig := make([]int, len(nbrs))
	for i, u := range nbrs {
		orig[i] = colors[u]
	}
	var place func(c int) bool
	place = func(c int) bool {
		if c >= delta {
			return true
		}
		for i, u := range nbrs {
			if assigned[i] >= 0 {
				continue
			}
			if !canTake(u, c) {
				continue
			}
			assigned[i] = c
			old := colors[u]
			colors[u] = c
			if place(c + 1) {
				return true
			}
			colors[u] = old
			assigned[i] = -1
		}
		return false
	}
	if !place(0) {
		// Restore.
		for i, u := range nbrs {
			colors[u] = orig[i]
		}
		return false
	}
	return true
}

// validColoring builds a proper delta-coloring greedily with local repair
// via FixOne — for use as a test fixture.
func validColoring(t *testing.T, g *graph.G, delta int) []int {
	t.Helper()
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = -1
	}
	for v := 0; v < g.N(); v++ {
		if c := freeColor(g, colors, v, delta); c >= 0 {
			colors[v] = c
			continue
		}
		res, err := FixOne(g, colors, v, delta)
		if err != nil {
			t.Fatalf("fixture coloring at %d: %v", v, err)
		}
		copy(colors, res.Colors)
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return colors
}

// stuckInstance builds a proper partial delta-coloring of g where v is
// uncolored and its neighbors hold all delta colors, by brute-forcing the
// rest of the graph against forced singleton lists on N(v). Returns nil
// when no such coloring exists (e.g. bipartite rigidity).
func stuckInstance(t *testing.T, g *graph.G, v, delta int) []int {
	t.Helper()
	if g.Deg(v) < delta {
		return nil
	}
	var nodes []int
	for u := 0; u < g.N(); u++ {
		if u != v {
			nodes = append(nodes, u)
		}
	}
	lists := map[int][]int{}
	for _, u := range nodes {
		lists[u] = []int{}
		for c := 0; c < delta; c++ {
			lists[u] = append(lists[u], c)
		}
	}
	for i, u := range g.Neighbors(v) {
		if i >= delta {
			break
		}
		lists[u] = []int{i}
	}
	empty := make([]int, g.N())
	for i := range empty {
		empty[i] = -1
	}
	sol, err := gallai.BruteListColor(g, nodes, lists)
	if err != nil {
		return nil
	}
	colors := append([]int(nil), empty...)
	for u, c := range sol {
		colors[u] = c
	}
	if err := verify.PartialColoring(g, colors, delta); err != nil {
		t.Fatalf("stuckInstance produced improper coloring: %v", err)
	}
	return colors
}

// TestWalkForcedConstructed: constructed stuck instances (all Δ colors
// around v) must resolve via a token walk, exercising walkAndResolve.
// Bipartite graphs (torus, hypercube) admit no stuck instance — every
// neighbor of v is blocked from the opposite bipartition color — so the
// fixtures are non-bipartite: the Petersen graph and a small random
// 4-regular graph.
func TestWalkForcedConstructed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fixtures := []struct {
		name string
		g    *graph.G
	}{
		{"petersen", gen.Petersen()},
		{"random 4-regular n=20", gen.MustRandomRegular(rng, 20, 4)},
		{"random 3-regular n=14", gen.MustRandomRegular(rng, 14, 3)},
	}
	for _, f := range fixtures {
		t.Run(f.name, func(t *testing.T) {
			delta := f.g.MaxDegree()
			var colors []int
			v := -1
			for cand := 0; cand < f.g.N(); cand++ {
				if colors = stuckInstance(t, f.g, cand, delta); colors != nil {
					v = cand
					break
				}
			}
			if v < 0 {
				t.Skip("no stuck instance exists on this fixture")
			}
			res, err := FixOne(f.g, colors, v, delta)
			if err != nil {
				t.Fatalf("FixOne: %v", err)
			}
			if err := verify.DeltaColoring(f.g, res.Colors, delta); err != nil {
				t.Fatalf("invalid result: %v", err)
			}
			if res.Mode == ModeFree {
				t.Fatal("instance was not stuck (mode=free)")
			}
			if res.Radius <= 0 && res.Mode != ModeFallback {
				t.Fatalf("walk radius %d, want > 0", res.Radius)
			}
		})
	}
}

// TestWalkForcedOnRegular: random regular graphs mix low-degree-free,
// DCC and fallback resolutions.
func TestWalkForcedOnRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.MustRandomRegular(rng, 256, 4)
	delta := 4
	base := validColoring(t, g, delta)

	modes := map[Mode]int{}
	for trial := 0; trial < 60; trial++ {
		v := rng.Intn(g.N())
		colors := append([]int(nil), base...)
		colors[v] = -1
		if !rainbowAt(g, colors, v, delta) {
			continue
		}
		res, err := FixOne(g, colors, v, delta)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.DeltaColoring(g, res.Colors, delta); err != nil {
			t.Fatalf("trial %d: invalid result: %v", trial, err)
		}
		modes[res.Mode]++
		// Theorem 5 bound.
		bound := 3 * SearchRadius(g.N(), delta)
		if res.Radius > bound {
			t.Fatalf("trial %d: radius %d > 3·searchRadius %d", trial, res.Radius, bound)
		}
	}
	nonFree := 0
	for m, k := range modes {
		if m != ModeFree {
			nonFree += k
		}
	}
	if nonFree == 0 {
		t.Fatal("no trial exercised the walk machinery")
	}
}

// TestWalkToLowDegreeTarget: on a graph with an explicit low-degree sink,
// a stuck node near it resolves by walking there.
func TestWalkToLowDegreeTarget(t *testing.T) {
	// A 4-regular-ish band with one node of degree 3: remove one edge of a
	// torus.
	g0 := gen.Torus(6, 6)
	edges := g0.Edges()
	g := graph.New(g0.N())
	for _, e := range edges[1:] {
		g.MustEdge(e[0], e[1])
	}
	delta := 4
	base := validColoring(t, g, delta)

	rng := rand.New(rand.NewSource(13))
	seenLow := false
	for trial := 0; trial < 80 && !seenLow; trial++ {
		v := rng.Intn(g.N())
		if g.Deg(v) < delta {
			continue
		}
		colors := append([]int(nil), base...)
		colors[v] = -1
		if !rainbowAt(g, colors, v, delta) {
			continue
		}
		res, err := FixOne(g, colors, v, delta)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.DeltaColoring(g, res.Colors, delta); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Mode == ModeLowDegree {
			seenLow = true
		}
	}
	if !seenLow {
		t.Skip("low-degree escape never selected on this fixture (DCCs were always closer)")
	}
}

// TestFallbackRecolorDirect exercises the expanding-ball fallback on a
// configuration where it must succeed at small radius.
func TestFallbackRecolorDirect(t *testing.T) {
	g := gen.Torus(5, 5)
	delta := 4
	base := validColoring(t, g, delta)
	colors := append([]int(nil), base...)
	colors[7] = -1
	res, err := fallbackRecolor(g, colors, 7, delta)
	if err != nil {
		t.Fatalf("fallback: %v", err)
	}
	if res.Mode != ModeFallback {
		t.Fatalf("mode = %v, want fallback", res.Mode)
	}
	if err := verify.DeltaColoring(g, res.Colors, delta); err != nil {
		t.Fatalf("fallback produced invalid coloring: %v", err)
	}
}

// TestDeltaListsExcludesBoundary: the fallback's list construction must
// remove exactly the colors of outside neighbors.
func TestDeltaListsExcludesBoundary(t *testing.T) {
	// Path 0-1-2, delta 3; ball = {1}, outside neighbors 0 (color 2) and
	// 2 (color 0) => list for 1 is {1}.
	g := graph.New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	colors := []int{2, -1, 0}
	lists := deltaLists(g, []int{1}, colors, 3)
	if got := lists[1]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("list = %v, want [1]", got)
	}
}
