package brooks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

// checkerboard returns the 2-coloring of a grid (proper, uses colors {0,1}
// out of Δ=4) — the cheapest possible "proper Δ-coloring" to punch holes
// into.
func checkerboard(rows, cols int) (*graph.G, []int) {
	g := gen.Grid(rows, cols)
	colors := make([]int, g.N())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			colors[r*cols+c] = (r + c) % 2
		}
	}
	return g, colors
}

// repairSequential is the pre-batching safety net: fix holes one at a time
// in ascending ID order, returning the summed rounds. Kept as the
// byte-identical reference the batch engine is compared against.
func repairSequential(t *testing.T, g *graph.G, colors []int, delta int) int {
	t.Helper()
	summed := 0
	for v := 0; v < g.N(); v++ {
		if colors[v] >= 0 {
			continue
		}
		res, err := FixOne(g, colors, v, delta)
		if err != nil {
			t.Fatalf("sequential repair of %d: %v", v, err)
		}
		copy(colors, res.Colors)
		summed += res.Rounds
	}
	return summed
}

// TestFixOneTouchWithinRadius pins the locality contract the batch engine
// schedules against: every node FixOne changes lies within distance
// Result.Radius of the repaired node.
func TestFixOneTouchWithinRadius(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + 2*rng.Intn(40)
		d := 3 + rng.Intn(3)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			continue
		}
		v := rng.Intn(n)
		partial := greedyAllBut(t, g, v, d)
		res, err := FixOne(g, partial, v, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dist, _ := g.MultiSourceDist([]int{v})
		for u := 0; u < n; u++ {
			if res.Colors[u] != partial[u] && dist[u] > res.Radius {
				t.Fatalf("seed %d: node %d at distance %d changed, radius is %d", seed, u, dist[u], res.Radius)
			}
		}
	}
}

// TestFixOneAdjacentHoles is the multi-hole regression: with two adjacent
// uncolored holes, the token procedure must resolve the first hole in
// ModeFree (an uncolored neighbor is slack, so a walk can never start, let
// alone step into the other hole) and leave the second hole untouched for
// its own repair.
func TestFixOneAdjacentHoles(t *testing.T) {
	g, colors := checkerboard(6, 6)
	delta := 4
	u, v := 14, 15 // horizontally adjacent interior cells
	if !g.HasEdge(u, v) {
		t.Fatalf("setup: %d-%d not adjacent", u, v)
	}
	colors[u], colors[v] = -1, -1

	res, err := FixOne(g, colors, u, delta)
	if err != nil {
		t.Fatalf("FixOne with adjacent hole: %v", err)
	}
	if res.Mode != ModeFree {
		t.Fatalf("mode = %v, want ModeFree (adjacent hole is slack)", res.Mode)
	}
	if res.Colors[v] != -1 {
		t.Fatalf("repairing %d colored the adjacent hole %d with %d", u, v, res.Colors[v])
	}
	if res.Colors[u] < 0 {
		t.Fatalf("hole %d left uncolored", u)
	}
	// The second hole completes against the updated coloring.
	res2, err := FixOne(g, res.Colors, v, delta)
	if err != nil {
		t.Fatalf("second hole: %v", err)
	}
	if err := verify.DeltaColoring(g, res2.Colors, delta); err != nil {
		t.Fatal(err)
	}
}

// TestFixOneAdjacentHolesDense repeats the regression where the holes have
// no slack besides each other: on a random regular graph every colored
// neighbor constrains, so the uncolored neighbor is exactly what prevents
// a walk.
func TestFixOneAdjacentHolesDense(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		g, err := gen.RandomRegular(rng, 64, 4)
		if err != nil {
			t.Fatal(err)
		}
		v := rng.Intn(64)
		partial := greedyAllBut(t, g, v, 4)
		u := g.Neighbors(v)[0]
		partial[u] = -1 // second, adjacent hole

		res, err := FixOne(g, partial, v, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Mode != ModeFree || res.Radius != 0 {
			t.Fatalf("seed %d: mode=%v radius=%d, want free at radius 0", seed, res.Mode, res.Radius)
		}
		if res.Colors[u] != -1 {
			t.Fatalf("seed %d: adjacent hole %d was touched", seed, u)
		}
	}
}

// TestRepairBatchedVsSummedAccounting is the acceptance unit test: with k
// pairwise-independent holes, the batch engine must run one batch, charge
// the max (not the sum), and produce colors byte-identical to the
// sequential safety net.
func TestRepairBatchedVsSummedAccounting(t *testing.T) {
	g, colors := checkerboard(20, 20)
	delta := 4
	var holes []int
	for r := 0; r < 20; r += 3 {
		for c := 0; c < 20; c += 3 {
			v := r*20 + c
			colors[v] = -1
			holes = append(holes, v)
		}
	}
	k := len(holes)
	if k < 10 {
		t.Fatalf("setup produced only %d holes", k)
	}

	seq := append([]int(nil), colors...)
	summed := repairSequential(t, g, seq, delta)

	res, err := Repair(g, colors, delta, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 {
		t.Fatalf("batches = %d, want 1 (holes spaced >= 3 apart, radius-0 balls)", len(res.Batches))
	}
	if res.Fixed != k {
		t.Fatalf("fixed = %d, want %d", res.Fixed, k)
	}
	if res.SummedRounds != summed {
		t.Fatalf("engine summed counterfactual %d != sequential charge %d", res.SummedRounds, summed)
	}
	// Charged rounds scale with batches (max + scheduling), not with k.
	if res.TotalRounds() >= summed {
		t.Fatalf("batched charge %d >= summed charge %d for %d independent holes", res.TotalRounds(), summed, k)
	}
	if res.Batches[0].Rounds != 1 {
		t.Fatalf("batch exec rounds = %d, want max=1 (all ModeFree)", res.Batches[0].Rounds)
	}
	for v := range colors {
		if colors[v] != seq[v] {
			t.Fatalf("node %d: batched color %d != sequential %d (independent repairs must be byte-identical)", v, colors[v], seq[v])
		}
	}
}

// TestRepairAdjacentHolesBatches: holes punched in adjacent pairs conflict
// pairwise, so the engine needs two batches — and still terminates with a
// proper coloring.
func TestRepairAdjacentHolesBatches(t *testing.T) {
	g, colors := checkerboard(12, 12)
	delta := 4
	holes := 0
	for r := 1; r < 11; r += 4 {
		for c := 1; c < 11; c += 4 {
			colors[r*12+c] = -1
			colors[r*12+c+1] = -1
			holes += 2
		}
	}
	res, err := Repair(g, colors, delta, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		t.Fatal(err)
	}
	if res.Fixed != holes {
		t.Fatalf("fixed = %d, want %d", res.Fixed, holes)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("batches = %d, want 2 (adjacent pairs conflict pairwise)", len(res.Batches))
	}
	if res.TotalRounds() >= res.SummedRounds {
		t.Fatalf("batched %d >= summed %d over %d holes", res.TotalRounds(), res.SummedRounds, holes)
	}
}

// TestRepairChangedMirror: applying the Changed list to a mirror of the
// pre-repair coloring must reproduce the engine's output exactly — the
// contract slocal's incremental bookkeeping relies on.
func TestRepairChangedMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := gen.RandomRegular(rng, 96, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := rng.Intn(96)
	colors := greedyAllBut(t, g, v, 4)
	for i := 0; i < 5; i++ {
		colors[rng.Intn(96)] = -1
	}
	mirror := append([]int(nil), colors...)

	res, err := Repair(g, colors, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed > 0 && len(res.Changed) == 0 {
		t.Fatal("empty Changed with repairs executed")
	}
	for _, u := range res.Changed {
		mirror[u] = colors[u]
	}
	for u := range colors {
		if mirror[u] != colors[u] {
			t.Fatalf("node %d changed but is missing from Changed", u)
		}
	}
}

// TestRepairHolesSkipsColoredAndDedupes: colored entries and duplicates in
// the hole list are ignored.
func TestRepairHolesSkipsColoredAndDedupes(t *testing.T) {
	g, colors := checkerboard(6, 6)
	colors[7] = -1
	res, err := RepairHoles(g, colors, []int{7, 7, 0, 35}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed != 1 {
		t.Fatalf("fixed = %d, want 1", res.Fixed)
	}
	if err := verify.DeltaColoring(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	// No holes at all: a no-op result.
	res2, err := Repair(g, colors, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fixed != 0 || len(res2.Batches) != 0 || res2.TotalRounds() != 0 {
		t.Fatalf("no-op repair produced %+v", res2)
	}
}

// TestRepairSingleHoleNoScheduling: one hole needs no MIS — zero
// scheduling rounds, identical to a bare FixOne.
func TestRepairSingleHoleNoScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := gen.RandomRegular(rng, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := rng.Intn(64)
	colors := greedyAllBut(t, g, v, 4)
	ref, err := FixOne(g, colors, v, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(g, colors, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || res.Batches[0].SchedRounds != 0 {
		t.Fatalf("single hole scheduled: %+v", res.Batches)
	}
	if res.TotalRounds() != ref.Rounds || res.SummedRounds != ref.Rounds {
		t.Fatalf("rounds %d/%d, want FixOne's %d", res.TotalRounds(), res.SummedRounds, ref.Rounds)
	}
	for u := range colors {
		if colors[u] != ref.Colors[u] {
			t.Fatalf("node %d: engine %d != FixOne %d", u, colors[u], ref.Colors[u])
		}
	}
}

// Property: the batch engine completes arbitrary hole sets on random
// regular graphs into proper Δ-colorings, deterministically per seed.
func TestRepairProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + 2*rng.Intn(30)
		d := 3 + rng.Intn(3)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return true // rare sampling failure; skip
		}
		v := rng.Intn(n)
		colors := greedyAllBut(t, g, v, d)
		for i := 0; i < 1+rng.Intn(6); i++ {
			colors[rng.Intn(n)] = -1
		}
		again := append([]int(nil), colors...)

		res, err := Repair(g, colors, d, seed)
		if err != nil {
			return false
		}
		if verify.DeltaColoring(g, colors, d) != nil {
			return false
		}
		// Determinism: same seed, same input, same everything.
		res2, err := Repair(g, again, d, seed)
		if err != nil {
			return false
		}
		if res.Fixed != res2.Fixed || res.TotalRounds() != res2.TotalRounds() {
			return false
		}
		for u := range colors {
			if colors[u] != again[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
