// Package brooks implements the distributed Brooks' theorem (Theorem 5,
// originally [PS95], re-proved in Section 2.3 of the paper): when a graph
// with Δ >= 3 that is not a clique is Δ-colored except for a single node v,
// the coloring can be completed by recoloring only inside the
// (2·log_{Δ-1} n)-neighborhood of v.
//
// The procedure follows the paper's proof: v holds a "token"; while the
// token node has no free color, the token moves to a neighbor u by coloring
// the current node with c(u) and uncoloring u (always proper, because a
// node without a free color sees all Δ colors on its neighbors). The token
// is walked towards either a node of degree < Δ (which always has a free
// color) or a degree-choosable component, which is then wholly uncolored
// and exactly re-colored from its degree lists (possible by Theorem 8).
// Lemma 16 guarantees one of the two targets exists within the stated
// radius.
package brooks

import (
	"fmt"
	"math"

	"deltacolor/graph"
	"deltacolor/internal/gallai"
)

// Mode records which escape hatch completed the coloring.
type Mode int

const (
	// ModeFree: the uncolored node already had a free color.
	ModeFree Mode = iota + 1
	// ModeLowDegree: the token walked to a node of degree < Δ.
	ModeLowDegree
	// ModeDCC: the token walked to a degree-choosable component, which was
	// uncolored and brute-force re-colored.
	ModeDCC
	// ModeFallback: the heuristic DCC search failed and an expanding-ball
	// exact re-coloring was used instead (possible only because FindDCC is
	// heuristically incomplete; see DESIGN.md §3).
	ModeFallback
)

func (m Mode) String() string {
	switch m {
	case ModeFree:
		return "free"
	case ModeLowDegree:
		return "low-degree"
	case ModeDCC:
		return "dcc"
	case ModeFallback:
		return "fallback"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Result reports a completed recoloring.
type Result struct {
	Colors []int
	Radius int // max distance from the start node that was touched
	Rounds int // LOCAL rounds charged (ball collection + token walk + local recoloring)
	Mode   Mode
}

// SearchRadius returns the paper's bound 2·log_{Δ-1} n (ceiling), the
// radius within which Lemma 16 guarantees a low-degree node or a DCC.
func SearchRadius(n, delta int) int {
	if delta < 3 || n < 2 {
		return 1
	}
	r := int(math.Ceil(2 * math.Log(float64(n)) / math.Log(float64(delta-1))))
	if r < 1 {
		r = 1
	}
	return r
}

// FixOne completes node v of a proper partial Δ-coloring (partial[v] must
// be < 0, colored nodes carry values in [0, delta)). It returns new colors;
// the input slice is not modified.
//
// Multi-hole semantics: the coloring does NOT have to be total away from v.
// Other uncolored nodes — the composite algorithms' deferral paths and the
// SLOCAL executor both call FixOne mid-run with many holes open, some of
// them adjacent — are treated as slack everywhere a color constraint is
// read: freeColor ignores uncolored neighbors, and the DCC and fallback
// recolorings build their lists (gallai.DegreeLists, deltaLists) from
// colored boundary nodes only, so an uncolored boundary neighbor widens a
// list instead of blocking a color. Two consequences, pinned by the
// adjacent-hole regression tests:
//
//   - the token walk never steps into another hole: a token node adjacent
//     to an uncolored neighbor sees at most Δ-1 colors and therefore exits
//     early with a free color before the step is taken (in particular, a
//     hole adjacent to another hole always resolves in ModeFree);
//   - a DCC or fallback recoloring whose region contains other holes
//     completes them as a side effect (their lists are supersets of the
//     degree lists, so Theorem 8 still applies).
//
// Everything FixOne reads lies within distance Radius+1 of v and
// everything it writes within distance Radius (TestFixOneTouchWithinRadius)
// — the locality contract the batched repair engine in batch.go schedules
// against.
func FixOne(g *graph.G, partial []int, v, delta int) (*Result, error) {
	if partial[v] >= 0 {
		return nil, fmt.Errorf("brooks: node %d is already colored", v)
	}
	colors := append([]int(nil), partial...)
	rMax := SearchRadius(g.N(), delta)

	// Fast path: free color at v.
	if c := freeColor(g, colors, v, delta); c >= 0 {
		colors[v] = c
		return &Result{Colors: colors, Radius: 0, Rounds: 1, Mode: ModeFree}, nil
	}

	// Look for the nearest low-degree node.
	bfs := g.BFSLimited(v, rMax)
	target, mode := -1, Mode(0)
	for _, u := range bfs.Order {
		if g.Deg(u) < delta {
			target, mode = u, ModeLowDegree
			break
		}
	}
	var dcc []int
	if target < 0 {
		// Look for a DCC: nearest ball node contained in one.
		for _, u := range bfs.Order {
			if d := gallai.FindDCC(g, u, rMax); d != nil {
				target, mode, dcc = u, ModeDCC, d
				break
			}
		}
	}
	if target >= 0 {
		res, err := walkAndResolve(g, colors, v, target, delta, mode, dcc, bfs)
		if err == nil {
			return res, nil
		}
		// fall through to the fallback on unexpected failure
	}
	return fallbackRecolor(g, colors, v, delta)
}

// walkAndResolve moves the token from v to target along a BFS shortest
// path, then resolves at the target (free color for low-degree, exact
// recoloring for a DCC).
func walkAndResolve(g *graph.G, colors []int, v, target, delta int, mode Mode, dcc []int, bfs *graph.BFSResult) (*Result, error) {
	// Reconstruct the path v -> target.
	var path []int
	for x := target; x != -1; x = bfs.Parent[x] {
		path = append(path, x)
	}
	// path is target..v; reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	radius := 0
	cur := v // token holder, uncolored
	for i := 1; i < len(path); i++ {
		// Early exit: token node gained a free color.
		if c := freeColor(g, colors, cur, delta); c >= 0 {
			colors[cur] = c
			return &Result{Colors: colors, Radius: radius, Rounds: 2*radius + 2, Mode: ModeFree}, nil
		}
		next := path[i]
		colors[cur] = colors[next]
		colors[next] = -1
		cur = next
		if bfs.Dist[cur] > radius {
			radius = bfs.Dist[cur]
		}
	}
	switch mode {
	case ModeLowDegree:
		c := freeColor(g, colors, cur, delta)
		if c < 0 {
			return nil, fmt.Errorf("brooks: low-degree target %d has no free color", cur)
		}
		colors[cur] = c
		return &Result{Colors: colors, Radius: radius, Rounds: 2*radius + 2, Mode: ModeLowDegree}, nil
	case ModeDCC:
		// Uncolor the whole component (token node may or may not be in it;
		// the proof moves the token to the closest node of the DCC, so cur
		// is a member when dcc came from FindDCC(cur, .)).
		if !containsNode(dcc, cur) {
			dcc = append(dcc, cur)
			if !gallai.IsDCCSet(g, dcc) {
				return nil, fmt.Errorf("brooks: token node %d not in its DCC", cur)
			}
		}
		for _, u := range dcc {
			colors[u] = -1
		}
		lists := gallai.DegreeLists(g, dcc, colors, delta)
		sol, err := gallai.BruteListColor(g, dcc, lists)
		if err != nil {
			return nil, fmt.Errorf("brooks: DCC recoloring: %w", err)
		}
		for u, c := range sol {
			colors[u] = c
		}
		dccRadius := gallai.SetRadius(g, dcc)
		if dccRadius < 0 {
			dccRadius = len(dcc)
		}
		total := radius + 2*dccRadius
		return &Result{Colors: colors, Radius: total, Rounds: 2*total + 2, Mode: ModeDCC}, nil
	default:
		return nil, fmt.Errorf("brooks: unknown mode %v", mode)
	}
}

// fallbackRecolor uncolors balls of growing radius around v and exactly
// re-colors them against the boundary with Δ-lists. Brooks' theorem
// guarantees success once the ball covers v's component (a nice graph is
// Δ-colorable); in practice tiny radii suffice.
func fallbackRecolor(g *graph.G, colors []int, v, delta int) (*Result, error) {
	for r := 1; r <= g.N(); r++ {
		ball := g.Ball(v, r)
		saved := map[int]int{}
		for _, u := range ball {
			saved[u] = colors[u]
			colors[u] = -1
		}
		lists := deltaLists(g, ball, colors, delta)
		sol, err := gallai.BruteListColor(g, ball, lists)
		if err == nil {
			for u, c := range sol {
				colors[u] = c
			}
			return &Result{Colors: colors, Radius: r, Rounds: 2*r + 2, Mode: ModeFallback}, nil
		}
		for u, c := range saved {
			colors[u] = c
		}
		if len(ball) == g.N() {
			break
		}
	}
	return nil, fmt.Errorf("brooks: fallback recoloring failed around node %d", v)
}

// deltaLists builds {0..delta-1} minus externally-colored neighbor colors
// for each ball node.
func deltaLists(g *graph.G, nodes []int, colors []int, delta int) map[int][]int {
	inSet := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		inSet[u] = true
	}
	lists := make(map[int][]int, len(nodes))
	for _, u := range nodes {
		used := map[int]bool{}
		for _, w := range g.Neighbors(u) {
			if !inSet[w] && colors[w] >= 0 {
				used[colors[w]] = true
			}
		}
		var l []int
		for c := 0; c < delta; c++ {
			if !used[c] {
				l = append(l, c)
			}
		}
		lists[u] = l
	}
	return lists
}

// freeColor returns a color in [0, delta) unused by v's neighbors, or -1.
func freeColor(g *graph.G, colors []int, v, delta int) int {
	used := make([]bool, delta)
	for _, u := range g.Neighbors(v) {
		if c := colors[u]; c >= 0 && c < delta {
			used[c] = true
		}
	}
	for c := 0; c < delta; c++ {
		if !used[c] {
			return c
		}
	}
	return -1
}

func containsNode(nodes []int, v int) bool {
	for _, u := range nodes {
		if u == v {
			return true
		}
	}
	return false
}
