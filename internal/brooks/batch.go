// Batched distributed Brooks repairs.
//
// Every composite algorithm in this repository ends in the Brooks safety
// net, and until PR 4 that net ran FixOne centrally one hole at a time,
// charging the *sum* of the walks' rounds. But repair scheduling is
// naturally an MIS problem over repair balls (Bourreau–Brandt–Nolin,
// "Faster Distributed Δ-Coloring via a Reduction to MIS"): two token-walk
// repairs whose balls are disjoint and non-adjacent read and write disjoint
// regions of the graph, so they commute and can run in the same LOCAL
// rounds. The engine below collects all holes, schedules a maximal set of
// pairwise-independent repairs with dist.LubyMIS over a
// local.QuotientNetwork of the balls, executes that whole batch in one
// pass charged max-not-sum, and loops until no holes remain.
//
// Ball radius. A node running the token procedure blind would have to
// reserve the a-priori bound 2·SearchRadius+1 (the walk reaches distance
// <= SearchRadius and a DCC recoloring extends it); at any feasible scale
// that ball covers the whole graph and the conflict quotient degenerates
// to a clique. The walk, however, is deterministic given the colors it
// reads, so the engine runs it optimistically first (FixOne against the
// current snapshot) and schedules by the ball of the *realized* radius
// R_v = Result.Radius: a repair reads colors only inside B(v, R_v+1) and
// writes only inside B(v, R_v) (pinned by TestFixOneTouchWithinRadius), so
// two repairs commute exactly when their realized balls are disjoint and
// non-adjacent — which is exactly non-adjacency in the quotient graph.
// Repairs whose balls conflict are deferred to a later batch and re-run
// against the then-current colors, so their snapshots are never stale.
package brooks

import (
	"fmt"
	"sort"

	"deltacolor/graph"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// BatchInfo reports one batch of pairwise-independent repairs.
type BatchInfo struct {
	// Size is the number of repairs executed in this batch.
	Size int
	// Rounds is the charged execution cost: the max FixOne rounds over the
	// batch's repairs (they run in parallel), not the sum.
	Rounds int
	// SchedRounds is the charged scheduling cost: one ball-exchange pass
	// plus the LubyMIS run over the conflict quotient, each virtual round
	// costing a ball diameter. Zero when the batch had a single candidate
	// (nothing to schedule against).
	SchedRounds int
	// MaxRadius is the largest realized repair-ball radius among the
	// batch's candidates (the quantity the scheduling cost scales with).
	MaxRadius int
}

// BatchResult is the outcome of a batched repair run.
type BatchResult struct {
	// Fixed counts the repairs executed (holes completed by their own
	// token procedure; holes swallowed by another repair's DCC or fallback
	// recoloring are completed as a side effect and not counted here,
	// matching the sequential engine's accounting).
	Fixed int
	// Changed lists every node whose color the engine changed, in
	// application order, without duplicates per batch. Callers that mirror
	// colors elsewhere (slocal) update O(|Changed|) entries instead of
	// rescanning all n nodes.
	Changed []int
	// Batches describes each scheduling round.
	Batches []BatchInfo
	// SummedRounds is the counterfactual pre-batching charge: the sum of
	// the executed repairs' individual rounds, what the sequential safety
	// net used to bill. TotalRounds() < SummedRounds whenever a batch
	// holds more than one repair and walks are nontrivial; experiment E13
	// and TestRepairBatchedVsSummedAccounting track the gap.
	SummedRounds int
}

// TotalRounds is the charged cost of the whole run: per batch, scheduling
// plus the max execution rounds.
func (r *BatchResult) TotalRounds() int {
	total := 0
	for _, b := range r.Batches {
		total += b.SchedRounds + b.Rounds
	}
	return total
}

// BatchRounds returns the per-batch charged rounds (scheduling +
// execution), the histogram surfaced as deltacolor.Result.RepairBatchRounds.
func (r *BatchResult) BatchRounds() []int {
	out := make([]int, len(r.Batches))
	for i, b := range r.Batches {
		out[i] = b.SchedRounds + b.Rounds
	}
	return out
}

// Repair completes every uncolored node of g with batched Brooks repairs,
// mutating colors in place. See RepairHoles.
func Repair(g *graph.G, colors []int, delta int, seed int64) (*BatchResult, error) {
	var holes []int
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			holes = append(holes, v)
		}
	}
	return RepairHoles(g, colors, holes, delta, seed)
}

// RepairHoles completes the given uncolored nodes (already-colored entries
// are skipped, as a concurrent repair may fill a hole as a side effect),
// mutating colors in place. The partial coloring must be proper; other
// holes — even ones adjacent to each other — are permitted everywhere, per
// FixOne's multi-hole semantics. Each iteration runs every remaining hole's
// token procedure against the current colors, schedules a maximal
// independent set of non-conflicting repair balls via LubyMIS on their
// quotient network, applies that batch (charged max rounds + scheduling),
// and repeats; the seed drives only the MIS lotteries, so runs are
// deterministic.
func RepairHoles(g *graph.G, colors []int, holes []int, delta int, seed int64) (*BatchResult, error) {
	res := &BatchResult{}
	remaining := dedupeHoles(g, colors, holes)
	// The quotient builder is shared across iterations so the O(n) owner
	// table is allocated once, not once per MIS round — with many small
	// holes the per-iteration cost would otherwise be O(n) against a
	// shrinking batch (quadratic overall; BenchmarkRepairHolesManySmall
	// pins the win).
	var qb *local.QuotientBuilder
	for iter := 0; len(remaining) > 0; iter++ {
		if iter > len(holes) {
			return res, fmt.Errorf("brooks: batch repair made no progress after %d iterations (%d holes left)", iter, len(remaining))
		}

		// Optimistic pass: run every remaining repair against the current
		// snapshot and collect its realized ball. The dominant case — the
		// hole has a free color (always true when another hole is adjacent,
		// and typical for deferred nodes) — resolves inline at radius 0:
		// calling FixOne there would pay an O(n) snapshot copy per hole and
		// g.Ball an O(n) BFS, turning a 10⁶-node batch into gigabytes of
		// allocation churn. freeColor picks the same smallest free color
		// FixOne's fast path does, so the shortcut stays byte-identical.
		fixes := make([]*Result, len(remaining))
		freeCols := make([]int, len(remaining))
		balls := make([][]int, len(remaining))
		maxRadius := 0
		for i, v := range remaining {
			if c := freeColor(g, colors, v, delta); c >= 0 {
				fixes[i] = nil // resolved inline: ModeFree, radius 0, 1 round
				freeCols[i] = c
				balls[i] = []int{v}
				continue
			}
			fix, err := FixOne(g, colors, v, delta)
			if err != nil {
				return res, fmt.Errorf("brooks: batch repair of node %d: %w", v, err)
			}
			fixes[i] = fix
			balls[i] = g.Ball(v, fix.Radius)
			if fix.Radius > maxRadius {
				maxRadius = fix.Radius
			}
		}

		// Schedule: a repair may run alongside another exactly when their
		// balls are non-adjacent in the quotient (disjoint and no crossing
		// edge). A single candidate needs no scheduling.
		chosen := make([]bool, len(remaining))
		schedRounds := 0
		if len(remaining) == 1 {
			chosen[0] = true
		} else {
			if qb == nil {
				qb = local.NewQuotientBuilder(g)
			}
			qnet := qb.Build(balls, seed+int64(iter)*1_000_003)
			inMIS, misRounds := dist.LubyMIS(qnet, nil)
			copy(chosen, inMIS)
			// One ball-exchange pass to discover conflicts, then the MIS
			// itself; every virtual round spans a ball diameter.
			schedRounds = (2*maxRadius + 1) * (misRounds + 1)
		}

		// Execute the batch: apply each chosen repair's diff inside its
		// ball. Chosen balls are pairwise disjoint, so the application
		// order cannot matter; ascending hole ID keeps it deterministic
		// and byte-identical to the sequential engine when every repair is
		// independent.
		info := BatchInfo{SchedRounds: schedRounds, MaxRadius: maxRadius}
		for i, v := range remaining {
			if !chosen[i] || colors[v] >= 0 {
				continue
			}
			rounds := 1
			if fixes[i] == nil {
				colors[v] = freeCols[i]
				res.Changed = append(res.Changed, v)
			} else {
				for _, u := range balls[i] {
					if fixes[i].Colors[u] != colors[u] {
						colors[u] = fixes[i].Colors[u]
						res.Changed = append(res.Changed, u)
					}
				}
				rounds = fixes[i].Rounds
			}
			info.Size++
			res.SummedRounds += rounds
			if rounds > info.Rounds {
				info.Rounds = rounds
			}
		}
		if info.Size == 0 {
			return res, fmt.Errorf("brooks: batch repair scheduled an empty batch (%d holes left)", len(remaining))
		}
		res.Fixed += info.Size
		res.Batches = append(res.Batches, info)

		// Drop everything now colored: the chosen repairs, plus any hole a
		// DCC or fallback recoloring completed as a side effect.
		kept := remaining[:0]
		for _, v := range remaining {
			if colors[v] < 0 {
				kept = append(kept, v)
			}
		}
		remaining = kept
	}
	return res, nil
}

// dedupeHoles sorts, deduplicates and filters the requested holes down to
// the ones actually uncolored.
func dedupeHoles(g *graph.G, colors []int, holes []int) []int {
	out := make([]int, 0, len(holes))
	for _, v := range holes {
		if v >= 0 && v < g.N() && colors[v] < 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	kept := out[:0]
	for i, v := range out {
		if i == 0 || out[i-1] != v {
			kept = append(kept, v)
		}
	}
	return kept
}
