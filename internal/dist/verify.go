package dist

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/verify"
)

// VerifyColoring is the centralized checker every algorithm runs before
// returning: all nodes colored (>= 0) and no monochromatic edge. Palette
// bounds (colors < Δ) are the caller's contract and checked separately;
// the properness check itself is delegated to the shared verify package.
func VerifyColoring(g *graph.G, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("verify coloring: %d colors for %d nodes", len(colors), g.N())
	}
	maxC := 0
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			return fmt.Errorf("verify coloring: node %d uncolored", v)
		}
		if colors[v] > maxC {
			maxC = colors[v]
		}
	}
	return verify.PartialColoring(g, colors, maxC+1)
}
