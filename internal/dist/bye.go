package dist

import "deltacolor/local"

// byeTracker is the shared halt-announcement bookkeeping of the
// early-halting protocols (LubyMIS, randomized list coloring): a node
// that halts flags its final staged messages with a "bye" bit, and its
// neighbors mute the port — no message is ever staged for a receiver the
// sender could have known was gone, which is exactly what the runtime's
// strict dead-send mode checks.
type byeTracker struct {
	dead  []bool // dead[p]: the neighbor on port p halted
	ndead int
}

func (b *byeTracker) init(deg int) { b.dead = make([]bool, deg) }

// note records a bye heard on port p.
func (b *byeTracker) note(p int) {
	if !b.dead[p] {
		b.dead[p] = true
		b.ndead++
	}
}

// castInt stages an int-path message on every listening port (a plain
// Broadcast when all are).
func (b *byeTracker) castInt(ctx *local.Ctx, v int) {
	if b.ndead == 0 {
		ctx.BroadcastInt(v)
		return
	}
	for p, dead := range b.dead {
		if !dead {
			ctx.SendInt(p, v)
		}
	}
}

// castMsg stages a boxed message like castInt.
func (b *byeTracker) castMsg(ctx *local.Ctx, m local.Message) {
	if b.ndead == 0 {
		ctx.Broadcast(m)
		return
	}
	for p, dead := range b.dead {
		if !dead {
			ctx.Send(p, m)
		}
	}
}
