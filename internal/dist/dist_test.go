package dist

import (
	"math/rand"
	"strings"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

// logStar is the base-2 iterated logarithm, the quantity Linial's theorem
// bounds the round count by.
func logStar(n int) int {
	s := 0
	for x := float64(n); x > 1; s++ {
		l := 0.0
		for y := x; y >= 2; y /= 2 {
			l++
		}
		x = l
	}
	return s
}

// families is the shared test-graph zoo: paths, cycles, cliques, and random
// regular graphs of varying degree.
func families(t *testing.T) []struct {
	name string
	g    *graph.G
} {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return []struct {
		name string
		g    *graph.G
	}{
		{"path n=64", gen.Path(64)},
		{"cycle n=63", gen.Cycle(63)},
		{"cycle n=64", gen.Cycle(64)},
		{"clique K6", gen.Complete(6)},
		{"clique K12", gen.Complete(12)},
		{"torus 8x8", gen.Torus(8, 8)},
		{"random 3-regular n=128", gen.MustRandomRegular(rng, 128, 3)},
		{"random 4-regular n=256", gen.MustRandomRegular(rng, 256, 4)},
		{"random 8-regular n=128", gen.MustRandomRegular(rng, 128, 8)},
	}
}

func assertProper(t *testing.T, g *graph.G, colors []int, bound int, what string) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 || colors[v] >= bound {
			t.Fatalf("%s: node %d color %d outside [0, %d)", what, v, colors[v], bound)
		}
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			t.Fatalf("%s: edge (%d,%d) monochromatic in %d", what, e[0], e[1], colors[e[0]])
		}
	}
}

func TestLinialFamilies(t *testing.T) {
	for _, tc := range families(t) {
		t.Run(tc.name, func(t *testing.T) {
			net := local.NewNetwork(tc.g, 1)
			colors, k, rounds := Linial(net)
			assertProper(t, tc.g, colors, k, "linial")
			if bound := logStar(tc.g.N()) + 4; rounds > bound {
				t.Fatalf("rounds %d exceed log* bound %d", rounds, bound)
			}
			delta := tc.g.MaxDegree()
			// The final palette is O(Δ²): q² for the smallest usable prime q.
			if cap := (4*delta + 8) * (4*delta + 8); k > cap && k > tc.g.N() {
				t.Fatalf("palette %d not O(Δ²) for Δ=%d", k, delta)
			}
		})
	}
}

// TestLinialLogStarBound checks the theorem's shape at the largest scale in
// the suite: n = 2^16 nodes, constant degree, rounds <= log* n + O(1).
func TestLinialLogStarBound(t *testing.T) {
	if testing.Short() {
		t.Skip("65536-node network; skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	g := gen.MustRandomRegular(rng, 1<<16, 4)
	net := local.NewNetwork(g, 1)
	colors, k, rounds := Linial(net)
	assertProper(t, g, colors, k, "linial")
	if bound := logStar(1<<16) + 4; rounds > bound {
		t.Fatalf("rounds %d exceed log*(2^16)+4 = %d", rounds, bound)
	}
	if k > 1000 {
		t.Fatalf("palette %d far from O(Δ²) at Δ=4", k)
	}
}

func TestReduceColorsToDeltaPlusOne(t *testing.T) {
	for _, tc := range families(t) {
		t.Run(tc.name, func(t *testing.T) {
			delta := tc.g.MaxDegree()
			net := local.NewNetwork(tc.g, 2)
			base, k, _ := Linial(net)
			net2 := local.NewNetwork(tc.g, 3)
			colors, rounds, err := ReduceColors(net2, base, k, delta+1)
			if err != nil {
				t.Fatalf("ReduceColors: %v", err)
			}
			assertProper(t, tc.g, colors, delta+1, "reduce")
			want := k - (delta + 1)
			if want < 0 {
				want = 0
			}
			if rounds != want {
				t.Fatalf("rounds %d, want one per eliminated class = %d", rounds, want)
			}
		})
	}
}

func TestReduceColorsRejectsBadInput(t *testing.T) {
	g := gen.Complete(5)
	ids := []int{0, 1, 2, 3, 4}
	// Infeasible target: K5 cannot be 3-colored.
	if _, _, err := ReduceColors(local.NewNetwork(g, 1), ids, 5, 3); err == nil {
		t.Fatal("3-coloring K5 did not error")
	}
	// Improper base coloring.
	if _, _, err := ReduceColors(local.NewNetwork(g, 1), []int{0, 0, 1, 2, 3}, 5, 5); err == nil || !strings.Contains(err.Error(), "not proper") {
		t.Fatalf("improper base: got %v", err)
	}
	// Wrong length.
	if _, _, err := ReduceColors(local.NewNetwork(g, 1), ids[:3], 5, 5); err == nil {
		t.Fatal("short base slice did not error")
	}
	// Out-of-range color.
	if _, _, err := ReduceColors(local.NewNetwork(g, 1), []int{0, 1, 2, 3, 9}, 5, 5); err == nil {
		t.Fatal("out-of-range base color did not error")
	}
}

func assertMIS(t *testing.T, g *graph.G, active, inMIS []bool, what string) {
	t.Helper()
	isActive := func(v int) bool { return active == nil || active[v] }
	for _, e := range g.Edges() {
		if inMIS[e[0]] && inMIS[e[1]] {
			t.Fatalf("%s: adjacent nodes %d and %d both in MIS", what, e[0], e[1])
		}
	}
	for v := 0; v < g.N(); v++ {
		if !isActive(v) {
			if inMIS[v] {
				t.Fatalf("%s: inactive node %d in MIS", what, v)
			}
			continue
		}
		if inMIS[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if isActive(u) && inMIS[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("%s: active node %d neither in MIS nor dominated (not maximal)", what, v)
		}
	}
}

func TestLubyMISFamilies(t *testing.T) {
	for _, tc := range families(t) {
		t.Run(tc.name, func(t *testing.T) {
			net := local.NewNetwork(tc.g, 4)
			inMIS, rounds := LubyMIS(net, nil)
			assertMIS(t, tc.g, nil, inMIS, "mis")
			// O(log n) w.h.p.; assert a loose constant multiple.
			if bound := 12*logStar(tc.g.N())*logStar(tc.g.N()) + 20*bitLen(tc.g.N()); rounds > bound {
				t.Fatalf("rounds %d exceed loose O(log n) bound %d", rounds, bound)
			}
		})
	}
}

func bitLen(n int) int {
	b := 0
	for x := n; x > 0; x /= 2 {
		b++
	}
	return b
}

func TestLubyMISActiveSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.MustRandomRegular(rng, 256, 4)
	active := make([]bool, g.N())
	for v := range active {
		active[v] = rng.Intn(3) != 0
	}
	net := local.NewNetwork(g, 5)
	inMIS, _ := LubyMIS(net, active)
	assertMIS(t, g, active, inMIS, "mis-subset")
}

func TestLubyMISClique(t *testing.T) {
	// On a clique the MIS is exactly one node.
	net := local.NewNetwork(gen.Complete(12), 6)
	inMIS, _ := LubyMIS(net, nil)
	count := 0
	for _, in := range inMIS {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("clique MIS has %d nodes, want 1", count)
	}
}

// partialScenario erases a random subset of a greedy (Δ+1)-coloring; the
// erased nodes form the active layer and keep (deg+1)-sized lists — the
// exact situation the layering technique creates.
func partialScenario(g *graph.G, seed int64) (active []bool, partial []int, delta int) {
	delta = g.MaxDegree() + 1
	rng := rand.New(rand.NewSource(seed))
	partial = make([]int, g.N())
	for v := range partial {
		partial[v] = -1
	}
	for v := 0; v < g.N(); v++ { // greedy proper coloring in [0, Δ+1)
		used := make([]bool, delta)
		for _, u := range g.Neighbors(v) {
			if c := partial[u]; c >= 0 {
				used[c] = true
			}
		}
		for c := 0; c < delta; c++ {
			if !used[c] {
				partial[v] = c
				break
			}
		}
	}
	active = make([]bool, g.N())
	for v := range active {
		if rng.Intn(2) == 0 {
			active[v] = true
			partial[v] = -1
		}
	}
	return active, partial, delta
}

func TestListColorRandomizedFamilies(t *testing.T) {
	for _, tc := range families(t) {
		t.Run(tc.name, func(t *testing.T) {
			active, partial, delta := partialScenario(tc.g, 11)
			li := NewListInstance(tc.g, active, partial, delta)
			if err := li.CheckDegPlusOne(tc.g); err != nil {
				t.Fatalf("deg+1 violated by construction: %v", err)
			}
			net := local.NewNetwork(tc.g, 12)
			colors, rounds, err := ListColorRandomized(net, li)
			if err != nil {
				t.Fatalf("ListColorRandomized: %v", err)
			}
			if rounds <= 0 && anyTrue(active) {
				t.Fatal("no rounds recorded for a nonempty instance")
			}
			mergeAndCheck(t, tc.g, active, partial, colors, delta)
		})
	}
}

func TestListColorDeterministicFamilies(t *testing.T) {
	for _, tc := range families(t) {
		t.Run(tc.name, func(t *testing.T) {
			active, partial, delta := partialScenario(tc.g, 13)
			li := NewListInstance(tc.g, active, partial, delta)
			baseNet := local.NewNetwork(tc.g, 14)
			base, baseK, _ := Linial(baseNet)
			net := local.NewNetwork(tc.g, 15)
			colors, rounds, err := ListColorDeterministic(net, li, base, baseK)
			if err != nil {
				t.Fatalf("ListColorDeterministic: %v", err)
			}
			if rounds != baseK {
				t.Fatalf("rounds %d, want one per base class = %d", rounds, baseK)
			}
			mergeAndCheck(t, tc.g, active, partial, colors, delta)
		})
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// mergeAndCheck overlays the layer solution on the partial coloring and
// checks the combined coloring is full and proper in [0, delta).
func mergeAndCheck(t *testing.T, g *graph.G, active []bool, partial, colors []int, delta int) {
	t.Helper()
	merged := append([]int(nil), partial...)
	for v := range merged {
		if active[v] {
			merged[v] = colors[v]
		}
	}
	assertProper(t, g, merged, delta, "layer+partial")
}

func TestCheckDegPlusOneDetectsTightLists(t *testing.T) {
	g := gen.Complete(5)
	all := make([]bool, 5)
	none := make([]int, 5)
	for v := range all {
		all[v] = true
		none[v] = -1
	}
	// Δ = 4 colors for degree-4 nodes: exactly deg, not deg+1.
	li := NewListInstance(g, all, none, 4)
	if err := li.CheckDegPlusOne(g); err == nil {
		t.Fatal("deg-sized lists passed the deg+1 check")
	}
}

func TestListColorDeterministicRejectsImproperBase(t *testing.T) {
	g := gen.Cycle(6)
	all := make([]bool, 6)
	none := make([]int, 6)
	for v := range all {
		all[v] = true
		none[v] = -1
	}
	li := NewListInstance(g, all, none, 3)
	base := []int{0, 0, 1, 2, 0, 1} // nodes 0 and 1 adjacent, same class
	if _, _, err := ListColorDeterministic(local.NewNetwork(g, 1), li, base, 3); err == nil {
		t.Fatal("improper base classes not rejected")
	}
}

func TestDecomposeFamilies(t *testing.T) {
	for _, tc := range families(t) {
		t.Run(tc.name, func(t *testing.T) {
			beta := 1.0 / float64(bitLen(tc.g.N()))
			dec := Decompose(tc.g, nil, beta, 21)
			if err := VerifyDecomposition(tc.g, nil, dec); err != nil {
				t.Fatalf("VerifyDecomposition: %v", err)
			}
			if dec.Rounds <= 0 {
				t.Fatalf("nonpositive round cost %d", dec.Rounds)
			}
		})
	}
}

func TestDecomposeActiveSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.MustRandomRegular(rng, 256, 4)
	active := make([]bool, g.N())
	for v := range active {
		active[v] = rng.Intn(4) != 0
	}
	dec := Decompose(g, active, 0.25, 3)
	if err := VerifyDecomposition(g, active, dec); err != nil {
		t.Fatalf("VerifyDecomposition: %v", err)
	}
}

func TestVerifyDecompositionCatchesTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := gen.MustRandomRegular(rng, 128, 4)
	dec := Decompose(g, nil, 0.25, 5)
	if err := VerifyDecomposition(g, nil, dec); err != nil {
		t.Fatalf("fresh decomposition invalid: %v", err)
	}
	if len(dec.Centers) < 2 {
		t.Skip("decomposition degenerated to one cluster; tampering test moot")
	}
	// Force two adjacent clusters onto the same color.
	var a, b = -1, -1
	for _, e := range g.Edges() {
		if ca, cb := dec.Cluster[e[0]], dec.Cluster[e[1]]; ca != cb {
			a, b = ca, cb
			break
		}
	}
	if a < 0 {
		t.Skip("no adjacent cluster pair")
	}
	saved := dec.ClusterColor[a]
	dec.ClusterColor[a] = dec.ClusterColor[b]
	if err := VerifyDecomposition(g, nil, dec); err == nil {
		t.Fatal("same-colored adjacent clusters not detected")
	}
	dec.ClusterColor[a] = saved
	// Detach a non-center node from its cluster.
	for v := 0; v < g.N(); v++ {
		if dec.Centers[dec.Cluster[v]] != v {
			dec.Cluster[v] = -1
			break
		}
	}
	if err := VerifyDecomposition(g, nil, dec); err == nil {
		t.Fatal("unclustered active node not detected")
	}
}

func TestVerifyColoring(t *testing.T) {
	g := gen.Cycle(6)
	if err := VerifyColoring(g, []int{0, 1, 0, 1, 0, 1}); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
	if err := VerifyColoring(g, []int{0, 1, 0, 1, 0, -1}); err == nil {
		t.Fatal("uncolored node accepted")
	}
	if err := VerifyColoring(g, []int{0, 0, 1, 0, 1, 2}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := VerifyColoring(g, []int{0, 1}); err == nil {
		t.Fatal("wrong-length slice accepted")
	}
}

// TestPipelineLinialReduceList exercises the composition the algorithms
// use: Linial base -> Δ+1 reduction -> erase a layer -> recolor it as a
// deterministic list instance scheduled by the same Linial classes.
func TestPipelineLinialReduceList(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.MustRandomRegular(rng, 256, 4)
	delta := g.MaxDegree()

	base, k, _ := Linial(local.NewNetwork(g, 41))
	colors, _, err := ReduceColors(local.NewNetwork(g, 42), base, k, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	active := make([]bool, g.N())
	partial := append([]int(nil), colors...)
	for v := 0; v < g.N(); v += 3 {
		active[v] = true
		partial[v] = -1
	}
	li := NewListInstance(g, active, partial, delta+1)
	if err := li.CheckDegPlusOne(g); err != nil {
		t.Fatal(err)
	}
	got, _, err := ListColorDeterministic(local.NewNetwork(g, 43), li, base, k)
	if err != nil {
		t.Fatal(err)
	}
	mergeAndCheck(t, g, active, partial, got, delta+1)
}
