package dist

import (
	"math/rand"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

// The int-vs-boxed golden: every ported primitive must produce identical
// outputs and round counts with the int fast path enabled (the default)
// and disabled (every SendInt/BroadcastInt routed through the boxed path).
// This pins the typed delivery path against the reference `any` semantics
// on assorted topologies, including the mixed int/struct protocols (MIS,
// randomized list coloring).
func fastpathGraphs(t *testing.T) map[string]*graph.G {
	t.Helper()
	return map[string]*graph.G{
		"path":  gen.Path(60),
		"cycle": gen.Cycle(45),
		"rr4":   gen.MustRandomRegular(rand.New(rand.NewSource(8)), 128, 4),
		"k12":   gen.Complete(12),
	}
}

func nets(g *graph.G, seed int64) (intPath, boxed *local.Network) {
	intPath = local.NewNetwork(g, seed)
	boxed = local.NewNetwork(g, seed)
	boxed.SetIntFastPath(false)
	return
}

func sameInts(t *testing.T, name string, got, want []int, gotRounds, wantRounds int) {
	t.Helper()
	if gotRounds != wantRounds {
		t.Fatalf("%s: rounds %d (int path) vs %d (boxed)", name, gotRounds, wantRounds)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: node %d: %d (int path) vs %d (boxed)", name, v, got[v], want[v])
		}
	}
}

func TestIntFastPathMatchesBoxedLinial(t *testing.T) {
	for name, g := range fastpathGraphs(t) {
		a, b := nets(g, 7)
		ca, ka, ra := Linial(a)
		cb, kb, rb := Linial(b)
		if ka != kb {
			t.Fatalf("%s: palette %d vs %d", name, ka, kb)
		}
		sameInts(t, name, ca, cb, ra, rb)
	}
}

func TestIntFastPathMatchesBoxedReduceColors(t *testing.T) {
	for name, g := range fastpathGraphs(t) {
		n := g.N()
		ids := make([]int, n)
		for v := range ids {
			ids[v] = v
		}
		target := g.MaxDegree() + 1
		a, b := nets(g, 9)
		ca, ra, errA := ReduceColors(a, ids, n, target)
		cb, rb, errB := ReduceColors(b, ids, n, target)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: err %v vs %v", name, errA, errB)
		}
		sameInts(t, name, ca, cb, ra, rb)
	}
}

func TestIntFastPathMatchesBoxedLubyMIS(t *testing.T) {
	for name, g := range fastpathGraphs(t) {
		n := g.N()
		active := make([]bool, n)
		for v := range active {
			active[v] = v%3 != 0 // mix of active and inactive nodes
		}
		a, b := nets(g, 11)
		ma, ra := LubyMIS(a, active)
		mb, rb := LubyMIS(b, active)
		if ra != rb {
			t.Fatalf("%s: rounds %d vs %d", name, ra, rb)
		}
		for v := range ma {
			if ma[v] != mb[v] {
				t.Fatalf("%s: node %d: %v (int path) vs %v (boxed)", name, v, ma[v], mb[v])
			}
		}
	}
}

func TestIntFastPathMatchesBoxedListColoring(t *testing.T) {
	for name, g := range fastpathGraphs(t) {
		n := g.N()
		active := make([]bool, n)
		for v := range active {
			active[v] = v%4 != 1
		}
		partial := make([]int, n)
		for v := range partial {
			partial[v] = -1
		}
		delta := g.MaxDegree() + 1
		li := NewListInstance(g, active, partial, delta)

		a, b := nets(g, 13)
		ca, ra, errA := ListColorRandomized(a, li)
		cb, rb, errB := ListColorRandomized(b, li)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s rand: err %v vs %v", name, errA, errB)
		}
		sameInts(t, name+"/rand", ca, cb, ra, rb)

		base, k, _ := Linial(local.NewNetwork(g, 14))
		a2, b2 := nets(g, 15)
		da, rda, errDA := ListColorDeterministic(a2, li, base, k)
		db, rdb, errDB := ListColorDeterministic(b2, li, base, k)
		if (errDA == nil) != (errDB == nil) {
			t.Fatalf("%s det: err %v vs %v", name, errDA, errDB)
		}
		sameInts(t, name+"/det", da, db, rda, rdb)
	}
}

// TestStrictCleanPrimitives runs every ported primitive under strict
// dead-send checking: the halting announcements (bye flags) must keep
// them free of late dead sends on every topology.
func TestStrictCleanPrimitives(t *testing.T) {
	local.SetStrictDeadSends(true)
	defer local.SetStrictDeadSends(false)
	for _, g := range fastpathGraphs(t) {
		n := g.N()
		net := local.NewNetwork(g, 21)
		base, k, _ := Linial(net)
		if _, _, err := ReduceColors(local.NewNetwork(g, 22), base, k, g.MaxDegree()+1); err != nil {
			t.Fatal(err)
		}
		active := make([]bool, n)
		for v := range active {
			active[v] = v%3 != 0
		}
		LubyMIS(local.NewNetwork(g, 23), active)

		partial := make([]int, n)
		for v := range partial {
			partial[v] = -1
		}
		li := NewListInstance(g, nil, partial, g.MaxDegree()+1)
		if _, _, err := ListColorRandomized(local.NewNetwork(g, 24), li); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ListColorDeterministic(local.NewNetwork(g, 25), li, base, k); err != nil {
			t.Fatal(err)
		}
	}
}
