package dist

import (
	"deltacolor/local"
)

// linialStep is one palette-reduction iteration: the incoming colors are
// encoded as polynomials of degree d over GF(q) (q^(d+1) covers the
// incoming palette) and remapped into [0, q²).
type linialStep struct {
	q int // prime modulus, q > Δ·d
	d int // polynomial degree
}

// linialSchedule derives the deterministic iteration schedule from the
// global parameters n and Δ. Every node computes the same schedule from
// ctx.N() and ctx.MaxDegree(), so all nodes run the same number of rounds.
func linialSchedule(n, delta int) []linialStep {
	var steps []linialStep
	k := n
	for {
		st, next := linialBestStep(k, delta)
		if next >= k {
			return steps
		}
		steps = append(steps, st)
		k = next
	}
}

// linialBestStep picks the degree d and prime q minimizing the outgoing
// palette q². A step is sound when q > Δ·d (two distinct degree-d
// polynomials agree on at most d points, so a node with at most Δ
// differently colored neighbors always finds a clean evaluation point) and
// q^(d+1) >= k (so every color has a distinct polynomial).
func linialBestStep(k, delta int) (linialStep, int) {
	best := linialStep{}
	next := k
	if delta < 1 {
		return best, next
	}
	for d := 1; ; d++ {
		lo := delta*d + 1
		if lo*lo >= next {
			// Larger degrees force q > Δ·d past the current best; stop.
			return best, next
		}
		if r := intRoot(k, d+1); r > lo {
			lo = r
		}
		q := nextPrime(lo)
		if q*q < next {
			best = linialStep{q: q, d: d}
			next = q * q
		}
	}
}

// linialState is the cross-round node state of the stepped protocol.
type linialState struct {
	color int
	cur   int   // next schedule step to apply
	nbr   []int // scratch: neighbor colors of the completed round
}

// Linial computes an O(Δ²)-coloring in O(log* n) rounds: nodes start from
// their IDs and run the schedule of polynomial reductions, broadcasting
// their current color each round over the int fast path. The protocol runs
// in the executor's stepped form (one Step per reduction round). It
// returns the coloring, the final palette size k, and the number of rounds
// used.
func Linial(net *local.Network) (colors []int, k, rounds int) {
	g := net.Graph()
	n := g.N()
	delta := g.MaxDegree()
	steps := linialSchedule(n, delta)

	outs := local.RunStepped(net, local.Stepped[linialState]{
		Init: func(ctx *local.Ctx, s *linialState) bool {
			s.color = ctx.ID()
			if len(steps) == 0 {
				ctx.SetOutput(s.color)
				return false
			}
			ctx.BroadcastInt(s.color)
			return true
		},
		Step: func(ctx *local.Ctx, s *linialState) bool {
			s.nbr = s.nbr[:0]
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					s.nbr = append(s.nbr, m)
				}
			}
			s.color = linialRecolor(s.color, s.nbr, steps[s.cur])
			s.cur++
			if s.cur == len(steps) {
				ctx.SetOutput(s.color)
				return false
			}
			ctx.BroadcastInt(s.color)
			return true
		},
	})

	colors = make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	k = n
	if len(steps) > 0 {
		last := steps[len(steps)-1]
		k = last.q * last.q
	}
	if k < 1 {
		k = 1
	}
	return colors, k, net.Rounds()
}

// linialRecolor maps color c into [0, q²) given the neighbors' current
// colors: find an evaluation point x where p_c differs from every
// neighbor's polynomial, and emit (x, p_c(x)). At most Δ·d points are bad,
// and q > Δ·d, so a clean point always exists for proper inputs.
func linialRecolor(c int, nbrColors []int, st linialStep) int {
	own := polyCoeffs(c, st.q, st.d)
	nbr := make([][]int, 0, len(nbrColors))
	for _, nc := range nbrColors {
		if nc == c {
			// Improper input; no point separates identical polynomials.
			continue
		}
		nbr = append(nbr, polyCoeffs(nc, st.q, st.d))
	}
	for x := 0; x < st.q; x++ {
		y := polyEval(own, x, st.q)
		clean := true
		for _, coef := range nbr {
			if polyEval(coef, x, st.q) == y {
				clean = false
				break
			}
		}
		if clean {
			return x*st.q + y
		}
	}
	return c % (st.q * st.q) // unreachable on proper inputs
}

// polyCoeffs encodes c as d+1 base-q digits (the coefficients of p_c).
func polyCoeffs(c, q, d int) []int {
	coef := make([]int, d+1)
	for i := range coef {
		coef[i] = c % q
		c /= q
	}
	return coef
}

// polyEval evaluates the polynomial with the given coefficients at x mod q.
func polyEval(coef []int, x, q int) int {
	y := 0
	for i := len(coef) - 1; i >= 0; i-- {
		y = (y*x + coef[i]) % q
	}
	return y
}

// intRoot returns the smallest r >= 1 with r^e >= k.
func intRoot(k, e int) int {
	if k <= 1 {
		return 1
	}
	r := 1
	for ipow(r, e) < k {
		r++
	}
	return r
}

// ipow computes b^e with saturation well above any palette size in use.
func ipow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p > 1<<40 {
			return p
		}
	}
	return p
}

// nextPrime returns the smallest prime >= x.
func nextPrime(x int) int {
	if x <= 2 {
		return 2
	}
	for n := x; ; n++ {
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return false
		}
	}
	return true
}
