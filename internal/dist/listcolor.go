package dist

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/local"
)

// ListInstance is a (deg+1)-list-coloring instance over a layer of active
// nodes: every active node must pick a color from its list, and the lists
// already exclude the colors of finished neighbors (the partial coloring
// the layer is solved against).
type ListInstance struct {
	Active []bool  // nodes to color
	Lists  [][]int // Lists[v]: allowed colors for active v, ascending
	Delta  int     // palette bound: all list colors lie in [0, Delta)
}

// NewListInstance builds the instance for one layer: the list of an active
// node is [0, delta) minus the colors its already colored neighbors hold in
// partial (-1 = uncolored). active == nil activates every node.
func NewListInstance(g *graph.G, active []bool, partial []int, delta int) *ListInstance {
	n := g.N()
	act := make([]bool, n)
	for v := 0; v < n; v++ {
		act[v] = active == nil || active[v]
	}
	lists := make([][]int, n)
	for v := 0; v < n; v++ {
		if !act[v] {
			continue
		}
		used := make([]bool, delta)
		for _, u := range g.Neighbors(v) {
			if c := partial[u]; c >= 0 && c < delta {
				used[c] = true
			}
		}
		list := make([]int, 0, delta)
		for c := 0; c < delta; c++ {
			if !used[c] {
				list = append(list, c)
			}
		}
		lists[v] = list
	}
	return &ListInstance{Active: act, Lists: lists, Delta: delta}
}

// CheckDegPlusOne verifies the layering invariant that makes the instance
// always solvable: every active node's list strictly exceeds its degree in
// the active subgraph.
func (li *ListInstance) CheckDegPlusOne(g *graph.G) error {
	for v := 0; v < g.N(); v++ {
		if !li.Active[v] {
			continue
		}
		deg := 0
		for _, u := range g.Neighbors(v) {
			if li.Active[u] {
				deg++
			}
		}
		if len(li.Lists[v]) < deg+1 {
			return fmt.Errorf("list instance: node %d has %d list colors for active degree %d", v, len(li.Lists[v]), deg)
		}
	}
	return nil
}

// listMsg is the list-coloring payload: whether the sender's color is
// final, the color itself (proposal or final; -1 = none) and the sender ID
// for proposal tie-breaking.
type listMsg struct {
	Done  bool
	Color int32
	ID    int32
}

// ListColorRandomized solves the instance with random color trials: each
// uncolored node proposes a uniform color from its remaining list; a
// proposal is kept unless a finished neighbor owns the color or a proposing
// neighbor with smaller ID picked it too. Kept colors are final; neighbors
// prune them from their lists. Nodes halt once their whole neighborhood is
// finished, so the returned rounds are the measured cost, O(log n) w.h.p.
// on (deg+1)-instances. Nodes still uncolored at the phase cap are reported
// as an error (callers defer them to the repair pass).
func ListColorRandomized(net *local.Network, li *ListInstance) ([]int, int, error) {
	g := net.Graph()
	n := g.N()
	maxPhases := 16
	for top := n + 2; top > 1; top /= 2 {
		maxPhases += 6
	}

	outs := net.RunWithInput(func(ctx *local.Ctx) {
		if !ctx.Input().(bool) {
			ctx.Broadcast(listMsg{Done: true, Color: -1, ID: int32(ctx.ID())})
			ctx.Next()
			ctx.SetOutput(-1)
			return
		}
		list := append([]int(nil), li.Lists[ctx.ID()]...)
		color := -1
		stuck := false                      // list ran dry (infeasible instance)
		known := make([]byte, ctx.Degree()) // misUnknown / misUndecided-style tracking
		finals := make(map[int]bool)        // colors finalized in the neighborhood
		propose := -1
		for phase := 0; phase < maxPhases; phase++ {
			// Round A: exchange proposals and finished states.
			propose = -1
			if color < 0 && !stuck {
				propose = list[ctx.Rand().Intn(len(list))]
			}
			ctx.Broadcast(listMsg{Done: color >= 0 || stuck, Color: int32(pick(color, propose)), ID: int32(ctx.ID())})
			ctx.Next()
			type prop struct {
				color int
				id    int
			}
			props := make([]prop, 0, ctx.Degree())
			for p := 0; p < ctx.Degree(); p++ {
				m := ctx.Recv(p)
				if m == nil {
					continue
				}
				mm := m.(listMsg)
				if mm.Done {
					known[p] = misIn
					if mm.Color >= 0 {
						finals[int(mm.Color)] = true
					}
				} else {
					known[p] = misUndecided
					if mm.Color >= 0 {
						props = append(props, prop{color: int(mm.Color), id: int(mm.ID)})
					}
				}
			}
			if color >= 0 || stuck {
				done := true
				for p := 0; p < ctx.Degree(); p++ {
					if known[p] != misIn {
						done = false
						break
					}
				}
				if done {
					break
				}
			}
			if color < 0 && propose >= 0 && !finals[propose] {
				keep := true
				for _, pr := range props {
					if pr.color == propose && pr.id < ctx.ID() {
						keep = false
						break
					}
				}
				if keep {
					color = propose
				}
			}
			// Round B: announce the outcome; neighbors prune kept colors.
			ctx.Broadcast(listMsg{Done: color >= 0 || stuck, Color: int32(color), ID: int32(ctx.ID())})
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				m := ctx.Recv(p)
				if m == nil {
					continue
				}
				mm := m.(listMsg)
				if mm.Done {
					known[p] = misIn
					if mm.Color >= 0 {
						finals[int(mm.Color)] = true
					}
				}
			}
			if color < 0 {
				pruned := list[:0]
				for _, c := range list {
					if !finals[c] {
						pruned = append(pruned, c)
					}
				}
				list = pruned
				// An empty list means the instance is infeasible for this
				// node; it announces Done(-1) next round so neighbors halt.
				stuck = len(list) == 0
			}
		}
		ctx.SetOutput(color)
	}, activeInputs(li.Active))

	colors := make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	return colors, net.Rounds(), checkInstanceSolved(g, li, colors)
}

// ListColorDeterministic solves the instance scheduled by the classes of a
// proper base coloring (typically Linial's): in the round dedicated to
// class c, every uncolored active node of that class — an independent set —
// takes the smallest list color not finalized in its neighborhood. On a
// (deg+1)-instance every node succeeds, in exactly baseK rounds.
func ListColorDeterministic(net *local.Network, li *ListInstance, baseColors []int, baseK int) ([]int, int, error) {
	g := net.Graph()
	n := g.N()
	if len(baseColors) != n {
		return nil, 0, fmt.Errorf("deterministic list coloring: got %d base colors for %d nodes", len(baseColors), n)
	}
	for v := 0; v < n; v++ {
		if baseColors[v] < 0 || baseColors[v] >= baseK {
			return nil, 0, fmt.Errorf("deterministic list coloring: node %d has base class %d outside [0, %d)", v, baseColors[v], baseK)
		}
	}
	for _, e := range g.Edges() {
		if li.Active[e[0]] && li.Active[e[1]] && baseColors[e[0]] == baseColors[e[1]] {
			return nil, 0, fmt.Errorf("deterministic list coloring: base classes not proper on edge (%d,%d)", e[0], e[1])
		}
	}

	outs := net.RunWithInput(func(ctx *local.Ctx) {
		active := ctx.Input().(bool)
		color := -1
		finals := make(map[int]bool)
		for class := 0; class < baseK; class++ {
			ctx.Broadcast(listMsg{Done: color >= 0, Color: int32(color), ID: int32(ctx.ID())})
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m := ctx.Recv(p); m != nil {
					if mm := m.(listMsg); mm.Done && mm.Color >= 0 {
						finals[int(mm.Color)] = true
					}
				}
			}
			if active && color < 0 && baseColors[ctx.ID()] == class {
				for _, c := range li.Lists[ctx.ID()] {
					if !finals[c] {
						color = c
						break
					}
				}
			}
		}
		ctx.SetOutput(color)
	}, activeInputs(li.Active))

	colors := make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	return colors, net.Rounds(), checkInstanceSolved(g, li, colors)
}

// activeInputs exposes the active flags as per-node inputs.
func activeInputs(active []bool) []any {
	inputs := make([]any, len(active))
	for v := range active {
		inputs[v] = active[v]
	}
	return inputs
}

// pick returns the final color when set, the proposal otherwise.
func pick(color, propose int) int {
	if color >= 0 {
		return color
	}
	return propose
}

// checkInstanceSolved verifies that every active node took a color from its
// list and no two adjacent active nodes collide.
func checkInstanceSolved(g *graph.G, li *ListInstance, colors []int) error {
	for v := 0; v < g.N(); v++ {
		if !li.Active[v] {
			continue
		}
		if colors[v] < 0 {
			return fmt.Errorf("list coloring: node %d left uncolored", v)
		}
		inList := false
		for _, c := range li.Lists[v] {
			if c == colors[v] {
				inList = true
				break
			}
		}
		if !inList {
			return fmt.Errorf("list coloring: node %d took color %d outside its list", v, colors[v])
		}
	}
	for _, e := range g.Edges() {
		if li.Active[e[0]] && li.Active[e[1]] && colors[e[0]] == colors[e[1]] {
			return fmt.Errorf("list coloring: edge (%d,%d) monochromatic in %d", e[0], e[1], colors[e[0]])
		}
	}
	return nil
}
