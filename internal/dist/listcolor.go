package dist

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/local"
)

// ListInstance is a (deg+1)-list-coloring instance over a layer of active
// nodes: every active node must pick a color from its list, and the lists
// already exclude the colors of finished neighbors (the partial coloring
// the layer is solved against).
type ListInstance struct {
	Active []bool  // nodes to color
	Lists  [][]int // Lists[v]: allowed colors for active v, ascending
	Delta  int     // palette bound: all list colors lie in [0, Delta)
}

// NewListInstance builds the instance for one layer: the list of an active
// node is [0, delta) minus the colors its already colored neighbors hold in
// partial (-1 = uncolored). active == nil activates every node.
func NewListInstance(g *graph.G, active []bool, partial []int, delta int) *ListInstance {
	n := g.N()
	act := make([]bool, n)
	for v := 0; v < n; v++ {
		act[v] = active == nil || active[v]
	}
	lists := make([][]int, n)
	for v := 0; v < n; v++ {
		if !act[v] {
			continue
		}
		used := make([]bool, delta)
		for _, u := range g.Neighbors(v) {
			if c := partial[u]; c >= 0 && c < delta {
				used[c] = true
			}
		}
		list := make([]int, 0, delta)
		for c := 0; c < delta; c++ {
			if !used[c] {
				list = append(list, c)
			}
		}
		lists[v] = list
	}
	return &ListInstance{Active: act, Lists: lists, Delta: delta}
}

// CheckDegPlusOne verifies the layering invariant that makes the instance
// always solvable: every active node's list strictly exceeds its degree in
// the active subgraph.
func (li *ListInstance) CheckDegPlusOne(g *graph.G) error {
	for v := 0; v < g.N(); v++ {
		if !li.Active[v] {
			continue
		}
		deg := 0
		for _, u := range g.Neighbors(v) {
			if li.Active[u] {
				deg++
			}
		}
		if len(li.Lists[v]) < deg+1 {
			return fmt.Errorf("list instance: node %d has %d list colors for active degree %d", v, len(li.Lists[v]), deg)
		}
	}
	return nil
}

// listMsg is the boxed list-coloring payload, used only for live proposals
// (which need the sender ID for tie-breaking): the proposed color plus the
// sender ID. Everything else the protocols exchange — done/final-color
// announcements — packs into a single small integer (see encDC) and
// travels allocation-free over the int fast path.
type listMsg struct {
	Color int32
	ID    int32
}

// encDC packs a (done, bye, color) announcement (color -1 = none) into a
// non-negative int for the int fast path; decDC unpacks it. The done bit
// is carried explicitly: a live-but-uncolored node and a stuck (done,
// no color) node both report color -1 but mean different things to the
// receiver. The bye bit marks the sender's last words — it halts this
// round, and the receiver mutes the port so no avoidable dead sends
// occur (strict mode checks exactly that).
func encDC(done, bye bool, color int) int {
	e := (color + 1) << 2
	if bye {
		e |= 2
	}
	if done {
		e |= 1
	}
	return e
}

func decDC(e int) (done, bye bool, color int) { return e&1 == 1, e&2 == 2, (e >> 2) - 1 }

// listRandState is the cross-round node state of the randomized protocol.
type listRandState struct {
	inactive bool
	afterB   bool // the next Step completes a round B (else a round A)
	color    int
	propose  int
	stuck    bool // list ran dry (infeasible instance)
	phase    int
	list     []int
	known    []byte // misUnknown / misUndecided-style tracking
	bye      byeTracker
	finals   map[int]bool
}

// lcNote folds a decoded (done, bye) announcement on port p into the
// tracking state.
func (s *listRandState) lcNote(p int, done, bye bool, c int) {
	if bye {
		s.bye.note(p)
	}
	if done {
		s.known[p] = misIn
		if c >= 0 {
			s.finals[c] = true
		}
	}
}

// ListColorRandomized solves the instance with random color trials: each
// uncolored node proposes a uniform color from its remaining list; a
// proposal is kept unless a finished neighbor owns the color or a proposing
// neighbor with smaller ID picked it too. Kept colors are final; neighbors
// prune them from their lists. Nodes halt once their whole neighborhood is
// finished, so the returned rounds are the measured cost, O(log n) w.h.p.
// on (deg+1)-instances. Nodes still uncolored at the phase cap are reported
// as an error (callers defer them to the repair pass).
func ListColorRandomized(net *local.Network, li *ListInstance) ([]int, int, error) {
	g := net.Graph()
	n := g.N()
	maxPhases := 16
	for top := n + 2; top > 1; top /= 2 {
		maxPhases += 6
	}

	// sendA stages the round-A exchange: done nodes announce their final
	// color over the int path; live nodes propose with the boxed message
	// (the receiver needs their ID).
	sendA := func(ctx *local.Ctx, s *listRandState) {
		s.propose = -1
		if s.color < 0 && !s.stuck {
			s.propose = s.list[ctx.Rand().Intn(len(s.list))]
		}
		if s.color >= 0 || s.stuck {
			s.bye.castInt(ctx, encDC(true, false, s.color))
		} else {
			s.bye.castMsg(ctx, listMsg{Color: int32(s.propose), ID: int32(ctx.ID())})
		}
		s.afterB = false
	}

	outs := local.RunSteppedWithInput(net, local.Stepped[listRandState]{
		Init: func(ctx *local.Ctx, s *listRandState) bool {
			if !ctx.Input().(bool) {
				// Inactive: one done announcement with the bye flag (this
				// node leaves after the round) so neighbors mute the port.
				ctx.BroadcastInt(encDC(true, true, -1))
				s.inactive = true
				return true
			}
			s.list = append([]int(nil), li.Lists[ctx.ID()]...)
			s.color = -1
			s.known = make([]byte, ctx.Degree())
			s.bye.init(ctx.Degree())
			s.finals = make(map[int]bool)
			sendA(ctx, s)
			return true
		},
		Step: func(ctx *local.Ctx, s *listRandState) bool {
			if s.inactive {
				ctx.SetOutput(-1)
				return false
			}
			if !s.afterB {
				// A round A just completed: collect announcements and
				// competing proposals.
				type prop struct {
					color int
					id    int
				}
				props := make([]prop, 0, ctx.Degree())
				for p := 0; p < ctx.Degree(); p++ {
					if e, ok := ctx.RecvInt(p); ok {
						done, bye, c := decDC(e)
						s.lcNote(p, done, bye, c)
						continue
					}
					if m := ctx.Recv(p); m != nil {
						mm := m.(listMsg)
						s.known[p] = misUndecided
						if mm.Color >= 0 {
							props = append(props, prop{color: int(mm.Color), id: int(mm.ID)})
						}
					}
				}
				if s.color >= 0 || s.stuck {
					done := true
					for p := 0; p < ctx.Degree(); p++ {
						if s.known[p] != misIn {
							done = false
							break
						}
					}
					if done {
						// Halt: stage one last bye announcement so listening
						// neighbors mute this port, then leave.
						s.bye.castInt(ctx, encDC(true, true, s.color))
						ctx.SetOutput(s.color)
						return false
					}
				}
				if s.color < 0 && s.propose >= 0 && !s.finals[s.propose] {
					keep := true
					for _, pr := range props {
						if pr.color == s.propose && pr.id < ctx.ID() {
							keep = false
							break
						}
					}
					if keep {
						s.color = s.propose
					}
				}
				// Round B: announce the outcome; neighbors prune kept colors.
				s.bye.castInt(ctx, encDC(s.color >= 0 || s.stuck, false, s.color))
				s.afterB = true
				return true
			}
			// A round B just completed: record finals and prune the list.
			for p := 0; p < ctx.Degree(); p++ {
				if e, ok := ctx.RecvInt(p); ok {
					done, bye, c := decDC(e)
					s.lcNote(p, done, bye, c)
				}
			}
			if s.color < 0 {
				pruned := s.list[:0]
				for _, c := range s.list {
					if !s.finals[c] {
						pruned = append(pruned, c)
					}
				}
				s.list = pruned
				// An empty list means the instance is infeasible for this
				// node; it announces done(-1) next round so neighbors halt.
				s.stuck = len(s.list) == 0
			}
			s.phase++
			if s.phase >= maxPhases {
				ctx.SetOutput(s.color)
				return false
			}
			sendA(ctx, s)
			return true
		},
	}, activeInputs(li.Active))

	colors := make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	return colors, net.Rounds(), checkInstanceSolved(g, li, colors)
}

// ListColorDeterministic solves the instance scheduled by the classes of a
// proper base coloring (typically Linial's): in the round dedicated to
// class c, every uncolored active node of that class — an independent set —
// takes the smallest list color not finalized in its neighborhood. On a
// (deg+1)-instance every node succeeds, in exactly baseK rounds. The whole
// protocol ships packed (done, color) integers, so it runs allocation-free
// on the int fast path.
func ListColorDeterministic(net *local.Network, li *ListInstance, baseColors []int, baseK int) ([]int, int, error) {
	g := net.Graph()
	n := g.N()
	if len(baseColors) != n {
		return nil, 0, fmt.Errorf("deterministic list coloring: got %d base colors for %d nodes", len(baseColors), n)
	}
	for v := 0; v < n; v++ {
		if baseColors[v] < 0 || baseColors[v] >= baseK {
			return nil, 0, fmt.Errorf("deterministic list coloring: node %d has base class %d outside [0, %d)", v, baseColors[v], baseK)
		}
	}
	for _, e := range g.Edges() {
		if li.Active[e[0]] && li.Active[e[1]] && baseColors[e[0]] == baseColors[e[1]] {
			return nil, 0, fmt.Errorf("deterministic list coloring: base classes not proper on edge (%d,%d)", e[0], e[1])
		}
	}

	type listDetState struct {
		active bool
		color  int
		class  int // class whose round the next Step completes
		finals map[int]bool
	}
	outs := local.RunSteppedWithInput(net, local.Stepped[listDetState]{
		Init: func(ctx *local.Ctx, s *listDetState) bool {
			s.active = ctx.Input().(bool)
			s.color = -1
			s.finals = make(map[int]bool)
			ctx.BroadcastInt(encDC(false, false, s.color))
			return true
		},
		Step: func(ctx *local.Ctx, s *listDetState) bool {
			for p := 0; p < ctx.Degree(); p++ {
				if e, ok := ctx.RecvInt(p); ok {
					if done, _, c := decDC(e); done && c >= 0 {
						s.finals[c] = true
					}
				}
			}
			if s.active && s.color < 0 && baseColors[ctx.ID()] == s.class {
				for _, c := range li.Lists[ctx.ID()] {
					if !s.finals[c] {
						s.color = c
						break
					}
				}
			}
			s.class++
			if s.class >= baseK {
				ctx.SetOutput(s.color)
				return false
			}
			ctx.BroadcastInt(encDC(s.color >= 0, false, s.color))
			return true
		},
	}, activeInputs(li.Active))

	colors := make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	return colors, net.Rounds(), checkInstanceSolved(g, li, colors)
}

// activeInputs exposes the active flags as per-node inputs.
func activeInputs(active []bool) []any {
	inputs := make([]any, len(active))
	for v := range active {
		inputs[v] = active[v]
	}
	return inputs
}

// checkInstanceSolved verifies that every active node took a color from its
// list and no two adjacent active nodes collide.
func checkInstanceSolved(g *graph.G, li *ListInstance, colors []int) error {
	for v := 0; v < g.N(); v++ {
		if !li.Active[v] {
			continue
		}
		if colors[v] < 0 {
			return fmt.Errorf("list coloring: node %d left uncolored", v)
		}
		inList := false
		for _, c := range li.Lists[v] {
			if c == colors[v] {
				inList = true
				break
			}
		}
		if !inList {
			return fmt.Errorf("list coloring: node %d took color %d outside its list", v, colors[v])
		}
	}
	for _, e := range g.Edges() {
		if li.Active[e[0]] && li.Active[e[1]] && colors[e[0]] == colors[e[1]] {
			return fmt.Errorf("list coloring: edge (%d,%d) monochromatic in %d", e[0], e[1], colors[e[0]])
		}
	}
	return nil
}
