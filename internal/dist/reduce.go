package dist

import (
	"fmt"

	"deltacolor/local"
)

// ReduceColors reduces a proper k-coloring to a proper target-coloring with
// the classic one-color-class-per-round schedule: in the round dedicated to
// class c (from k-1 down to target), every node holding c — an independent
// set, since the coloring stays proper throughout — picks a free color in
// [0, target). With target >= Δ+1 a free color always exists; otherwise the
// stuck nodes keep their old color and an error reports them.
//
// It returns the new coloring, the rounds used (k - target), and an error
// when the input is not a proper coloring in [0, k) or some node could not
// be recolored below target.
func ReduceColors(net *local.Network, base []int, k, target int) ([]int, int, error) {
	g := net.Graph()
	n := g.N()
	if len(base) != n {
		return nil, 0, fmt.Errorf("reduce colors: got %d base colors for %d nodes", len(base), n)
	}
	if target < 1 {
		return nil, 0, fmt.Errorf("reduce colors: target %d < 1", target)
	}
	for v := 0; v < n; v++ {
		if base[v] < 0 || base[v] >= k {
			return nil, 0, fmt.Errorf("reduce colors: node %d has color %d outside [0, %d)", v, base[v], k)
		}
	}
	for _, e := range g.Edges() {
		if base[e[0]] == base[e[1]] {
			return nil, 0, fmt.Errorf("reduce colors: input not proper: edge (%d,%d) both colored %d", e[0], e[1], base[e[0]])
		}
	}
	if k <= target {
		return append([]int(nil), base...), 0, nil
	}

	inputs := make([]any, n)
	for v := range inputs {
		inputs[v] = base[v]
	}
	outs := net.RunWithInput(func(ctx *local.Ctx) {
		color := ctx.Input().(int)
		for c := k - 1; c >= target; c-- {
			ctx.Broadcast(color)
			ctx.Next()
			if color != c {
				continue
			}
			used := make([]bool, target)
			for p := 0; p < ctx.Degree(); p++ {
				if m := ctx.Recv(p); m != nil {
					if nc := m.(int); nc < target {
						used[nc] = true
					}
				}
			}
			for f := 0; f < target; f++ {
				if !used[f] {
					color = f
					break
				}
			}
			// No free color (target <= degree): keep the old color so
			// neighbors still see a consistent palette; reported below.
		}
		ctx.SetOutput(color)
	}, inputs)

	colors := make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	for v := 0; v < n; v++ {
		if colors[v] >= target {
			return colors, net.Rounds(), fmt.Errorf("reduce colors: node %d stuck at color %d >= target %d (degree %d)", v, colors[v], target, g.Deg(v))
		}
	}
	return colors, net.Rounds(), nil
}
