package dist

import (
	"fmt"

	"deltacolor/local"
)

// ReduceColors reduces a proper k-coloring to a proper target-coloring with
// the classic one-color-class-per-round schedule: in the round dedicated to
// class c (from k-1 down to target), every node holding c — an independent
// set, since the coloring stays proper throughout — picks a free color in
// [0, target). With target >= Δ+1 a free color always exists; otherwise the
// stuck nodes keep their old color and an error reports them.
//
// It returns the new coloring, the rounds used (k - target), and an error
// when the input is not a proper coloring in [0, k) or some node could not
// be recolored below target.
func ReduceColors(net *local.Network, base []int, k, target int) ([]int, int, error) {
	g := net.Graph()
	n := g.N()
	if len(base) != n {
		return nil, 0, fmt.Errorf("reduce colors: got %d base colors for %d nodes", len(base), n)
	}
	if target < 1 {
		return nil, 0, fmt.Errorf("reduce colors: target %d < 1", target)
	}
	for v := 0; v < n; v++ {
		if base[v] < 0 || base[v] >= k {
			return nil, 0, fmt.Errorf("reduce colors: node %d has color %d outside [0, %d)", v, base[v], k)
		}
	}
	for _, e := range g.Edges() {
		if base[e[0]] == base[e[1]] {
			return nil, 0, fmt.Errorf("reduce colors: input not proper: edge (%d,%d) both colored %d", e[0], e[1], base[e[0]])
		}
	}
	if k <= target {
		return append([]int(nil), base...), 0, nil
	}

	inputs := make([]any, n)
	for v := range inputs {
		inputs[v] = base[v]
	}
	// Stepped protocol: one Step per color class, counting down from k-1.
	// Colors travel over the int fast path.
	type reduceState struct {
		color int
		class int // class whose round the next Step completes
	}
	outs := local.RunSteppedWithInput(net, local.Stepped[reduceState]{
		Init: func(ctx *local.Ctx, s *reduceState) bool {
			s.color = ctx.Input().(int)
			s.class = k - 1
			ctx.BroadcastInt(s.color)
			return true
		},
		Step: func(ctx *local.Ctx, s *reduceState) bool {
			if s.color == s.class {
				used := make([]bool, target)
				for p := 0; p < ctx.Degree(); p++ {
					if m, ok := ctx.RecvInt(p); ok && m < target {
						used[m] = true
					}
				}
				for f := 0; f < target; f++ {
					if !used[f] {
						s.color = f
						break
					}
				}
				// No free color (target <= degree): keep the old color so
				// neighbors still see a consistent palette; reported below.
			}
			s.class--
			if s.class < target {
				ctx.SetOutput(s.color)
				return false
			}
			ctx.BroadcastInt(s.color)
			return true
		},
	}, inputs)

	colors := make([]int, n)
	for v, o := range outs {
		colors[v] = o.(int)
	}
	for v := 0; v < n; v++ {
		if colors[v] >= target {
			return colors, net.Rounds(), fmt.Errorf("reduce colors: node %d stuck at color %d >= target %d (degree %d)", v, colors[v], target, g.Deg(v))
		}
	}
	return colors, net.Rounds(), nil
}
