package dist

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"deltacolor/graph"
)

// Decomposition is a low-diameter network decomposition of G[active]: a
// partition into connected clusters of bounded radius, plus a proper
// coloring of the cluster graph so that same-colored clusters can run
// internal computations simultaneously without interference.
type Decomposition struct {
	Cluster      []int // Cluster[v]: cluster index of node v, -1 when inactive
	Centers      []int // Centers[ci]: the node the cluster grew from
	ClusterColor []int // ClusterColor[ci]: color class of the cluster
	NumColors    int   // number of color classes
	MaxRadius    int   // max over clusters of the radius from the center
	Rounds       int   // simulated LOCAL rounds the construction costs
}

// Decompose builds the decomposition with Miller–Peng–Xu exponential
// shifts: every active node u draws δ_u ~ Exp(beta) and node v joins the
// cluster of the u minimizing dist(u, v) - δ_u (distances within
// G[active]). With beta = Θ(1/log n) the cluster radii are O(log n / beta
// · beta) = O(log n) in expectation and the clusters are connected by the
// shortest-path monotonicity of the shifted distances. The cluster graph
// is then colored greedily. active == nil means all nodes participate.
func Decompose(g *graph.G, active []bool, beta float64, seed int64) *Decomposition {
	n := g.N()
	if beta <= 0 || beta > 1 {
		beta = 0.5
	}
	rng := rand.New(rand.NewSource(seed*7919 + 17))

	// Shifts, capped at the w.h.p. maximum so a single outlier draw cannot
	// blow up the simulated round count; capping is just another valid draw.
	shiftCap := (2*math.Log(float64(n+2)) + 4) / beta
	shift := make([]float64, n)
	maxShift := 0.0
	for v := 0; v < n; v++ {
		if active != nil && !active[v] {
			continue
		}
		s := rng.ExpFloat64() / beta
		if s > shiftCap {
			s = shiftCap
		}
		shift[v] = s
		if s > maxShift {
			maxShift = s
		}
	}

	// Multi-source Dijkstra over G[active] with source potentials -δ_u:
	// each node settles with the center of smallest shifted distance
	// (ties by center ID), and inherits it from the neighbor that relaxed
	// it — which makes every cluster connected by construction.
	center := make([]int, n)
	hops := make([]int, n)
	for v := range center {
		center[v] = -1
		hops[v] = -1
	}
	pq := &shiftHeap{}
	for v := 0; v < n; v++ {
		if active != nil && !active[v] {
			continue
		}
		heap.Push(pq, shiftItem{key: -shift[v], center: v, node: v, hops: 0})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(shiftItem)
		if center[it.node] >= 0 {
			continue
		}
		center[it.node] = it.center
		hops[it.node] = it.hops
		for _, u := range g.Neighbors(it.node) {
			if active != nil && !active[u] {
				continue
			}
			if center[u] < 0 {
				heap.Push(pq, shiftItem{key: it.key + 1, center: it.center, node: u, hops: it.hops + 1})
			}
		}
	}

	// Renumber winning centers into dense cluster indices.
	clusterOf := make(map[int]int)
	var centers []int
	cluster := make([]int, n)
	maxRadius := 0
	for v := 0; v < n; v++ {
		if center[v] < 0 {
			cluster[v] = -1
			continue
		}
		ci, ok := clusterOf[center[v]]
		if !ok {
			ci = len(centers)
			clusterOf[center[v]] = ci
			centers = append(centers, center[v])
		}
		cluster[v] = ci
		if hops[v] > maxRadius {
			maxRadius = hops[v]
		}
	}

	// Greedy proper coloring of the cluster graph.
	adj := make([]map[int]bool, len(centers))
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, e := range g.Edges() {
		a, b := cluster[e[0]], cluster[e[1]]
		if a < 0 || b < 0 || a == b {
			continue
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	colors := make([]int, len(centers))
	numColors := 0
	for ci := range colors {
		used := make(map[int]bool)
		for cj := range adj[ci] {
			if cj < ci {
				used[colors[cj]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[ci] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}

	// Simulated cost: the shifted BFS runs for ceil(max δ) + MaxRadius
	// rounds (delayed starts), plus one round to agree on cluster colors
	// along the cluster tree.
	rounds := int(math.Ceil(maxShift)) + maxRadius + 1
	return &Decomposition{
		Cluster:      cluster,
		Centers:      centers,
		ClusterColor: colors,
		NumColors:    numColors,
		MaxRadius:    maxRadius,
		Rounds:       rounds,
	}
}

// shiftItem is a Dijkstra queue entry: shifted distance key, originating
// center and the node being relaxed.
type shiftItem struct {
	key    float64
	center int
	node   int
	hops   int
}

type shiftHeap []shiftItem

func (h shiftHeap) Len() int { return len(h) }
func (h shiftHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].center < h[j].center
}
func (h shiftHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *shiftHeap) Push(x any)   { *h = append(*h, x.(shiftItem)) }
func (h *shiftHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// VerifyDecomposition checks the decomposition invariants the Theorem 21
// variant relies on: every active node sits in exactly one cluster, each
// cluster is connected within G[active] with its center inside and radius
// at most MaxRadius, and adjacent clusters have different colors drawn
// from [0, NumColors).
func VerifyDecomposition(g *graph.G, active []bool, dec *Decomposition) error {
	if dec == nil {
		return fmt.Errorf("decomposition: nil")
	}
	n := g.N()
	if len(dec.Cluster) != n {
		return fmt.Errorf("decomposition: %d cluster entries for %d nodes", len(dec.Cluster), n)
	}
	if len(dec.ClusterColor) != len(dec.Centers) {
		return fmt.Errorf("decomposition: %d colors for %d clusters", len(dec.ClusterColor), len(dec.Centers))
	}
	for ci, c := range dec.ClusterColor {
		if c < 0 || c >= dec.NumColors {
			return fmt.Errorf("decomposition: cluster %d color %d outside [0, %d)", ci, c, dec.NumColors)
		}
	}
	for v := 0; v < n; v++ {
		if active != nil && !active[v] {
			if dec.Cluster[v] != -1 {
				return fmt.Errorf("decomposition: inactive node %d assigned cluster %d", v, dec.Cluster[v])
			}
			continue
		}
		if dec.Cluster[v] < 0 || dec.Cluster[v] >= len(dec.Centers) {
			return fmt.Errorf("decomposition: node %d has cluster %d outside [0, %d)", v, dec.Cluster[v], len(dec.Centers))
		}
	}
	// Connectivity and radius: BFS from each center inside its own cluster.
	size := make([]int, len(dec.Centers))
	for v := 0; v < n; v++ {
		if dec.Cluster[v] >= 0 {
			size[dec.Cluster[v]]++
		}
	}
	for ci, c := range dec.Centers {
		if dec.Cluster[c] != ci {
			return fmt.Errorf("decomposition: center %d of cluster %d sits in cluster %d", c, ci, dec.Cluster[c])
		}
		depth := map[int]int{c: 0}
		queue := []int{c}
		maxDepth := 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if dec.Cluster[u] != ci {
					continue
				}
				if _, seen := depth[u]; seen {
					continue
				}
				depth[u] = depth[v] + 1
				if depth[u] > maxDepth {
					maxDepth = depth[u]
				}
				queue = append(queue, u)
			}
		}
		if len(depth) != size[ci] {
			return fmt.Errorf("decomposition: cluster %d disconnected (%d of %d nodes reachable from center)", ci, len(depth), size[ci])
		}
		if maxDepth > dec.MaxRadius {
			return fmt.Errorf("decomposition: cluster %d radius %d exceeds MaxRadius %d", ci, maxDepth, dec.MaxRadius)
		}
	}
	for _, e := range g.Edges() {
		a, b := dec.Cluster[e[0]], dec.Cluster[e[1]]
		if a < 0 || b < 0 || a == b {
			continue
		}
		if dec.ClusterColor[a] == dec.ClusterColor[b] {
			return fmt.Errorf("decomposition: adjacent clusters %d and %d share color %d", a, b, dec.ClusterColor[a])
		}
	}
	return nil
}
