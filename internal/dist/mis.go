package dist

import (
	"deltacolor/local"
)

// Node states exchanged by the MIS protocol.
const (
	misUnknown byte = iota // placeholder before the first message arrives
	misUndecided
	misIn
	misOut
	misInactive
)

// misMsg is the per-round payload: sender state, lottery value (only
// meaningful while undecided) and sender ID for tie-breaking.
type misMsg struct {
	State byte
	R     uint64
	ID    int32
}

// misDecided reports whether a known neighbor state is final.
func misDecided(s byte) bool { return s == misIn || s == misOut || s == misInactive }

// LubyMIS computes a maximal independent set of G[active] with Luby's
// algorithm (active == nil means all nodes participate). Each phase costs
// two rounds: undecided nodes draw a lottery value and broadcast it; a node
// whose (value, ID) pair is a strict local minimum among undecided active
// neighbors joins the MIS; joiners announce themselves and their neighbors
// drop out. A node halts once it and all its neighbors are decided, so the
// returned round count is the measured cost, O(log n) w.h.p.
func LubyMIS(net *local.Network, active []bool) (inMIS []bool, rounds int) {
	g := net.Graph()
	n := g.N()
	var inputs []any
	if active != nil {
		inputs = make([]any, n)
		for v := 0; v < n; v++ {
			inputs[v] = active[v]
		}
	}

	maxPhases := 4*n + 16 // termination backstop; never reached in practice

	outs := net.RunWithInput(func(ctx *local.Ctx) {
		if in, ok := ctx.Input().(bool); ok && !in {
			// Inactive: announce once so neighbors can discount this port.
			ctx.Broadcast(misMsg{State: misInactive, ID: int32(ctx.ID())})
			ctx.Next()
			ctx.SetOutput(false)
			return
		}
		state := misUndecided
		known := make([]byte, ctx.Degree())
		knownR := make([]uint64, ctx.Degree())
		knownID := make([]int32, ctx.Degree())
		for phase := 0; phase < maxPhases; phase++ {
			// Round A: lottery + state exchange.
			var r uint64
			if state == misUndecided {
				r = ctx.Rand().Uint64()
			}
			ctx.Broadcast(misMsg{State: state, R: r, ID: int32(ctx.ID())})
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m := ctx.Recv(p); m != nil {
					mm := m.(misMsg)
					known[p], knownR[p], knownID[p] = mm.State, mm.R, mm.ID
				}
			}
			if misDecided(state) {
				done := true
				for p := 0; p < ctx.Degree(); p++ {
					if !misDecided(known[p]) {
						done = false
						break
					}
				}
				if done {
					// Neighbors saw this node's final state in round A and
					// treat silence as "unchanged"; safe to halt.
					break
				}
			}
			if state == misUndecided {
				win := true
				for p := 0; p < ctx.Degree(); p++ {
					if known[p] != misUndecided {
						continue
					}
					if knownR[p] < r || (knownR[p] == r && int(knownID[p]) < ctx.ID()) {
						win = false
						break
					}
				}
				if win {
					state = misIn
				}
			}
			// Round B: announce joins.
			ctx.Broadcast(misMsg{State: state, ID: int32(ctx.ID())})
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m := ctx.Recv(p); m != nil {
					known[p] = m.(misMsg).State
				}
			}
			if state == misUndecided {
				for p := 0; p < ctx.Degree(); p++ {
					if known[p] == misIn {
						state = misOut
						break
					}
				}
			}
		}
		ctx.SetOutput(state == misIn)
	}, inputs)

	inMIS = make([]bool, n)
	for v, o := range outs {
		inMIS[v] = o.(bool)
	}
	return inMIS, net.Rounds()
}
