package dist

import (
	"deltacolor/local"
)

// Node states exchanged by the MIS protocol.
const (
	misUnknown byte = iota // placeholder before the first message arrives
	misUndecided
	misIn
	misOut
	misInactive
)

// misBye flags an int-path state announcement as the sender's last words:
// the sender halts this round, so the receiver stops staging messages on
// the port. This keeps the early-halt optimization free of avoidable dead
// sends (strict mode checks exactly that).
const misBye = 8

// misMsg is the round-A payload of active nodes: sender state, lottery
// value (only meaningful while undecided) and sender ID for tie-breaking.
// Round-B announcements and inactive notices carry only a state and travel
// as small integers over the int fast path, so half of the protocol's
// traffic is allocation-free; round A keeps the boxed struct (the 64-bit
// lottery does not fit an int32 payload), which the runtime's mixed-path
// delivery handles transparently.
type misMsg struct {
	State byte
	R     uint64
	ID    int32
}

// misDecided reports whether a known neighbor state is final.
func misDecided(s byte) bool { return s == misIn || s == misOut || s == misInactive }

// misState is the cross-round node state of the stepped protocol.
type misState struct {
	inactive bool
	afterB   bool // the next Step completes a round B (else a round A)
	state    byte
	phase    int
	r        uint64
	known    []byte
	knownR   []uint64
	knownID  []int32
	bye      byeTracker
}

// note records a state heard on port p, stripping and remembering a bye.
func (s *misState) note(p, st int) {
	if st&misBye != 0 {
		s.bye.note(p)
		st &^= misBye
	}
	s.known[p] = byte(st)
}

// LubyMIS computes a maximal independent set of G[active] with Luby's
// algorithm (active == nil means all nodes participate). Each phase costs
// two rounds: undecided nodes draw a lottery value and broadcast it; a node
// whose (value, ID) pair is a strict local minimum among undecided active
// neighbors joins the MIS; joiners announce themselves and their neighbors
// drop out. A node halts once it and all its neighbors are decided, so the
// returned round count is the measured cost, O(log n) w.h.p.
func LubyMIS(net *local.Network, active []bool) (inMIS []bool, rounds int) {
	g := net.Graph()
	n := g.N()
	var inputs []any
	if active != nil {
		inputs = make([]any, n)
		for v := 0; v < n; v++ {
			inputs[v] = active[v]
		}
	}

	maxPhases := 4*n + 16 // termination backstop; never reached in practice

	// sendA stages the round-A lottery broadcast, drawing a fresh lottery
	// value when still undecided.
	sendA := func(ctx *local.Ctx, s *misState) {
		s.r = 0
		if s.state == misUndecided {
			s.r = ctx.Rand().Uint64()
		}
		s.bye.castMsg(ctx, misMsg{State: s.state, R: s.r, ID: int32(ctx.ID())})
		s.afterB = false
	}

	outs := local.RunSteppedWithInput(net, local.Stepped[misState]{
		Init: func(ctx *local.Ctx, s *misState) bool {
			if in, ok := ctx.Input().(bool); ok && !in {
				// Inactive: announce once (with the bye flag: this node is
				// gone) so neighbors can discount and mute this port.
				ctx.BroadcastInt(int(misInactive) | misBye)
				s.inactive = true
				return true
			}
			s.state = misUndecided
			s.known = make([]byte, ctx.Degree())
			s.knownR = make([]uint64, ctx.Degree())
			s.knownID = make([]int32, ctx.Degree())
			s.bye.init(ctx.Degree())
			sendA(ctx, s)
			return true
		},
		Step: func(ctx *local.Ctx, s *misState) bool {
			if s.inactive {
				ctx.SetOutput(false)
				return false
			}
			if !s.afterB {
				// A round A just completed: collect states and lotteries.
				for p := 0; p < ctx.Degree(); p++ {
					if st, ok := ctx.RecvInt(p); ok {
						// State-only notice (an inactive neighbor's
						// announcement, or a bye that slid into round A).
						s.note(p, st)
						continue
					}
					if m := ctx.Recv(p); m != nil {
						mm := m.(misMsg)
						s.known[p], s.knownR[p], s.knownID[p] = mm.State, mm.R, mm.ID
					}
				}
				if misDecided(s.state) {
					done := true
					for p := 0; p < ctx.Degree(); p++ {
						if !misDecided(s.known[p]) {
							done = false
							break
						}
					}
					if done {
						// Halt: stage one last announcement with the bye
						// flag so listening neighbors mute this port, then
						// leave (staged sends of a halting node are still
						// delivered).
						s.bye.castInt(ctx, int(s.state)|misBye)
						ctx.SetOutput(s.state == misIn)
						return false
					}
				}
				if s.state == misUndecided {
					win := true
					for p := 0; p < ctx.Degree(); p++ {
						if s.known[p] != misUndecided {
							continue
						}
						if s.knownR[p] < s.r || (s.knownR[p] == s.r && int(s.knownID[p]) < ctx.ID()) {
							win = false
							break
						}
					}
					if win {
						s.state = misIn
					}
				}
				// Round B: announce joins (a bare state, int fast path).
				s.bye.castInt(ctx, int(s.state))
				s.afterB = true
				return true
			}
			// A round B just completed: record joins, drop out next to one.
			for p := 0; p < ctx.Degree(); p++ {
				if st, ok := ctx.RecvInt(p); ok {
					s.note(p, st)
				}
			}
			if s.state == misUndecided {
				for p := 0; p < ctx.Degree(); p++ {
					if s.known[p] == misIn {
						s.state = misOut
						break
					}
				}
			}
			s.phase++
			if s.phase >= maxPhases {
				ctx.SetOutput(s.state == misIn)
				return false
			}
			sendA(ctx, s)
			return true
		},
	}, inputs)

	inMIS = make([]bool, n)
	for v, o := range outs {
		inMIS[v] = o.(bool)
	}
	return inMIS, net.Rounds()
}
