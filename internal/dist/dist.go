// Package dist provides the message-passing building blocks the Δ-coloring
// algorithms are composed from, implemented as genuine per-node protocols on
// the local runtime (local.Network / local.Ctx):
//
//   - Linial: the O(log* n) color reduction of [Linial 1992] — every node
//     starts from its ID and repeatedly maps its color through a family of
//     low-degree polynomials over a prime field, shrinking the palette from
//     n to O(Δ²) in a deterministic, globally known number of rounds.
//   - ReduceColors: Barenboim–Elkin-style one-class-per-round reduction
//     from a k-coloring down to a target palette (Δ+1 in every caller),
//     the second half of the classic O(log* n + k) (Δ+1)-coloring.
//   - LubyMIS: Luby's randomized maximal independent set, restricted to an
//     active node subset; used for ruling sets over virtual (quotient)
//     graphs in the shattering and DCC phases.
//   - ListInstance / ListColorRandomized / ListColorDeterministic:
//     (deg+1)-list-coloring of a layer against an already colored partial
//     assignment — the subroutine the layering technique of Section 3
//     invokes once per layer, in random-trial and Linial-class-scheduled
//     deterministic variants (the paper's Theorems 18/19 substitutes,
//     DESIGN.md §3).
//   - Decompose / VerifyDecomposition: a Miller–Peng–Xu-style low-diameter
//     decomposition with exponential random shifts, standing in for the
//     deterministic network decomposition of [PS92] in the Theorem 21
//     variant.
//   - VerifyColoring: the centralized full-coloring checker every
//     algorithm runs before returning.
//
// How the primitives compose into the paper's algorithms:
//
//   - Algorithm 1 (randomized, Theorems 1/3): LubyMIS selects the base
//     layer among degree-choosable components, the T-node shattering
//     phase marks color-one pairs, and the resulting happy/leftover layers
//     are colored in reverse with ListColorRandomized instances.
//   - Algorithm 3 (deterministic, Theorem 4): Linial supplies the schedule
//     classes, the AGLP ruling set builds B0, and each peeled layer is one
//     ListColorDeterministic instance.
//   - Algorithm 4 (Theorem 21 variant): Decompose replaces the AGLP
//     recursion; the ruling set is drawn from cluster centers class by
//     class, then the same layered list colorings run.
//
// The network-run primitives (Linial, ReduceColors, LubyMIS, the list
// colorings) return the actual synchronous round count of the underlying
// run, so the experiment harness (and the CONGEST profile E11, which
// measures the byte size of every message they send) reports measured
// costs. Decompose is the one centralized construction: it computes the
// clustering directly and reports the simulated round cost of the shifted
// BFS it stands for.
package dist
