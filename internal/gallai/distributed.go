package gallai

import (
	"maps"
	"slices"

	"deltacolor/graph"
	"deltacolor/local"
)

// SelectDCCsDistributed is the genuinely message-passing form of
// SelectDCCs: every node gathers its radius-2r ball through the LOCAL
// runtime (rounds of neighborhood flooding, the textbook "collect your
// ball then compute" LOCAL algorithm), reconstructs the induced subgraph
// locally, and runs the same FindDCC it would run with global knowledge.
//
// It must agree exactly with the central shortcut (SelectDCCs charges
// 2r rounds without executing the message passing); the test suite
// asserts that agreement. Use the central form in experiments — this
// form costs real memory (every node holds its ball) and exists to
// validate the shortcut and to exercise the runtime's gather primitive.
//
// The gather itself dispatches on local.SteppedGatherEnabled: the default
// is the native stepped engine reading flat balls (no per-ball map
// materialization); the ablated path is the blocking coroutine shim. The
// two produce identical compacted subgraphs — edges are inserted in
// sorted-ID order either way — so the selected DCCs are byte-identical;
// the equivalence suite pins that.
func SelectDCCsDistributed(g *graph.G, r int) (dccs [][]int, owner []int, rounds int) {
	n := g.N()
	net := local.NewNetwork(g, 1)
	var outs []any
	if local.SteppedGatherEnabled() {
		balls := local.GatherStepped(net, 2*r)
		outs = make([]any, n)
		for v, b := range balls {
			outs[v] = dccFromFlatBall(b, r)
		}
	} else {
		outs = net.Run(func(ctx *local.Ctx) {
			ball := local.GatherBall(ctx, 2*r)
			ctx.SetOutput(dccFromBallInfo(ball, r))
		})
	}

	owner = make([]int, n)
	for v := range owner {
		owner[v] = -1
	}
	seen := map[string]int{}
	for v := 0; v < n; v++ {
		d, _ := outs[v].([]int)
		if d == nil {
			continue
		}
		key := dccKey(d)
		di, ok := seen[key]
		if !ok {
			di = len(dccs)
			seen[key] = di
			dccs = append(dccs, d)
		}
		owner[v] = di
	}
	return dccs, owner, net.Rounds()
}

// dccFromBallInfo rebuilds the known subgraph of a map-form ball with IDs
// compacted and runs FindDCC at the center. Known adjacency covers every
// node the DCC search can touch (distance <= r plus one hop of slack).
func dccFromBallInfo(ball *local.BallInfo, r int) []int {
	ids := slices.Sorted(maps.Keys(ball.Adj))
	idx := make(map[int]int, len(ids))
	for i, v := range ids {
		idx[v] = i
	}
	sub := graph.New(len(ids))
	// Insert edges in sorted-ID order: sub's adjacency lists (and so
	// FindDCC's traversal) must not inherit map iteration order.
	for _, v := range ids {
		nbrs := ball.Adj[v]
		iv := idx[v]
		for _, u := range nbrs {
			iu, ok := idx[u]
			if !ok || iv >= iu {
				continue
			}
			if !sub.HasEdge(iv, iu) {
				sub.MustEdge(iv, iu)
			}
		}
	}
	return mapBack(FindDCC(sub, idx[ball.Center], r), ids)
}

// dccFromFlatBall is dccFromBallInfo on the stepped engine's flat ball:
// same compaction, same sorted-ID edge-insertion order (entries are
// visited through a sorted index, adjacency stays in port order), so the
// reconstructed subgraph — and therefore the DCC — is identical to the
// map-form rebuild.
func dccFromFlatBall(b *local.Ball, r int) []int {
	order := make([]int, len(b.IDs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(x, y int) int { return int(b.IDs[x]) - int(b.IDs[y]) })
	ids := make([]int, len(order))
	idx := make(map[int32]int, len(order))
	for i, e := range order {
		ids[i] = int(b.IDs[e])
		idx[b.IDs[e]] = i
	}
	sub := graph.New(len(ids))
	for i, e := range order {
		iv := i
		for _, u := range b.Adj[e] {
			iu, ok := idx[u]
			if !ok || iv >= iu {
				continue
			}
			if !sub.HasEdge(iv, iu) {
				sub.MustEdge(iv, iu)
			}
		}
	}
	center, ok := idx[int32(b.Center)]
	if !ok {
		return nil
	}
	return mapBack(FindDCC(sub, center, r), ids)
}

// mapBack translates a compacted-ID DCC to external IDs; nil stays nil.
func mapBack(d []int, ids []int) []int {
	if d == nil {
		return nil
	}
	mapped := make([]int, len(d))
	for i, x := range d {
		mapped[i] = ids[x]
	}
	return mapped
}
