package gallai

import (
	"maps"
	"slices"

	"deltacolor/graph"
	"deltacolor/local"
)

// SelectDCCsDistributed is the genuinely message-passing form of
// SelectDCCs: every node gathers its radius-2r ball through the LOCAL
// runtime (rounds of neighborhood flooding, the textbook "collect your
// ball then compute" LOCAL algorithm), reconstructs the induced subgraph
// locally, and runs the same FindDCC it would run with global knowledge.
//
// It must agree exactly with the central shortcut (SelectDCCs charges
// 2r rounds without executing the message passing); the test suite
// asserts that agreement. Use the central form in experiments — this
// form costs real memory (every node holds its ball) and exists to
// validate the shortcut and to exercise the runtime's gather primitive.
func SelectDCCsDistributed(g *graph.G, r int) (dccs [][]int, owner []int, rounds int) {
	n := g.N()
	net := local.NewNetwork(g, 1)
	outs := net.Run(func(ctx *local.Ctx) {
		ball := local.GatherBall(ctx, 2*r)
		// Rebuild the known subgraph with IDs compacted. Known adjacency
		// covers every node the DCC search can touch (distance <= r plus
		// one hop of slack).
		ids := slices.Sorted(maps.Keys(ball.Adj))
		idx := make(map[int]int, len(ids))
		for i, v := range ids {
			idx[v] = i
		}
		sub := graph.New(len(ids))
		// Insert edges in sorted-ID order: sub's adjacency lists (and so
		// FindDCC's traversal) must not inherit map iteration order.
		for _, v := range ids {
			nbrs := ball.Adj[v]
			iv := idx[v]
			for _, u := range nbrs {
				iu, ok := idx[u]
				if !ok || iv >= iu {
					continue
				}
				if !sub.HasEdge(iv, iu) {
					sub.MustEdge(iv, iu)
				}
			}
		}
		d := FindDCC(sub, idx[ctx.ID()], r)
		if d == nil {
			ctx.SetOutput([]int(nil))
			return
		}
		mapped := make([]int, len(d))
		for i, x := range d {
			mapped[i] = ids[x]
		}
		ctx.SetOutput(mapped)
	})

	owner = make([]int, n)
	for v := range owner {
		owner[v] = -1
	}
	seen := map[string]int{}
	for v := 0; v < n; v++ {
		d, _ := outs[v].([]int)
		if d == nil {
			continue
		}
		key := dccKey(d)
		di, ok := seen[key]
		if !ok {
			di = len(dccs)
			seen[key] = di
			dccs = append(dccs, d)
		}
		owner[v] = di
	}
	return dccs, owner, net.Rounds()
}
