package gallai

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacolor/graph"
	"deltacolor/graph/gen"
)

func diamond() *graph.G {
	// K4 minus an edge: the smallest DCC besides C4.
	g := graph.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(3, 0)
	g.MustEdge(0, 2)
	return g
}

func TestIsGallaiTreeBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.G
		want bool
	}{
		{"K4", gen.Complete(4), true},
		{"C5", gen.Cycle(5), true},
		{"C6", gen.Cycle(6), false},
		{"C4", gen.Cycle(4), false},
		{"P5", gen.Path(5), true},
		{"diamond", diamond(), false},
		{"tree", gen.CompleteTree(3, 2), true},
		{"clique-chain", gen.CliqueChain(4, 3), true},
		{"K23", gen.CompleteBipartite(2, 3), false},
		{"hypercube", gen.Hypercube(3), false},
	}
	for _, c := range cases {
		if got := IsGallaiTree(c.g); got != c.want {
			t.Errorf("%s: IsGallaiTree=%v want %v", c.name, got, c.want)
		}
	}
}

func TestGallaiTreeGeneratorAgrees(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GallaiTree(rng, 1+rng.Intn(8), 5)
		if !IsGallaiTree(g) {
			t.Fatalf("seed=%d: generated Gallai tree not recognized", seed)
		}
	}
}

func TestIsDegreeChoosable(t *testing.T) {
	if IsDegreeChoosable(gen.Cycle(5)) {
		t.Fatal("odd cycle is not degree-choosable")
	}
	if !IsDegreeChoosable(gen.Cycle(6)) {
		t.Fatal("even cycle is degree-choosable")
	}
	if IsDegreeChoosable(gen.Complete(4)) {
		t.Fatal("clique is not degree-choosable")
	}
	if !IsDegreeChoosable(diamond()) {
		t.Fatal("diamond is degree-choosable")
	}
	// Disconnected: one choosable + one Gallai component => not choosable.
	g := graph.New(10)
	for i := 0; i < 6; i++ {
		g.MustEdge(i, (i+1)%6) // C6
	}
	g.MustEdge(6, 7)
	g.MustEdge(7, 8)
	g.MustEdge(8, 6) // triangle
	if IsDegreeChoosable(g) {
		t.Fatal("graph with a Gallai component is not degree-choosable")
	}
	if IsDegreeChoosable(graph.New(0)) {
		t.Fatal("empty graph")
	}
}

func TestIsDCCSet(t *testing.T) {
	d := diamond()
	if !IsDCCSet(d, []int{0, 1, 2, 3}) {
		t.Fatal("diamond is a DCC")
	}
	c6 := gen.Cycle(6)
	if !IsDCCSet(c6, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatal("C6 is a DCC")
	}
	c5 := gen.Cycle(5)
	if IsDCCSet(c5, []int{0, 1, 2, 3, 4}) {
		t.Fatal("C5 is not a DCC")
	}
	k4 := gen.Complete(4)
	if IsDCCSet(k4, []int{0, 1, 2, 3}) {
		t.Fatal("K4 is not a DCC")
	}
	p4 := gen.Path(4)
	if IsDCCSet(p4, []int{0, 1, 2, 3}) {
		t.Fatal("paths are not 2-connected")
	}
	if IsDCCSet(c6, []int{0, 1, 2}) {
		t.Fatal("too small / not 2-connected")
	}
}

func TestFindDCCOnEvenCycle(t *testing.T) {
	g := gen.Cycle(8)
	d := FindDCC(g, 0, 4)
	if d == nil {
		t.Fatal("C8 contains itself as a DCC of radius 4")
	}
	if !IsDCCSet(g, d) {
		t.Fatalf("returned set %v is not a DCC", d)
	}
	if r := SetRadius(g, d); r > 4 {
		t.Fatalf("radius %d > 4", r)
	}
}

func TestFindDCCRadiusTooSmall(t *testing.T) {
	g := gen.Cycle(20)
	if d := FindDCC(g, 0, 3); d != nil {
		t.Fatalf("C20 has no DCC of radius 3, got %v", d)
	}
}

func TestFindDCCOnOddCycleNone(t *testing.T) {
	g := gen.Cycle(9)
	if d := FindDCC(g, 0, 5); d != nil {
		t.Fatalf("C9 (odd, no other structure) has no DCC, got %v", d)
	}
}

func TestFindDCCDiamond(t *testing.T) {
	g := diamond()
	d := FindDCC(g, 0, 2)
	if d == nil {
		t.Fatal("diamond not found")
	}
	if !IsDCCSet(g, d) {
		t.Fatal("not a DCC")
	}
}

func TestFindDCCOnGallaiTreeNone(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GallaiTree(rng, 5, 4)
		for v := 0; v < g.N(); v += 3 {
			if d := FindDCC(g, v, 3); d != nil {
				t.Fatalf("seed=%d: DCC %v found in a Gallai tree", seed, d)
			}
		}
	}
}

// Soundness property: whatever FindDCC returns is a DCC of radius <= r.
func TestFindDCCSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(30)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.12 {
					g.MustEdge(u, v)
				}
			}
		}
		r := 2 + rng.Intn(3)
		v := rng.Intn(n)
		d := FindDCC(g, v, r)
		if d == nil {
			return true
		}
		if !IsDCCSet(g, d) {
			return false
		}
		if rad := SetRadius(g, d); rad < 0 || rad > r {
			return false
		}
		// Must contain v.
		found := false
		for _, u := range d {
			if u == v {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectDCCs(t *testing.T) {
	g := gen.Cycle(8)
	dccs, owner, rounds := SelectDCCs(g, 4)
	if rounds != 8 {
		t.Fatalf("rounds=%d", rounds)
	}
	if len(dccs) == 0 {
		t.Fatal("C8 nodes all sit in a DCC")
	}
	for v := 0; v < 8; v++ {
		if owner[v] < 0 {
			t.Fatalf("node %d found no DCC", v)
		}
	}
	// Dedup: identical node sets must collapse.
	for i, d := range dccs {
		if !IsDCCSet(g, d) {
			t.Fatalf("dcc %d invalid", i)
		}
	}
}

func TestBruteListColorSolvable(t *testing.T) {
	g := diamond()
	lists := map[int][]int{0: {0, 1, 2}, 1: {0, 1}, 2: {0, 1, 2}, 3: {0, 1}}
	sol, err := BruteListColor(g, []int{0, 1, 2, 3}, lists)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range sol {
		ok := false
		for _, x := range lists[v] {
			if x == c {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("node %d color %d not in list", v, c)
		}
		for _, u := range g.Neighbors(v) {
			if sol[u] == c {
				t.Fatalf("conflict on edge (%d,%d)", v, u)
			}
		}
	}
}

func TestBruteListColorInfeasible(t *testing.T) {
	g := gen.Complete(3)
	lists := map[int][]int{0: {0}, 1: {0}, 2: {0, 1}}
	if _, err := BruteListColor(g, []int{0, 1, 2}, lists); err == nil {
		t.Fatal("want infeasibility error")
	}
}

func TestBruteListColorMissingList(t *testing.T) {
	g := gen.Complete(3)
	lists := map[int][]int{0: {0}, 1: {1}}
	if _, err := BruteListColor(g, []int{0, 1, 2}, lists); err == nil {
		t.Fatal("want missing-list error")
	}
}

// Theorem 8 as a property: DCCs always admit degree-list colorings, odd
// cycles and cliques do not (for uniform minimal lists).
func TestTheorem8Property(t *testing.T) {
	// C6 with exactly-degree lists is colorable.
	c6 := gen.Cycle(6)
	lists := map[int][]int{}
	for v := 0; v < 6; v++ {
		lists[v] = []int{0, 1} // deg = 2
	}
	if _, err := BruteListColor(c6, []int{0, 1, 2, 3, 4, 5}, lists); err != nil {
		t.Fatalf("C6 degree-list should be colorable: %v", err)
	}
	// C5 with identical 2-lists is not.
	c5 := gen.Cycle(5)
	lists5 := map[int][]int{}
	for v := 0; v < 5; v++ {
		lists5[v] = []int{0, 1}
	}
	if _, err := BruteListColor(c5, []int{0, 1, 2, 3, 4}, lists5); err == nil {
		t.Fatal("odd cycle with uniform 2-lists must be infeasible")
	}
	// K4 with uniform 3-lists is not colorable.
	k4 := gen.Complete(4)
	lists4 := map[int][]int{}
	for v := 0; v < 4; v++ {
		lists4[v] = []int{0, 1, 2}
	}
	if _, err := BruteListColor(k4, []int{0, 1, 2, 3}, lists4); err == nil {
		t.Fatal("K4 with uniform 3-lists must be infeasible")
	}
}

// Random DCCs from random graphs are degree-list-colorable for arbitrary
// list assignments of degree size (spot check with random lists).
func TestDCCAlwaysDegreeColorableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					g.MustEdge(u, v)
				}
			}
		}
		d := FindDCC(g, rng.Intn(n), 3)
		if d == nil {
			return true
		}
		sub, orig, err := g.InducedSubgraph(d)
		if err != nil {
			return false
		}
		// Random lists of size exactly deg within the component.
		lists := map[int][]int{}
		for i, u := range orig {
			deg := sub.Deg(i)
			off := rng.Intn(3)
			l := make([]int, deg)
			for c := 0; c < deg; c++ {
				l[c] = off + c
			}
			lists[u] = l
		}
		_, err = BruteListColor(g, d, lists)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeLists(t *testing.T) {
	g := gen.Cycle(6)
	partial := []int{-1, -1, -1, 2, -1, 1}
	lists := DegreeLists(g, []int{0, 1, 2}, partial, 3)
	// Node 0: outside neighbor 5 has color 1 -> list {0, 2}.
	if len(lists[0]) != 2 || lists[0][0] != 0 || lists[0][1] != 2 {
		t.Fatalf("lists[0]=%v", lists[0])
	}
	// Node 2: outside neighbor 3 has color 2 -> list {0, 1}.
	if len(lists[2]) != 2 || lists[2][1] != 1 {
		t.Fatalf("lists[2]=%v", lists[2])
	}
	// Node 1: no colored outside neighbors -> full {0,1,2}.
	if len(lists[1]) != 3 {
		t.Fatalf("lists[1]=%v", lists[1])
	}
}

// TestTheorem8Exhaustive verifies Theorem 8 (a graph is degree-choosable
// iff it is not a Gallai tree) on EVERY connected graph with up to 6
// nodes — no generator bias, the full statement.
func TestTheorem8Exhaustive(t *testing.T) {
	for n := 2; n <= 6; n++ {
		pairs := n * (n - 1) / 2
		checked := 0
		for mask := uint64(0); mask < 1<<pairs; mask++ {
			g := graph.New(n)
			bit := 0
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if mask&(1<<bit) != 0 {
						g.MustEdge(u, v)
					}
					bit++
				}
			}
			if !g.IsConnected() {
				continue
			}
			checked++
			gallaiTree := IsGallaiTree(g)
			choosable := IsDegreeChoosable(g)
			if gallaiTree == choosable {
				t.Fatalf("n=%d mask=%d: IsGallaiTree=%v and IsDegreeChoosable=%v must differ (Theorem 8)", n, mask, gallaiTree, choosable)
			}
		}
		if checked == 0 {
			t.Fatalf("n=%d: no connected graphs enumerated", n)
		}
	}
}
