package gallai

import (
	"fmt"
	"sort"

	"deltacolor/graph"
)

// BruteListColor finds an exact proper list coloring of the induced
// subgraph on nodes via backtracking with a most-constrained-first
// heuristic. lists maps original node ID -> allowed colors. Returns
// original-ID -> color, or an error when no coloring exists.
//
// This is phase (9)/(5)'s "brute force each component" for DCCs and free
// nodes: by Theorem 8 a DCC always admits a coloring for deg-sized lists,
// so for DCC inputs the error path indicates a caller bug.
func BruteListColor(g *graph.G, nodes []int, lists map[int][]int) (map[int]int, error) {
	sub, orig, err := g.InducedSubgraph(nodes)
	if err != nil {
		return nil, fmt.Errorf("brute list color: %w", err)
	}
	n := sub.N()
	local := make([][]int, n)
	for i, u := range orig {
		l, ok := lists[u]
		if !ok {
			return nil, fmt.Errorf("brute list color: node %d has no list", u)
		}
		local[i] = append([]int(nil), l...)
	}
	// Order nodes by ascending list slack (|L| - deg), then by degree
	// descending: most constrained first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa := len(local[order[a]]) - sub.Deg(order[a])
		sb := len(local[order[b]]) - sub.Deg(order[b])
		if sa != sb {
			return sa < sb
		}
		return sub.Deg(order[a]) > sub.Deg(order[b])
	})
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	if !bruteRec(sub, order, 0, local, colors) {
		return nil, fmt.Errorf("brute list color: no proper list coloring exists for %d nodes", n)
	}
	out := make(map[int]int, n)
	for i, u := range orig {
		out[u] = colors[i]
	}
	return out, nil
}

func bruteRec(g *graph.G, order []int, k int, lists [][]int, colors []int) bool {
	if k == len(order) {
		return true
	}
	v := order[k]
	for _, c := range lists[v] {
		ok := true
		for _, u := range g.Neighbors(v) {
			if colors[u] == c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		colors[v] = c
		if bruteRec(g, order, k+1, lists, colors) {
			return true
		}
		colors[v] = -1
	}
	return false
}

// DegreeLists builds the canonical degree-choosability lists for a
// component against a partial coloring of the rest of the graph: node v's
// list is {0..delta-1} minus the colors of its already-colored neighbors
// outside the component. For a DCC these lists have size >= deg within the
// component, so a coloring exists by Theorem 8.
func DegreeLists(g *graph.G, nodes []int, partial []int, delta int) map[int][]int {
	inComp := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		inComp[v] = true
	}
	lists := make(map[int][]int, len(nodes))
	for _, v := range nodes {
		used := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if !inComp[u] && partial[u] >= 0 {
				used[partial[u]] = true
			}
		}
		var l []int
		for c := 0; c < delta; c++ {
			if !used[c] {
				l = append(l, c)
			}
		}
		lists[v] = l
	}
	return lists
}
