package gallai

import (
	"fmt"

	"deltacolor/graph"
)

// The executable forms of the structural lemmas of Section 2.2. These are
// used both by tests (the lemmas must hold on DCC-free inputs) and by
// experiment E5/E9, which measures the expansion they predict.

// CheckUniqueBFS verifies Lemma 10 at node v: in a graph with no DCC of
// radius <= r, the depth-r BFS tree rooted at v is unique — every node at
// level t in [1, r] has exactly one neighbor on level t-1. Returns an error
// naming the first violating node.
func CheckUniqueBFS(g *graph.G, v, r int) error {
	res := g.BFSLimited(v, r)
	for _, u := range res.Order {
		t := res.Dist[u]
		if t < 1 || t > r {
			continue
		}
		up := 0
		for _, w := range g.Neighbors(u) {
			if res.Dist[w] == t-1 {
				up++
			}
		}
		if up != 1 {
			return fmt.Errorf("unique BFS: node %d at level %d has %d up-edges", u, t, up)
		}
	}
	return nil
}

// CheckNeighborhoodCliques verifies Lemma 13 at node v: with no DCC of
// radius 1, the connected components of G[N(v)] are cliques.
func CheckNeighborhoodCliques(g *graph.G, v int) error {
	nbrs := g.Neighbors(v)
	sub, orig, err := g.InducedSubgraph(nbrs)
	if err != nil {
		return err
	}
	comp, count := sub.ConnectedComponents()
	byComp := make([][]int, count)
	for i, c := range comp {
		byComp[c] = append(byComp[c], i)
	}
	for _, nodes := range byComp {
		if !sub.IsCliqueSet(nodes) {
			back := make([]int, len(nodes))
			for i, x := range nodes {
				back[i] = orig[x]
			}
			return fmt.Errorf("neighborhood cliques: component %v of N(%d) is not a clique", back, v)
		}
	}
	return nil
}

// SphereSizes returns |B_t(v)| for t = 0..r: the number of nodes at
// distance exactly t from v. Used to measure the expansion promised by
// Lemmas 12/14/15.
func SphereSizes(g *graph.G, v, r int) []int {
	res := g.BFSLimited(v, r)
	out := make([]int, r+1)
	for _, u := range res.Order {
		if res.Dist[u] <= r {
			out[res.Dist[u]]++
		}
	}
	return out
}

// ExpansionReport captures the measured vs predicted sphere growth at one
// node for experiment E5.
type ExpansionReport struct {
	Node      int
	Radius    int
	Measured  []int     // |B_t(v)|
	Predicted []float64 // (Δ-1)^(t/2) per Lemma 15 (degree-Δ, DCC-free case)
	Satisfied bool      // measured >= predicted at every even level
}

// MeasureExpansion evaluates Lemma 15's bound at v: if within radius r
// there is no DCC and all nodes have degree Δ, then |B_t(v)| >= (Δ-1)^(t/2)
// for even t. The caller is responsible for the precondition; Satisfied
// simply records whether the inequality holds.
func MeasureExpansion(g *graph.G, v, r, delta int) ExpansionReport {
	rep := ExpansionReport{Node: v, Radius: r}
	rep.Measured = SphereSizes(g, v, r)
	rep.Predicted = make([]float64, r+1)
	rep.Satisfied = true
	for t := 0; t <= r; t++ {
		if t%2 == 0 {
			rep.Predicted[t] = pow(float64(delta-1), t/2)
			if float64(rep.Measured[t]) < rep.Predicted[t] {
				rep.Satisfied = false
			}
		}
	}
	return rep
}

// HasDCCFreeBall reports whether the radius-r ball around v contains no DCC
// of radius <= r anchored at any of its nodes. Exhaustive (calls FindDCC at
// each ball node); intended for experiment preconditions on small graphs.
func HasDCCFreeBall(g *graph.G, v, r int) bool {
	for _, u := range g.Ball(v, r) {
		if FindDCC(g, u, r) != nil {
			return false
		}
	}
	return true
}

// MinDegreeWithin returns the minimum degree among nodes within distance r
// of v (the Lemma 12/15 preconditions constrain degrees in the ball).
func MinDegreeWithin(g *graph.G, v, r int) int {
	minDeg := -1
	for _, u := range g.Ball(v, r) {
		if minDeg < 0 || g.Deg(u) < minDeg {
			minDeg = g.Deg(u)
		}
	}
	return minDeg
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
