package gallai

import (
	"sort"

	"deltacolor/graph"
)

// FindDCC searches for a degree-choosable component of radius at most r
// containing v. Detection is sound: a non-nil result always induces a
// 2-connected subgraph that is neither a clique nor an induced odd cycle,
// with radius <= r.
//
// The search is built around the canonical small DCCs:
//
//	(1) a short cycle through v whose node set already induces a DCC
//	    (even chordless cycle, or any cycle with chords that is not a
//	    clique);
//	(2) a short cycle through v plus one "ear" node attached twice
//	    (theta-like subgraphs such as K4 minus an edge);
//	(3) for small balls, the block of v (exact but more expensive).
//
// It can miss deeply-buried DCCs; the Δ-coloring pipeline tolerates
// incompleteness (missed DCCs shift work to the shattering phases and the
// repair safety net, never breaking correctness). See DESIGN.md §3.
func FindDCC(g *graph.G, v, r int) []int {
	if r < 1 {
		return nil
	}
	// (1)+(2): cycle-based search inside the radius-r ball.
	if got := cycleDCC(g, v, r); got != nil {
		return got
	}
	// (3): exact block search on small balls only.
	ball := g.Ball(v, 2*r)
	if len(ball) <= 48 {
		if got := blockDCC(g, ball, v, r); got != nil {
			return got
		}
	}
	return nil
}

// cycleDCC finds short cycles through v and upgrades them to DCCs.
func cycleDCC(g *graph.G, v, r int) []int {
	cycles := shortCyclesThrough(g, v, r)
	for _, cyc := range cycles {
		if rad := SetRadius(g, cyc); rad < 0 || rad > r {
			continue
		}
		if IsDCCSet(g, cyc) {
			return cyc
		}
		// The cycle induces a clique (triangle) or a chordless odd cycle:
		// try attaching an ear node x adjacent to >= 2 cycle nodes.
		inCyc := make(map[int]bool, len(cyc))
		for _, u := range cyc {
			inCyc[u] = true
		}
		cand := map[int]int{}
		var candOrder []int // deterministic ear order (map range varies per run)
		for _, u := range cyc {
			for _, x := range g.Neighbors(u) {
				if !inCyc[x] {
					if cand[x] == 0 {
						candOrder = append(candOrder, x)
					}
					cand[x]++
				}
			}
		}
		for _, x := range candOrder {
			if cand[x] < 2 {
				continue
			}
			ext := append(append([]int(nil), cyc...), x)
			if rad := SetRadius(g, ext); rad < 0 || rad > r {
				continue
			}
			if IsDCCSet(g, ext) {
				return ext
			}
		}
	}
	return nil
}

// shortCyclesThrough returns node sets of up to a few short cycles passing
// through v, found via branch-labelled BFS: a non-tree edge between
// different BFS branches closes a cycle through v consisting of the two
// tree paths plus the edge.
func shortCyclesThrough(g *graph.G, v, r int) [][]int {
	res := g.BFSLimited(v, r)
	branch := make(map[int]int)
	branch[v] = -1
	for _, u := range res.Order {
		if u == v {
			continue
		}
		p := res.Parent[u]
		if p == v {
			branch[u] = u
		} else {
			branch[u] = branch[p]
		}
	}
	type edge struct{ x, y, length int }
	var closers []edge
	for _, x := range res.Order {
		for _, y := range g.Neighbors(x) {
			if x >= y {
				continue
			}
			dy, ok := branch[y]
			if !ok {
				continue
			}
			if res.Parent[y] == x || res.Parent[x] == y {
				continue
			}
			if branch[x] == dy {
				continue // same branch: cycle may avoid v
			}
			closers = append(closers, edge{x, y, res.Dist[x] + res.Dist[y] + 1})
		}
	}
	// Shortest few cycles first (insertion sort; the list is short).
	for i := 1; i < len(closers); i++ {
		for j := i; j > 0 && closers[j].length < closers[j-1].length; j-- {
			closers[j], closers[j-1] = closers[j-1], closers[j]
		}
	}
	const maxCycles = 8
	var out [][]int
	for i := 0; i < len(closers) && len(out) < maxCycles; i++ {
		e := closers[i]
		set := map[int]bool{}
		for u := e.x; u != -1; u = res.Parent[u] {
			set[u] = true
		}
		for u := e.y; u != -1; u = res.Parent[u] {
			set[u] = true
		}
		nodes := make([]int, 0, len(set))
		for u := range set {
			nodes = append(nodes, u)
		}
		sort.Ints(nodes) // map range order varies per run; callers need stable sets
		out = append(out, nodes)
	}
	return out
}

// blockDCC is the exact search used on small balls: the block containing v
// in the induced ball subgraph, greedily shrunk to radius r.
func blockDCC(g *graph.G, ball []int, v, r int) []int {
	sub, orig, err := g.InducedSubgraph(ball)
	if err != nil {
		return nil
	}
	const center = 0 // BFS order puts v first
	blocks, _ := sub.BiconnectedComponents()
	for _, b := range blocks {
		if !containsNode(b.Nodes, center) || BlockIsCliqueOrOddCycle(sub, b) {
			continue
		}
		if got := shrinkDCC(sub, b.Nodes, center, r); got != nil {
			out := make([]int, len(got))
			for i, u := range got {
				out[i] = orig[u]
			}
			return out
		}
	}
	return nil
}

// shrinkDCC greedily peels nodes farthest from the center while keeping
// the DCC property, aiming for radius <= r. Returns nil on failure.
func shrinkDCC(sub *graph.G, nodes []int, center, r int) []int {
	cur := append([]int(nil), nodes...)
	if !IsDCCSet(sub, cur) {
		return nil
	}
	for {
		if rad := SetRadius(sub, cur); rad >= 0 && rad <= r {
			return cur
		}
		dists := distWithin(sub, cur, center)
		best, bestDist := -1, -1
		for _, cand := range cur {
			if cand == center {
				continue
			}
			if d := dists[cand]; d > bestDist {
				if next := withoutNode(cur, cand); IsDCCSet(sub, next) {
					best, bestDist = cand, d
				}
			}
		}
		if best < 0 {
			return nil
		}
		cur = withoutNode(cur, best)
	}
}

// distWithin returns distances from center within the induced subgraph on
// nodes, keyed by original node ID (-1 when unreachable).
func distWithin(g *graph.G, nodes []int, center int) map[int]int {
	sub, orig, err := g.InducedSubgraph(nodes)
	out := map[int]int{}
	if err != nil {
		return out
	}
	ci := -1
	for i, u := range orig {
		if u == center {
			ci = i
		}
	}
	if ci < 0 {
		return out
	}
	res := sub.BFS(ci)
	for i, u := range orig {
		out[u] = res.Dist[i]
	}
	return out
}

func containsNode(nodes []int, v int) bool {
	for _, u := range nodes {
		if u == v {
			return true
		}
	}
	return false
}

func withoutNode(nodes []int, v int) []int {
	out := make([]int, 0, len(nodes)-1)
	for _, u := range nodes {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// SelectDCCs runs phase (1) of the randomized algorithm: every node that is
// contained in a DCC of radius <= r selects one; the returned slice holds
// the distinct selected DCCs, and owner maps each selecting node to its
// DCC's index (-1 when none found).
//
// rounds reports the LOCAL cost charged: collecting the radius-2r ball
// costs 2r rounds (see local.GatherBall).
func SelectDCCs(g *graph.G, r int) (dccs [][]int, owner []int, rounds int) {
	owner = make([]int, g.N())
	for v := range owner {
		owner[v] = -1
	}
	seen := map[string]int{}
	for v := 0; v < g.N(); v++ {
		d := FindDCC(g, v, r)
		if d == nil {
			continue
		}
		key := dccKey(d)
		if idx, ok := seen[key]; ok {
			owner[v] = idx
			continue
		}
		seen[key] = len(dccs)
		owner[v] = len(dccs)
		dccs = append(dccs, d)
	}
	return dccs, owner, 2 * r
}

func dccKey(nodes []int) string {
	sorted := append([]int(nil), nodes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	b := make([]byte, 0, len(sorted)*3)
	for _, x := range sorted {
		b = append(b, byte(x), byte(x>>8), byte(x>>16))
	}
	return string(b)
}
