// Package gallai implements the graph-colorability machinery of Section 2
// of the paper: Gallai trees, degree-choosability (Theorem 8), detection of
// degree-choosable components (DCCs) of bounded radius, exact brute-force
// list coloring of small components, and the structural lemmas
// (unique BFS trees, neighborhood clique decomposition, BFS expansion) as
// executable checks.
package gallai

import (
	"deltacolor/graph"
)

// IsGallaiTree reports whether every block (maximal 2-connected component)
// of g is a clique or an odd cycle. By Theorem 8 [ERT79, Viz76] a connected
// graph is degree-choosable iff it is NOT a Gallai tree.
func IsGallaiTree(g *graph.G) bool {
	blocks, _ := g.BiconnectedComponents()
	for _, b := range blocks {
		if !BlockIsCliqueOrOddCycle(g, b) {
			return false
		}
	}
	return true
}

// BlockIsCliqueOrOddCycle classifies one block. Blocks are induced
// subgraphs (every edge of g between block nodes belongs to the block), so
// induced tests on the node set are sound.
func BlockIsCliqueOrOddCycle(g *graph.G, b graph.Block) bool {
	if len(b.Nodes) <= 2 {
		return true // single node or bridge edge = K1/K2
	}
	if g.IsCliqueSet(b.Nodes) {
		return true
	}
	isCycle, odd := g.IsInducedCycleSet(b.Nodes)
	return isCycle && odd
}

// IsDegreeChoosable reports whether every connected component of g is
// degree-choosable, i.e. admits a proper coloring for every list
// assignment with |L(v)| >= deg(v). A graph with any Gallai-tree component
// is not degree-choosable.
func IsDegreeChoosable(g *graph.G) bool {
	if g.N() == 0 {
		return false
	}
	comp, count := g.ConnectedComponents()
	byComp := make([][]int, count)
	for v, c := range comp {
		byComp[c] = append(byComp[c], v)
	}
	for _, nodes := range byComp {
		sub, _, err := g.InducedSubgraph(nodes)
		if err != nil {
			return false
		}
		if IsGallaiTree(sub) {
			return false
		}
	}
	return true
}

// IsDCCSet reports whether the given node set induces a degree-choosable
// component in g: 2-connected, neither a clique nor an (induced) odd cycle.
func IsDCCSet(g *graph.G, nodes []int) bool {
	if len(nodes) < 4 {
		// The smallest DCC is the 4-cycle (2-connected non-clique non-odd-
		// cycle graphs need >= 4 nodes: on 3 nodes the only 2-connected
		// graph is K3).
		return false
	}
	sub, _, err := g.InducedSubgraph(nodes)
	if err != nil {
		return false
	}
	if !isBiconnected(sub) {
		return false
	}
	if sub.IsClique() || sub.IsOddCycle() {
		return false
	}
	return true
}

// isBiconnected reports whether the whole graph is 2-connected (one block
// covering all nodes, n >= 3 — by convention K2 is not 2-connected here,
// matching "2-connected components that are cliques or odd cycles").
func isBiconnected(g *graph.G) bool {
	if g.N() < 3 {
		return false
	}
	if !g.IsConnected() {
		return false
	}
	blocks, _ := g.BiconnectedComponents()
	for _, b := range blocks {
		if len(b.Nodes) == g.N() {
			return true
		}
	}
	return false
}

// SetRadius returns the radius of the induced subgraph on nodes
// (-1 if disconnected).
func SetRadius(g *graph.G, nodes []int) int {
	sub, _, err := g.InducedSubgraph(nodes)
	if err != nil {
		return -1
	}
	return sub.Radius()
}
