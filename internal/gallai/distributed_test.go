package gallai

import (
	"math/rand"
	"reflect"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

// TestSelectDCCsDistributedAgreesWithCentral: the message-passing form
// must find the same DCC selection as the central shortcut, node by node
// (same owner structure up to DCC index renumbering, same DCC node sets).
func TestSelectDCCsDistributedAgreesWithCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		g    *graph.G
		r    int
	}{
		{"torus 6x6", gen.Torus(6, 6), 2},
		{"hypercube d=3", gen.Hypercube(3), 2},
		{"random 4-regular", gen.MustRandomRegular(rng, 64, 4), 2},
		{"petersen", gen.Petersen(), 3},
		{"clique chain (no DCCs)", gen.CliqueChain(4, 6), 2},
		{"random tree (no DCCs)", gen.RandomTree(rng, 48), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cd, cOwner, _ := SelectDCCs(tc.g, tc.r)
			dd, dOwner, rounds := SelectDCCsDistributed(tc.g, tc.r)

			// Node-level agreement on EXISTENCE: a node finds a DCC with
			// global knowledge iff it finds one from its gathered ball.
			// The specific DCC may differ (FindDCC tie-breaks by traversal
			// order, which the ID compaction permutes), so we check the
			// distributed choice's validity instead of set equality.
			for v := 0; v < tc.g.N(); v++ {
				co, do := cOwner[v], dOwner[v]
				if (co < 0) != (do < 0) {
					t.Fatalf("node %d: central owner %d, distributed %d", v, co, do)
				}
				if do < 0 {
					continue
				}
				d := dd[do]
				if !IsDCCSet(tc.g, d) {
					t.Fatalf("node %d: distributed selection %v is not a DCC in G", v, d)
				}
				if rad := SetRadius(tc.g, d); rad > tc.r {
					t.Fatalf("node %d: distributed DCC radius %d > r=%d", v, rad, tc.r)
				}
			}
			_ = cd
			if rounds <= 0 && len(dd) > 0 {
				t.Fatalf("distributed run charged %d rounds", rounds)
			}
		})
	}
}

// TestSelectDCCsDistributedSteppedMatchesBlocking is the byte-identity
// pin for the engine port: the stepped flat-ball path and the blocking
// coroutine shim must return the exact same DCC sets, owner array and
// round count — not merely owner-existence agreement. The reconstructed
// per-node subgraphs are identical (sorted-ID edge insertion either way),
// so FindDCC's tie-breaking cannot diverge.
func TestSelectDCCsDistributedSteppedMatchesBlocking(t *testing.T) {
	prev := local.SteppedGatherEnabled()
	defer local.SetSteppedGather(prev)

	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *graph.G
		r    int
	}{
		{"torus 6x6", gen.Torus(6, 6), 2},
		{"hypercube d=3", gen.Hypercube(3), 2},
		{"random 4-regular", gen.MustRandomRegular(rng, 64, 4), 2},
		{"petersen", gen.Petersen(), 3},
		{"random tree", gen.RandomTree(rng, 48), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			local.SetSteppedGather(true)
			sd, sOwner, sRounds := SelectDCCsDistributed(tc.g, tc.r)
			local.SetSteppedGather(false)
			bd, bOwner, bRounds := SelectDCCsDistributed(tc.g, tc.r)
			if sRounds != bRounds {
				t.Fatalf("rounds: stepped %d, blocking %d", sRounds, bRounds)
			}
			if !reflect.DeepEqual(sd, bd) {
				t.Fatalf("DCC sets diverge:\nstepped  %v\nblocking %v", sd, bd)
			}
			if !reflect.DeepEqual(sOwner, bOwner) {
				t.Fatalf("owners diverge:\nstepped  %v\nblocking %v", sOwner, bOwner)
			}
		})
	}
}
