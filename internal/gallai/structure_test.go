package gallai

import (
	"math/rand"
	"testing"

	"deltacolor/graph/gen"
)

func TestCheckUniqueBFSOnTree(t *testing.T) {
	// Trees have no DCCs at all, so BFS trees are unique at any radius.
	g := gen.CompleteTree(3, 3)
	for v := 0; v < g.N(); v += 5 {
		if err := CheckUniqueBFS(g, v, 3); err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
	}
}

func TestCheckUniqueBFSOnHypercubeFails(t *testing.T) {
	// Q3 is full of 4-cycles (DCCs of radius 2), so unique-BFS must fail
	// somewhere at radius 2.
	g := gen.Hypercube(3)
	failed := false
	for v := 0; v < g.N(); v++ {
		if err := CheckUniqueBFS(g, v, 2); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("expected unique-BFS violations on the hypercube")
	}
}

func TestLemma10OnDCCFreeGraphs(t *testing.T) {
	// Lemma 10: no DCC of radius <= r  =>  unique BFS tree of depth r.
	// Gallai trees have no DCCs of any radius.
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GallaiTree(rng, 6, 4)
		for v := 0; v < g.N(); v += 2 {
			for r := 1; r <= 3; r++ {
				if FindDCC(g, v, r) == nil && HasDCCFreeBall(g, v, r) {
					if err := CheckUniqueBFS(g, v, r); err != nil {
						t.Fatalf("seed=%d v=%d r=%d: %v", seed, v, r, err)
					}
				}
			}
		}
	}
}

func TestCheckNeighborhoodCliques(t *testing.T) {
	// Lemma 13 on a clique chain: neighborhoods decompose into cliques.
	g := gen.CliqueChain(4, 3)
	for v := 0; v < g.N(); v++ {
		if err := CheckNeighborhoodCliques(g, v); err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
	}
	// C4 has a DCC of radius 1... (C4 radius is 1? eccentricity 2) — use
	// the diamond, which has a radius-1 DCC and violates Lemma 13 at the
	// degree-3 nodes.
	d := diamond()
	bad := false
	for v := 0; v < 4; v++ {
		if CheckNeighborhoodCliques(d, v) != nil {
			bad = true
		}
	}
	if !bad {
		t.Fatal("diamond should violate neighborhood-clique decomposition")
	}
}

func TestSphereSizes(t *testing.T) {
	g := gen.Cycle(10)
	s := SphereSizes(g, 0, 3)
	want := []int{1, 2, 2, 2}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sphere sizes %v", s)
		}
	}
}

func TestMeasureExpansionOnTree(t *testing.T) {
	// A complete (Δ-1)-ary tree with every internal node of degree Δ is
	// DCC-free and meets the Lemma 15 bound inside the tree.
	delta := 4
	g := gen.CompleteTree(delta-1, 6) // root degree 3... internal degree 4
	rep := MeasureExpansion(g, 0, 4, delta)
	if !rep.Satisfied {
		t.Fatalf("tree should satisfy (Δ-1)^(t/2): %+v", rep)
	}
}

func TestMinDegreeWithin(t *testing.T) {
	g := gen.Path(10)
	if MinDegreeWithin(g, 5, 2) != 2 {
		t.Fatal("interior of path has min degree 2 within radius 2")
	}
	if MinDegreeWithin(g, 0, 1) != 1 {
		t.Fatal("endpoint has degree 1")
	}
}

func TestHasDCCFreeBall(t *testing.T) {
	if !HasDCCFreeBall(gen.Cycle(9), 0, 2) {
		t.Fatal("odd cycle balls are DCC-free")
	}
	if HasDCCFreeBall(gen.Hypercube(3), 0, 2) {
		t.Fatal("hypercube balls contain 4-cycles")
	}
}

func TestSetRadius(t *testing.T) {
	g := gen.Cycle(8)
	if r := SetRadius(g, []int{0, 1, 2, 3, 4, 5, 6, 7}); r != 4 {
		t.Fatalf("C8 radius %d", r)
	}
	if r := SetRadius(g, []int{0, 4}); r != -1 {
		t.Fatalf("disconnected set radius %d", r)
	}
}
