// Package obs holds the observability plumbing shared by cmd/deltacolor
// and cmd/benchsuite: pprof profile lifecycles and tracer install/export
// around a run.
package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"deltacolor/local"
)

// StartCPUProfile starts a CPU profile writing to path and returns the
// function that stops it and closes the file. With an empty path it is a
// no-op returning a nil-error stop.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an allocs-inclusive heap profile to path (after
// a GC, so the live set is accurate). Empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// InstallTracer creates a tracer at the given level, installs it as the
// process-wide default so every network built by the pipelines attaches
// it, and returns it. Level TraceOff installs nothing and returns nil.
func InstallTracer(level local.TraceLevel) *local.Tracer {
	if level <= local.TraceOff {
		return nil
	}
	tr := local.NewTracer(level, 0)
	local.SetDefaultTracer(tr)
	return tr
}

// WriteTraces exports the tracer's dump (with span as the pipeline
// timeline, may be nil) to the requested files: chromePath in Chrome
// trace-event JSON, jsonlPath in compact JSONL. Empty paths are skipped.
func WriteTraces(tr *local.Tracer, span *local.Span, chromePath, jsonlPath string) error {
	if tr == nil || (chromePath == "" && jsonlPath == "") {
		return nil
	}
	d := tr.Dump(span)
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(chromePath, func(f *os.File) error { return local.WriteChromeTrace(f, d) }); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := write(jsonlPath, func(f *os.File) error { return local.WriteTraceJSONL(f, d) }); err != nil {
		return fmt.Errorf("trace jsonl: %w", err)
	}
	return nil
}
