// Package baseline implements the comparator the paper improves on: a
// Panconesi–Srinivasan-style Δ-coloring [PS92, PS95] built from the same
// primitive the original uses — start from a (Δ+1)-coloring and repair the
// extra color class by token-based augmenting recolorings, scheduled so
// that concurrent repairs never interact. Its round complexity is
// polylogarithmic with a higher exponent than the paper's algorithms,
// which is exactly the gap experiment E4 measures.
//
// DESIGN.md §3 records this as a faithful-in-spirit reimplementation: the
// original's network-decomposition machinery is replaced by (a) greedy
// recoloring sweeps that eliminate the easy conflicts and (b) a
// distance-scheduled sequence of Brooks token walks for the hard ones.
package baseline

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/internal/brooks"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// Result mirrors core.Result for the baseline.
type Result struct {
	Colors []int
	Delta  int
	Rounds int
	Phases []local.PhaseStat
	// Stuck is the number of nodes that needed a token walk (could not be
	// fixed by greedy sweeps).
	Stuck int
	// RepairBatches / RepairBatchRounds mirror core.Result: the batch
	// count and per-batch charged rounds of the token-walk repair engine.
	RepairBatches     int
	RepairBatchRounds []int
	// Span is the run's nested timeline, collected only when a default
	// tracer is installed (local.SetDefaultTracer); nil otherwise.
	Span *local.Span
}

// Color computes a Δ-coloring of a nice graph with the baseline algorithm:
//
//	(1) Linial + greedy reduction -> (Δ+1)-coloring;
//	(2) greedy sweeps: nodes holding color Δ take a free color in [0, Δ)
//	    when one exists (scheduled by the O(Δ²) base coloring);
//	(3) the remaining "rainbow" nodes are uncolored and repaired with
//	    Brooks token walks, scheduled by a distance coloring of their
//	    interaction graph so non-interacting walks run in parallel.
func Color(g *graph.G, seed int64) (*Result, error) {
	delta := g.MaxDegree()
	if delta < 3 {
		return nil, fmt.Errorf("baseline: Δ=%d < 3", delta)
	}
	acct := &local.Accountant{}
	if tr := local.DefaultTracer(); tr != nil {
		acct.StartSpans("baseline", tr)
	}
	n := g.N()

	net := local.NewNetwork(g, seed)
	base, k, r1 := dist.Linial(net)
	acct.Charge("linial", r1)
	net2 := local.NewNetwork(g, seed+1)
	colors, r2, err := dist.ReduceColors(net2, base, k, delta+1)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	acct.Charge("reduce", r2)

	// Greedy sweeps: iterate the base color classes; a class node holding
	// color Δ recolors to a free color in [0, Δ) when available. One sweep
	// costs k rounds; conflicts strictly decrease, and after the first
	// sweep only "rainbow" nodes (all Δ colors in the neighborhood) remain.
	sweepRounds := 0
	for sweep := 0; sweep < 2; sweep++ {
		changed := false
		for class := 0; class < k; class++ {
			for v := 0; v < n; v++ {
				if base[v] != class || colors[v] != delta {
					continue
				}
				if c := freeColor(g, colors, v, delta); c >= 0 {
					colors[v] = c
					changed = true
				}
			}
		}
		sweepRounds += k
		if !changed {
			break
		}
	}
	acct.Charge("greedy-sweeps", sweepRounds)

	// Hard cases: uncolor and run Brooks token walks through the batched
	// repair engine. The stuck nodes form an independent set (they all
	// hold color Δ); the engine schedules an MIS over their realized
	// repair balls per batch and charges the max walk length per batch,
	// replacing the old greedy distance-coloring scheduler with the same
	// accounting discipline.
	var stuck []int
	for v := 0; v < n; v++ {
		if colors[v] == delta {
			colors[v] = -1
			stuck = append(stuck, v)
		}
	}
	var rres *brooks.BatchResult
	if len(stuck) > 0 {
		var err error
		rres, err = brooks.RepairHoles(g, colors, stuck, delta, seed+2)
		if err != nil {
			return nil, fmt.Errorf("baseline: token walks: %w", err)
		}
		acct.Begin("token-walks")
		for bi, b := range rres.Batches {
			if b.SchedRounds > 0 {
				acct.Charge(fmt.Sprintf("token-sched[%d]", bi), b.SchedRounds)
			}
			acct.Charge(fmt.Sprintf("token-batch[%d]", bi), b.Rounds)
		}
		acct.End()
	}

	if err := dist.VerifyColoring(g, colors); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for v := 0; v < n; v++ {
		if colors[v] >= delta {
			return nil, fmt.Errorf("baseline: node %d uses color %d >= Δ", v, colors[v])
		}
	}
	out := &Result{
		Colors: colors,
		Delta:  delta,
		Rounds: acct.Total(),
		Phases: acct.Phases(),
		Stuck:  len(stuck),
	}
	if rres != nil {
		out.RepairBatches = len(rres.Batches)
		out.RepairBatchRounds = rres.BatchRounds()
	}
	out.Span = acct.FinishSpans()
	return out, nil
}

func freeColor(g *graph.G, colors []int, v, delta int) int {
	used := make([]bool, delta)
	for _, u := range g.Neighbors(v) {
		if c := colors[u]; c >= 0 && c < delta {
			used[c] = true
		}
	}
	for c := 0; c < delta; c++ {
		if !used[c] {
			return c
		}
	}
	return -1
}
