package baseline

import (
	"math/rand"
	"strings"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

func checkResult(t *testing.T, g *graph.G, res *Result) {
	t.Helper()
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		t.Fatalf("invalid Δ-coloring: %v", err)
	}
	if res.Rounds <= 0 {
		t.Fatalf("rounds = %d, want > 0", res.Rounds)
	}
	if res.Delta != g.MaxDegree() {
		t.Fatalf("delta = %d, want %d", res.Delta, g.MaxDegree())
	}
}

func TestBaselineOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	families := []struct {
		name string
		g    *graph.G
	}{
		{"torus 8x8", gen.Torus(8, 8)},
		{"hypercube d=4", gen.Hypercube(4)},
		{"grid 8x8", gen.Grid(8, 8)},
		{"random 3-regular n=128", gen.MustRandomRegular(rng, 128, 3)},
		{"random 4-regular n=256", gen.MustRandomRegular(rng, 256, 4)},
		{"random 8-regular n=128", gen.MustRandomRegular(rng, 128, 8)},
		{"complete bipartite K55", gen.CompleteBipartite(5, 5)},
		{"clique chain 5x4", gen.CliqueChain(5, 4)},
	}
	for _, tc := range families {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Color(tc.g, 1)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			checkResult(t, tc.g, res)
		})
	}
}

func TestBaselineManySeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.MustRandomRegular(rng, 200, 5)
	for seed := int64(0); seed < 6; seed++ {
		res, err := Color(g, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkResult(t, g, res)
	}
}

func TestBaselineRejectsLowDegree(t *testing.T) {
	if _, err := Color(gen.Cycle(8), 1); err == nil {
		t.Fatal("C8 (Δ=2) accepted, want error")
	}
	if _, err := Color(gen.Path(5), 1); err == nil {
		t.Fatal("P5 accepted, want error")
	}
}

func TestBaselinePhaseAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.MustRandomRegular(rng, 128, 4)
	res, err := Color(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	seenLinial := false
	for _, p := range res.Phases {
		sum += p.Rounds
		if p.Name == "linial" {
			seenLinial = true
		}
	}
	if sum != res.Rounds {
		t.Fatalf("phase sum %d != total %d", sum, res.Rounds)
	}
	if !seenLinial {
		t.Fatal("no 'linial' phase recorded")
	}
}

func TestBaselineRepairBatchStats(t *testing.T) {
	// When the baseline needs token walks, the batched engine's stats must
	// be internally consistent: one rounds entry per batch, and the phase
	// breakdown must carry a token-batch entry per batch.
	for seed := int64(0); seed < 8; seed++ {
		g := gen.MustRandomRegular(rand.New(rand.NewSource(seed)), 96, 4)
		res, err := Color(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, g, res)
		if len(res.RepairBatchRounds) != res.RepairBatches {
			t.Fatalf("seed %d: %d batch-rounds entries for %d batches", seed, len(res.RepairBatchRounds), res.RepairBatches)
		}
		tokenBatches := 0
		for _, p := range res.Phases {
			if strings.HasPrefix(p.Name, "token-batch[") {
				tokenBatches++
			}
		}
		if tokenBatches != res.RepairBatches {
			t.Fatalf("seed %d: %d token-batch phases for %d batches", seed, tokenBatches, res.RepairBatches)
		}
		if res.Stuck == 0 && res.RepairBatches != 0 {
			t.Fatalf("seed %d: %d batches with no stuck nodes", seed, res.RepairBatches)
		}
		if res.Stuck > 0 && res.RepairBatches == 0 {
			t.Fatalf("seed %d: stuck=%d but no repair batches", seed, res.Stuck)
		}
	}
}

func TestBaselineStuckCountConsistent(t *testing.T) {
	// On a bipartite graph Δ-coloring is easy; the baseline should rarely
	// need token walks, but when it reports Stuck the result must still be
	// valid. This is a smoke invariant across several structured inputs.
	inputs := []*graph.G{gen.Torus(6, 6), gen.Hypercube(5), gen.CompleteBipartite(6, 6)}
	for _, g := range inputs {
		res, err := Color(g, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stuck < 0 || res.Stuck > g.N() {
			t.Fatalf("stuck = %d out of range [0,%d]", res.Stuck, g.N())
		}
		checkResult(t, g, res)
	}
}
