// Package analysis implements the project's invariant lint suite: custom
// static analyzers that machine-check the contracts the Δ-coloring stack
// is built on but that the compiler cannot see —
//
//   - protodeterminism: protocol code (anything that runs inside a node
//     program against a *local.Ctx) must be a pure deterministic function
//     of its messages, its ID and Ctx.Rand: no wall clock, no
//     package-global math/rand, no environment reads, no goroutines, and
//     no map iteration whose order can escape into sends or colors.
//   - idboundary: the engine's internal tables (port/lane/halt arrays in
//     package local, laid out in cache-locality order) are indexed by
//     internal node indices only; external surfaces (Ctx.id, DeadSend)
//     carry external IDs only; the ext/int translation tables are the
//     single blessed crossing point.
//   - hotpathalloc: functions annotated //deltacolor:hotpath (the
//     per-round deliver/step kernels and the tracer record path) uphold
//     the zero-allocations-per-round guarantee: no closures, no interface
//     boxing of integers, no fmt or string building, no appends to
//     locally declared slices without preallocated capacity.
//   - spanpair: local.Accountant Begin/End must pair on every control
//     path (an unbalanced Begin corrupts the attribution of every later
//     Charge on a live span collection), and Tracer/batch counters are
//     written only by coordinator-owned code (//deltacolor:coordinator
//     or Tracer's own methods).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built on the standard
// library alone — go/parser, go/types and the source importer — because
// this module carries no third-party dependencies. cmd/lint is the
// multichecker; CI runs it as a hard gate next to vet.
//
// # Annotations
//
// Three comment directives, written in a function's doc comment, extend
// the analyzers' knowledge:
//
//	//deltacolor:protocol     — treat this function as protocol code even
//	                            though it takes no *local.Ctx parameter.
//	//deltacolor:hotpath      — enforce the hot-path allocation rules on
//	                            this function.
//	//deltacolor:coordinator  — this function is coordinator-owned: it may
//	                            write Tracer and per-batch trace counters.
//
// # Waivers
//
// A finding that is deliberate is silenced with an auditable waiver on
// the offending line or the line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a waiver without one is itself reported. The
// waiver policy is documented in the README's "Static analysis" section.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:ignore waivers.
	Name string
	// Doc is the one-paragraph description cmd/lint -help prints.
	Doc string
	// Run performs the check, reporting findings through pass.Report.
	Run func(pass *Pass)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Protodeterminism,
		IDBoundary,
		HotPathAlloc,
		SpanPair,
	}
}

// ---------------------------------------------------------------------------
// Comment directives.

const directivePrefix = "//deltacolor:"

// Directives are the //deltacolor: annotations attached to one function.
type Directives struct {
	Protocol    bool
	HotPath     bool
	Coordinator bool
}

// funcDirectives scans the doc comment of every function declaration in
// the files and returns the directive set per declaration.
func funcDirectives(files []*ast.File) map[*ast.FuncDecl]Directives {
	out := map[*ast.FuncDecl]Directives{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var d Directives
			for _, c := range fd.Doc.List {
				switch strings.TrimSpace(c.Text) {
				case directivePrefix + "protocol":
					d.Protocol = true
				case directivePrefix + "hotpath":
					d.HotPath = true
				case directivePrefix + "coordinator":
					d.Coordinator = true
				}
			}
			if d != (Directives{}) {
				out[fd] = d
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Waivers.

const waiverPrefix = "//lint:ignore"

// waiver is one parsed //lint:ignore comment.
type waiver struct {
	names  map[string]bool
	reason string
	pos    token.Pos
	used   bool
}

// waiverSet indexes waivers by (file, line) for one package.
type waiverSet struct {
	fset *token.FileSet
	byLn map[string]*waiver // "filename:line" of the waived line
	all  []*waiver
}

// collectWaivers parses every //lint:ignore comment in the files. A
// waiver on line L silences findings on L (same-line comment) and L+1
// (comment directly above the offending line).
func collectWaivers(fset *token.FileSet, files []*ast.File) *waiverSet {
	ws := &waiverSet{fset: fset, byLn: map[string]*waiver{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, waiverPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, waiverPrefix))
				fields := strings.Fields(rest)
				w := &waiver{names: map[string]bool{}, pos: c.Pos()}
				if len(fields) > 0 {
					for _, n := range strings.Split(fields[0], ",") {
						if n != "" {
							w.names[n] = true
						}
					}
					w.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
				}
				ws.all = append(ws.all, w)
				p := fset.Position(c.Pos())
				ws.byLn[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = w
			}
		}
	}
	return ws
}

// match returns the waiver covering a diagnostic of the given analyzer at
// pos, if any: a //lint:ignore naming the analyzer on the same line or
// the line directly above.
func (ws *waiverSet) match(name string, pos token.Pos) *waiver {
	p := ws.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		if w, ok := ws.byLn[fmt.Sprintf("%s:%d", p.Filename, line)]; ok {
			if w.names[name] {
				return w
			}
		}
	}
	return nil
}

// RunAnalyzers runs every analyzer over the package and returns the
// surviving findings (waived findings removed, malformed waivers added),
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ws := collectWaivers(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if w := ws.match(a.Name, d.Pos); w != nil {
				w.used = true
				if w.reason == "" {
					out = append(out, Diagnostic{
						Pos:      w.pos,
						Analyzer: a.Name,
						Message:  "waiver without a reason: //lint:ignore must state why the finding is deliberate",
					})
				}
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ---------------------------------------------------------------------------
// Shared type helpers.

// isRuntimePkg reports whether p is the LOCAL runtime package the
// invariants are defined against (the real deltacolor/local, or a test
// fixture standing in for it under the same import path tail).
func isRuntimePkg(p *types.Package) bool {
	return p != nil && (p.Path() == "deltacolor/local" || strings.HasSuffix(p.Path(), "/local") || p.Path() == "local")
}

// namedRuntimeType reports whether t (after pointer unwrapping) is the
// named type with the given name from the runtime package.
func namedRuntimeType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && isRuntimePkg(obj.Pkg())
}

// hasCtxParam reports whether the signature takes a *local.Ctx (or
// local.Ctx) parameter or receiver — the shape of every node program.
func hasCtxParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	if r := sig.Recv(); r != nil && namedRuntimeType(r.Type(), "Ctx") {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if namedRuntimeType(sig.Params().At(i).Type(), "Ctx") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the static callee of a call, or nil (dynamic calls,
// builtins, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package a function belongs
// to ("" for builtins and error methods).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
