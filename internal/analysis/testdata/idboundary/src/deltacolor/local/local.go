// Package local is a test double of the runtime for the idboundary
// fixtures: the engine tables live here, so both sides of the ext/int
// boundary are visible to the analyzer.
package local

// Ctx carries the external identity protocols observe.
type Ctx struct{ id int }

// DeadSend is an external surface: From/To are external IDs.
type DeadSend struct {
	From, Port, To int
}

// Network holds internal-order tables plus the two translation arrays.
type Network struct {
	extID     []int32
	intID     []int32
	off       []int
	portsFlat []int32
	haltSeg   []int32
	ctxs      []Ctx
}

func (net *Network) toExt(i int) int {
	if net.extID == nil {
		return i
	}
	return int(net.extID[i])
}

// ---------------------------------------------------------------------------
// Flagged: provable boundary crossings without translation.

func haltByExternal(net *Network, c *Ctx) int32 {
	return net.haltSeg[c.id] // want `internal table haltSeg indexed by an external ID`
}

func deadSendLeaksInternal(net *Network, c *Ctx) DeadSend {
	u := net.portsFlat[net.off[0]]
	return DeadSend{From: c.id, Port: 0, To: int(u)} // want `DeadSend\.To fed an internal index`
}

func doubleTranslate(net *Network) int {
	e := net.toExt(4)
	return net.toExt(e) // want `toExt applied to a value that is already an external ID`
}

func intIDOfInternal(net *Network) int32 {
	j := net.intID[5]
	return net.intID[j] // want `intID indexed by an internal index`
}

func ctxIDFromInternal(net *Network) {
	for _, v := range net.intID {
		net.ctxs[v].id = int(v) // want `Ctx\.id assigned an internal index`
	}
}

// ---------------------------------------------------------------------------
// Clean: the blessed crossings.

func haltTranslated(net *Network, c *Ctx) int32 {
	return net.haltSeg[net.intID[c.id]]
}

func deadSendTranslated(net *Network, c *Ctx) DeadSend {
	u := net.portsFlat[net.off[0]]
	return DeadSend{From: c.id, Port: 0, To: net.toExt(int(u))}
}

func internalSweep(net *Network) {
	for _, u := range net.portsFlat {
		net.haltSeg[u] = 1
	}
}

func ctxIDTranslated(net *Network) {
	for i := range net.ctxs {
		net.ctxs[i].id = net.toExt(i)
	}
}
