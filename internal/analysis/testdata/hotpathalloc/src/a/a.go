// Package a holds hotpathalloc fixtures. The rules only apply to
// functions annotated //deltacolor:hotpath.
package a

import "fmt"

func sink(v any) {}

type ring struct{ buf []int }

// ---------------------------------------------------------------------------
// Flagged: allocation on the per-round path.

//deltacolor:hotpath
func closes(xs []int) func() int {
	f := func() int { return len(xs) } // want `function literal in hot path`
	return f
}

//deltacolor:hotpath
func formats(n int) {
	fmt.Println(n) // want `fmt\.Println in hot path`
}

//deltacolor:hotpath
func boxes(v int) {
	sink(v) // want `integer boxed into interface argument of sink`
}

//deltacolor:hotpath
func boxedReturn(v int32) any {
	return v // want `integer boxed into interface return value`
}

//deltacolor:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation in hot path`
}

//deltacolor:hotpath
func growsBare(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append to out, a local slice declared without capacity`
	}
	return out
}

// ---------------------------------------------------------------------------
// Clean: preallocated, field-backed, waived, or simply not hot.

//deltacolor:hotpath
func growsPreallocated(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//deltacolor:hotpath
func growsField(r *ring, v int) {
	r.buf = append(r.buf, v)
}

//deltacolor:hotpath
func waivedBoxing(v int) {
	//lint:ignore hotpathalloc fixture: the boxed fallback is the documented overflow escape
	sink(v)
}

// notHot carries no directive: the zero-alloc rules do not apply.
func notHot(n int) string {
	var out []int
	out = append(out, n)
	return fmt.Sprint(out) + "!"
}
