// Package local is a test double of the runtime for the spanpair
// fixtures: Accountant for the pairing rules, Tracer/Counters/batch for
// the counter-ownership rules (those fields are package-internal, so the
// writer fixtures live here too).
package local

// Accountant mirrors the runtime's span accountant.
type Accountant struct{ depth int }

func (a *Accountant) StartSpans(name string)    {}
func (a *Accountant) Begin(name string)         { a.depth++ }
func (a *Accountant) End()                      { a.depth-- }
func (a *Accountant) FinishSpans()              {}
func (a *Accountant) Charge(name string, r int) {}

// Counters mirrors the cumulative trace counters.
type Counters struct {
	Rounds int64
	Drops  int64
}

// Tracer mirrors the runtime tracer: c/head/size/run/last are run state,
// level and ring are construction-time configuration.
type Tracer struct {
	level int
	ring  []int
	c     Counters
	head  int
}

// Counters returns a detached copy, the caller's to mutate.
func (t *Tracer) Counters() Counters { return t.c }

// ---------------------------------------------------------------------------
// Flagged: counter writes outside the coordinator.

func stealsCounter(t *Tracer) {
	t.c.Rounds++ // want `write to tracer counter Rounds`
}

func stealsHead(t *Tracer, n int) {
	t.head = n // want `write to tracer counter head`
}

type batch struct{ trInts, trBoxed, ftDrops, ftPanics int32 }

func stealsBatchCounter(b *batch) {
	b.trInts++ // want `write to batch trace counter trInts`
}

func stealsFaultCounter(b *batch) {
	b.ftDrops++ // want `write to batch trace counter ftDrops`
}

// ---------------------------------------------------------------------------
// Clean: the blessed writers.

//deltacolor:coordinator
func coordinatorFolds(t *Tracer, drops int64) {
	t.c.Drops += drops
}

func (t *Tracer) reset() {
	t.c = Counters{}
	t.head = 0
}

//deltacolor:coordinator
func coordinatorDrains(b *batch) {
	b.trInts, b.trBoxed = 0, 0
	b.ftDrops, b.ftPanics = 0, 0
}

func mutatesCopy(t *Tracer) int64 {
	c := t.Counters()
	c.Rounds++ // detached copy, not the live tracer
	return c.Rounds
}

func constructs(level int, capacity int) *Tracer {
	t := &Tracer{level: level}
	t.ring = make([]int, capacity)
	return t
}
