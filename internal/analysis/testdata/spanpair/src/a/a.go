// Package a holds the Begin/End pairing fixtures for spanpair.
package a

import (
	"errors"

	"deltacolor/local"
)

var errBoom = errors.New("boom")

// ---------------------------------------------------------------------------
// Flagged: paths that leak an open span.

func leaksOnError(acct *local.Accountant, fail bool) error {
	acct.Begin("phase")
	if fail {
		return errBoom // want `return leaves Accountant\.Begin\("phase"\) open`
	}
	acct.End()
	return nil
}

func leaksOnFallthrough(acct *local.Accountant) {
	acct.Begin("tail") // want `Accountant\.Begin\("tail"\) is not closed on every path`
	acct.Charge("work", 1)
}

func endWithoutBegin(acct *local.Accountant) {
	acct.End() // want `Accountant\.End without a matching Begin`
}

func leaksInBranch(acct *local.Accountant, n int) error {
	acct.Begin("outer")
	if n > 0 {
		acct.Begin("inner")
		if n > 10 {
			return errBoom // want `return leaves Accountant\.Begin\("inner"\) open`
		}
		acct.End()
	}
	acct.End()
	return nil
}

// ---------------------------------------------------------------------------
// Clean: every path pairs.

func pairsOnError(acct *local.Accountant, fail bool) error {
	acct.Begin("phase")
	if fail {
		acct.End()
		return errBoom
	}
	acct.End()
	return nil
}

func pairsByDefer(acct *local.Accountant, fail bool) error {
	acct.Begin("phase")
	defer acct.End()
	if fail {
		return errBoom
	}
	return nil
}

func pairsPerIteration(acct *local.Accountant, n int) {
	for i := 0; i < n; i++ {
		acct.Begin("iter")
		acct.Charge("work", 1)
		acct.End()
	}
}

func pairsAcrossSwitch(acct *local.Accountant, mode int) {
	acct.Begin("mode")
	switch mode {
	case 0:
		acct.Charge("a", 1)
	default:
		acct.Charge("b", 1)
	}
	acct.End()
}

func startFinishExempt(acct *local.Accountant, fail bool) error {
	acct.StartSpans("pipeline")
	if fail {
		return errBoom // abandoned collections are dropped wholesale
	}
	acct.FinishSpans()
	return nil
}
