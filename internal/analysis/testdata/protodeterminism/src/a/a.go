// Package a holds protodeterminism fixtures: flagged cases carry want
// comments, clean cases carry none.
package a

import (
	"math/rand"
	"os"
	"time"

	"deltacolor/local"
)

// ---------------------------------------------------------------------------
// Flagged: ambient process state inside protocol scope.

func wallClock(ctx *local.Ctx) {
	t := time.Now() // want `time\.Now in protocol code`
	ctx.SetOutput(t)
}

func globalRand(ctx *local.Ctx) int {
	return rand.Intn(ctx.Degree() + 1) // want `package-global math/rand\.Intn in protocol code`
}

func environment(ctx *local.Ctx) string {
	return os.Getenv("SEED") // want `os\.Getenv in protocol code`
}

func spawns(ctx *local.Ctx, out chan int) {
	go func() { out <- ctx.ID() }() // want `goroutine spawned in protocol code`
}

func mapOrderEscapes(ctx *local.Ctx, m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map in protocol code with an order-sensitive body`
		keys = append(keys, k)
	}
	return keys
}

// runsLiteral is not protocol scope itself, but the literal it builds is
// (it takes a *local.Ctx): violations inside it are still flagged.
func runsLiteral() func(*local.Ctx) {
	return func(ctx *local.Ctx) {
		_ = time.Since(time.Time{}) // want `time\.Since in protocol code`
	}
}

// annotated takes no Ctx but is protocol scope by directive.
//
//deltacolor:protocol
func annotated() string {
	return os.Getenv("HOME") // want `os\.Getenv in protocol code`
}

// ---------------------------------------------------------------------------
// Clean: the deterministic counterparts.

func ctxRand(ctx *local.Ctx) int {
	return ctx.Rand().Intn(7)
}

func seededGenerator(ctx *local.Ctx) int {
	r := rand.New(rand.NewSource(int64(ctx.ID())))
	return r.Intn(7)
}

func mapWritesOnly(ctx *local.Ctx, in, out map[int]int) {
	for k, v := range in {
		if v > 0 {
			out[k] = v
		}
	}
}

func mapDeleteOnly(ctx *local.Ctx, m map[int]bool) {
	for k := range m {
		if !m[k] {
			delete(m, k)
		}
	}
}

// notProtocol takes no Ctx and carries no directive: ambient state is
// the harness's business, not the analyzer's.
func notProtocol() time.Time {
	go func() {}()
	_ = os.Getenv("HOME")
	return time.Now()
}
