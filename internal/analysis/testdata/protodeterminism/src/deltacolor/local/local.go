// Package local is a test double for deltacolor/local: just enough
// surface for the fixtures to exercise the protocol-scope heuristics.
package local

import "math/rand"

// Message mirrors the runtime's message alias.
type Message = any

// Ctx mirrors the runtime's per-node context.
type Ctx struct{ id int }

func (c *Ctx) ID() int               { return c.id }
func (c *Ctx) Degree() int           { return 0 }
func (c *Ctx) Rand() *rand.Rand      { return rand.New(rand.NewSource(int64(c.id))) }
func (c *Ctx) Send(p int, m Message) {}
func (c *Ctx) Broadcast(m Message)   {}
func (c *Ctx) Recv(p int) Message    { return nil }
func (c *Ctx) Next()                 {}
func (c *Ctx) SetOutput(v any)       {}
