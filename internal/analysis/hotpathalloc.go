package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the zero-allocations-per-round guarantee on
// functions annotated //deltacolor:hotpath — the per-round deliver/step
// kernels and the tracer record path. The regression test
// (TestZeroAllocsPerRound) catches a violation after it lands; this
// analyzer names the allocating expression at review time.
//
// Flagged inside a hot-path function: function literals (closure
// allocation, and an escape route for everything they capture),
// interface boxing of integer values (call arguments and returns into
// interface-typed slots), any fmt call and any string concatenation
// (both allocate per call), and append to a locally declared slice that
// was not preallocated with a capacity.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "//deltacolor:hotpath functions must not allocate: no closures, " +
		"no interface boxing of ints, no fmt or string concatenation, no " +
		"append to local slices declared without capacity",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	dirs := funcDirectives(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dirs[fd].HotPath {
				continue
			}
			checkHotPath(pass, fd)
		}
	}
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	bare := collectBareSlices(pass, fd.Body)
	var results *types.Tuple
	if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(n.Pos(), "function literal in hot path: allocates a closure every call and is an escape route for everything it captures")
		case *ast.CallExpr:
			checkHotCall(pass, n, bare)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n.X) {
				pass.Report(n.Pos(), "string concatenation in hot path: allocates; move formatting off the per-round path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Report(n.Pos(), "string concatenation in hot path: allocates; move formatting off the per-round path")
			}
		case *ast.ReturnStmt:
			checkBoxedReturn(pass, n, results)
		}
		return true
	})
}

// collectBareSlices returns the local slice variables declared with no
// backing capacity (var s []T, s := []T{}, s := []T(nil)): the first
// append to one allocates, and later growth reallocates unpredictably.
func collectBareSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	bare := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := pass.Info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				bare[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if cl, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
					mark(id)
				}
			}
		}
		return true
	})
	return bare
}

func checkHotCall(pass *Pass, call *ast.CallExpr, bare map[types.Object]bool) {
	if isBuiltin(pass.Info, call, "append") {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && bare[obj] {
				pass.Report(call.Pos(), "append to %s, a local slice declared without capacity: preallocate with make(..., 0, cap) or reuse a field", id.Name)
			}
		}
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	if funcPkgPath(fn) == "fmt" {
		pass.Report(call.Pos(), "fmt.%s in hot path: allocates for formatting on every call", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && isIntegerExpr(pass, arg) {
			pass.Report(arg.Pos(), "integer boxed into interface argument of %s: boxing allocates off the int fast path", fn.Name())
		}
	}
}

func checkBoxedReturn(pass *Pass, ret *ast.ReturnStmt, results *types.Tuple) {
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		if types.IsInterface(results.At(i).Type()) && isIntegerExpr(pass, r) {
			pass.Report(r.Pos(), "integer boxed into interface return value: boxing allocates off the int fast path")
		}
	}
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
