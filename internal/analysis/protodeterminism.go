package analysis

import (
	"go/ast"
	"go/types"
)

// Protodeterminism enforces that protocol code — anything that executes
// inside a node program — is a pure deterministic function of its
// messages, its ID, its input and Ctx.Rand. A protocol that consults the
// wall clock, the process environment, the package-global math/rand
// state, or map iteration order computes different colorings on
// different runs, which the golden tests only catch after the fact.
//
// Protocol scope is any function or function literal that takes a
// *local.Ctx parameter or receiver (the shape of every NodeFunc, every
// Stepped Init/Step and every helper they call with the ctx), plus
// functions annotated //deltacolor:protocol, plus literals nested inside
// either.
var Protodeterminism = &Analyzer{
	Name: "protodeterminism",
	Doc: "protocol code must be deterministic: no time.Now/Since/Sleep, " +
		"no package-global math/rand (use ctx.Rand()), no os.Getenv, no " +
		"goroutines, and no range over a map whose iteration order can " +
		"escape into sends, colors or other state",
	Run: runProtodeterminism,
}

// nondetCalls maps import path -> function names whose results depend on
// ambient process state rather than protocol inputs.
var nondetCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time",
		"Since": "wall-clock time",
		"Until": "wall-clock time",
		"Sleep": "wall-clock scheduling",
	},
	"os": {
		"Getenv":    "process environment",
		"LookupEnv": "process environment",
		"Environ":   "process environment",
	},
}

// randConstructors are the math/rand package-level functions that build
// generators from an explicit seed instead of drawing from the shared
// global state; they are the one deterministic use of the package.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runProtodeterminism(pass *Pass) {
	dirs := funcDirectives(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inScope := dirs[fd].Protocol
			if !inScope {
				if sig, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					inScope = hasCtxParam(sig.Type().(*types.Signature))
				}
			}
			if inScope {
				checkProtocolBody(pass, fd.Body)
				continue
			}
			// Outside protocol scope, still scan for protocol-shaped
			// literals (closures handed to Run/RunStepped inline).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if sig, ok := pass.Info.Types[lit].Type.(*types.Signature); ok && hasCtxParam(sig) {
					checkProtocolBody(pass, lit.Body)
					return false // checked as a whole, including nested literals
				}
				return true
			})
		}
	}
}

// checkProtocolBody reports every determinism violation inside one
// protocol function body (nested literals included: code that runs when a
// protocol calls it is protocol code).
func checkProtocolBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "goroutine spawned in protocol code: node programs are stepped by the round scheduler and must not introduce their own concurrency")
		case *ast.CallExpr:
			checkNondetCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
		return true
	})
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	pkg := funcPkgPath(fn)
	if names, ok := nondetCalls[pkg]; ok {
		if what, ok := names[fn.Name()]; ok {
			pass.Report(call.Pos(), "%s.%s in protocol code: %s is nondeterministic across runs; protocols may depend only on messages, IDs, inputs and ctx.Rand()", pkg, fn.Name(), what)
		}
		return
	}
	if pkg == "math/rand" || pkg == "math/rand/v2" {
		// Methods on *rand.Rand are fine (the protocol got the generator
		// from ctx.Rand()); package-level draws hit the shared global
		// state, whose sequence depends on every other consumer.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		if !randConstructors[fn.Name()] {
			pass.Report(call.Pos(), "package-global %s.%s in protocol code: the shared generator is nondeterministic across runs and nodes; use ctx.Rand()", pkg, fn.Name())
		}
	}
}

// checkMapRange flags a range over a map unless its body is provably
// order-insensitive: every iteration only writes or deletes map entries
// (commutative across orderings), possibly under order-insensitive ifs.
// Anything else — appends, sends, arithmetic folds that could overflow or
// lose associativity, function calls — lets the iteration order escape.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveStmts(pass, rng.Body.List) {
		return
	}
	pass.Report(rng.Pos(), "range over map in protocol code with an order-sensitive body: iteration order is randomized per run and escapes into protocol state; iterate sorted keys instead (slices.Sorted(maps.Keys(m)))")
}

func orderInsensitiveStmts(pass *Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Allowed only when every target is a map entry (or blank): map
		// writes from distinct keys commute. Writes to anything else
		// (slices, scalars, fields) depend on which iteration runs last.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				return false
			}
			tv, ok := pass.Info.Types[idx.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(pass.Info, call, "delete")
	case *ast.IfStmt:
		if s.Init != nil || !orderInsensitiveStmt(pass, s.Body) {
			return false
		}
		return s.Else == nil || orderInsensitiveStmt(pass, s.Else)
	case *ast.BlockStmt:
		return orderInsensitiveStmts(pass, s.List)
	case *ast.BranchStmt:
		return true // continue/break
	case *ast.EmptyStmt:
		return true
	}
	return false
}
