package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest on the stdlib-only
// framework: every fixture package under testdata/<analyzer>/src is
// loaded and analyzed, and each diagnostic must be announced by a
//
//	// want `regex`
//
// comment on the flagged line (double quotes work too). Unmatched
// diagnostics and unsatisfied wants both fail the test.

func testAnalyzer(t *testing.T, a *Analyzer, pkgPaths ...string) {
	t.Helper()
	root := filepath.Join("testdata", a.Name, "src")
	loader := NewLoader(func(path string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	})
	for _, p := range pkgPaths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		checkExpectations(t, pkg, RunAnalyzers(pkg, []*Analyzer{a}))
	}
}

func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitWants(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s: no diagnostic matching %q", key, re)
		}
	}
}

// splitWants extracts the backquote- or double-quote-delimited patterns
// from the remainder of a want comment (no escape processing: fixture
// regexes are written verbatim).
func splitWants(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 {
			return pats
		}
		delim := s[0]
		if delim != '`' && delim != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], delim)
		if end < 0 {
			return pats
		}
		pats = append(pats, s[1:1+end])
		s = s[2+end:]
	}
}

func TestProtodeterminism(t *testing.T) {
	testAnalyzer(t, Protodeterminism, "a")
}

func TestIDBoundary(t *testing.T) {
	testAnalyzer(t, IDBoundary, "deltacolor/local")
}

func TestHotPathAlloc(t *testing.T) {
	testAnalyzer(t, HotPathAlloc, "a")
}

func TestSpanPair(t *testing.T) {
	testAnalyzer(t, SpanPair, "a", "deltacolor/local")
}

// TestWaivers pins the waiver contract: a reasoned //lint:ignore silences
// the named analyzer's finding on that line, and a reason-less waiver is
// itself reported.
func TestWaivers(t *testing.T) {
	dir := t.TempDir()
	src := `package w

import "os"

//deltacolor:protocol
func waived() string {
	//lint:ignore protodeterminism fixture: reading the environment here is a deliberate test double
	return os.Getenv("HOME")
}

//deltacolor:protocol
func reasonless() string {
	//lint:ignore protodeterminism
	return os.Getenv("HOME")
}
`
	if err := os.WriteFile(filepath.Join(dir, "w.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(func(path string) (string, bool) {
		if path == "w" {
			return dir, true
		}
		return "", false
	})
	pkg, err := loader.Load("w")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{Protodeterminism})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the reason-less waiver): %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "waiver without a reason") {
		t.Fatalf("diagnostic = %q, want the reason-less waiver report", diags[0].Message)
	}
}

// TestLintCleanOnRepo is the library form of the CI gate: running every
// analyzer over every package of the module must produce no findings
// (the cmd/lint binary exits 0 exactly when this holds).
func TestLintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; run without -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ReadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := PackagesUnder(root, root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("found only %d packages under %s, expected the whole module", len(paths), root)
	}
	loader := NewLoader(ModuleResolver(modPath, root))
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Errorf("loading %s: %v", p, err)
			continue
		}
		for _, d := range RunAnalyzers(pkg, All()) {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
