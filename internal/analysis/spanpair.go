package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanPair enforces the two ownership rules of the observability layer:
//
//   - Accountant.Begin/End must pair on every control path. An
//     unbalanced Begin leaves a phase group open on the live span stack,
//     silently mis-attributing every later Charge; the bug only shows up
//     as a subtly wrong span tree long after the early return that
//     caused it. (StartSpans/FinishSpans are exempt: an abandoned
//     collection is dropped wholesale and harmless.)
//   - Tracer counters (Tracer/Counters fields, per-batch trInts/trBoxed/
//     trDrops) are written only by Tracer's own methods or functions
//     annotated //deltacolor:coordinator — exactly one writer per
//     counter is what keeps the two-adds-per-batch accounting exact
//     without atomics.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc: "Accountant.Begin/End must pair on every path; tracer counters " +
		"are written only from Tracer methods or //deltacolor:coordinator " +
		"functions",
	Run: runSpanPair,
}

// batchCounterFields are the per-batch trace and fault-injection counters
// (owner-written, drained by the coordinator between phases/rounds).
var batchCounterFields = map[string]bool{
	"trInts": true, "trBoxed": true, "trDrops": true,
	"ftDrops": true, "ftDups": true, "ftDelays": true,
	"ftCrashIn": true, "ftOffline": true, "ftPanics": true,
}

// tracerStateFields are Tracer's mutable run-state fields. Configuration
// and storage set up at construction (level, epoch, ring) are not
// counters; a constructor may write them before the tracer is shared.
var tracerStateFields = map[string]bool{"c": true, "head": true, "size": true, "run": true, "last": true}

func runSpanPair(pass *Pass) {
	dirs := funcDirectives(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanBalance(pass, fd.Body)
			checkCounterWrites(pass, fd, dirs[fd])
		}
	}
}

// ---------------------------------------------------------------------------
// Begin/End balance.

// spanState tracks the open Begin calls (positions + names) and the
// number of deferred Ends along one control path.
type spanState struct {
	open     []openSpan
	deferred int
}

type openSpan struct {
	pos  token.Pos
	name string
}

func (st *spanState) clone() *spanState {
	return &spanState{open: append([]openSpan(nil), st.open...), deferred: st.deferred}
}

// unclosed is how many opens a return at this point would leak.
func (st *spanState) unclosed() int {
	n := len(st.open) - st.deferred
	if n < 0 {
		return 0
	}
	return n
}

// checkSpanBalance walks the body once per function (literals are walked
// separately: a literal's spans are its own contract), flagging any path
// that leaves a Begin without End.
func checkSpanBalance(pass *Pass, body *ast.BlockStmt) {
	st := &spanState{}
	terminated := walkSpanStmts(pass, body.List, st)
	if !terminated && st.unclosed() > 0 {
		for _, o := range st.open[st.deferred:] {
			pass.Report(o.pos, "Accountant.Begin(%q) is not closed on every path: falling off the function leaves the span open", o.name)
		}
	}
	// Literals get their own independent balance check.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkSpanBalance(pass, lit.Body)
			return false
		}
		return true
	})
}

// walkSpanStmts interprets a statement list against st, reporting leaks
// at every return. It reports whether the list always terminates
// (returns or panics) before falling through.
func walkSpanStmts(pass *Pass, stmts []ast.Stmt, st *spanState) bool {
	for _, s := range stmts {
		if walkSpanStmt(pass, s, st) {
			return true
		}
	}
	return false
}

func walkSpanStmt(pass *Pass, s ast.Stmt, st *spanState) (terminated bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch accountantCall(pass, call) {
		case "Begin":
			st.open = append(st.open, openSpan{pos: call.Pos(), name: beginName(call)})
		case "End":
			if len(st.open) > 0 {
				st.open = st.open[:len(st.open)-1]
			} else {
				pass.Report(call.Pos(), "Accountant.End without a matching Begin on this path")
			}
		}
		return isPanicCall(pass, call)
	case *ast.DeferStmt:
		if accountantCall(pass, s.Call) == "End" {
			st.deferred++
		}
		return false
	case *ast.ReturnStmt:
		if n := st.unclosed(); n > 0 {
			o := st.open[len(st.open)-1]
			pass.Report(s.Pos(), "return leaves Accountant.Begin(%q) open (opened at line %d): add End before returning or defer it", o.name, pass.Fset.Position(o.pos).Line)
		}
		return true
	case *ast.BlockStmt:
		return walkSpanStmts(pass, s.List, st)
	case *ast.LabeledStmt:
		return walkSpanStmt(pass, s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			walkSpanStmt(pass, s.Init, st)
		}
		thenSt := st.clone()
		thenTerm := walkSpanStmts(pass, s.Body.List, thenSt)
		elseTerm := false
		var elseSt *spanState
		if s.Else != nil {
			elseSt = st.clone()
			elseTerm = walkSpanStmt(pass, s.Else, elseSt)
		}
		// The fall-through state is the surviving branch; when both
		// survive prefer the one with more opens so a leak on either
		// branch is still caught downstream.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			if elseSt != nil {
				*st = *elseSt
			}
		case elseTerm:
			*st = *thenSt
		default:
			if elseSt != nil && elseSt.unclosed() > thenSt.unclosed() {
				*st = *elseSt
			} else {
				*st = *thenSt
			}
		}
		return false
	case *ast.ForStmt:
		walkSpanStmts(pass, s.Body.List, st.clone())
		return false
	case *ast.RangeStmt:
		walkSpanStmts(pass, s.Body.List, st.clone())
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			switch cc := c.(type) {
			case *ast.CaseClause:
				walkSpanStmts(pass, cc.Body, st.clone())
			case *ast.CommClause:
				walkSpanStmts(pass, cc.Body, st.clone())
			}
		}
		return false
	}
	return false
}

// accountantCall returns "Begin"/"End" when call is that method on
// local.Accountant, else "".
func accountantCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Begin" && sel.Sel.Name != "End") {
		return ""
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || !namedRuntimeType(s.Recv(), "Accountant") {
		return ""
	}
	return sel.Sel.Name
}

func beginName(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return litString(lit)
		}
	}
	return "?"
}

func litString(lit *ast.BasicLit) string {
	s := lit.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	return isBuiltin(pass.Info, call, "panic")
}

// ---------------------------------------------------------------------------
// Tracer counter ownership.

func checkCounterWrites(pass *Pass, fd *ast.FuncDecl, d Directives) {
	if d.Coordinator || isTracerMethod(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportCounterWrite(pass, lhs)
			}
		case *ast.IncDecStmt:
			reportCounterWrite(pass, n.X)
		}
		return true
	})
}

func isTracerMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	if tv, ok := pass.Info.Types[fd.Recv.List[0].Type]; ok {
		return namedRuntimeType(tv.Type, "Tracer")
	}
	return false
}

// reportCounterWrite flags lhs when it resolves to a tracer-owned
// counter: a field of Tracer or Counters, or a batch tr* counter.
func reportCounterWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	f := s.Obj()
	if f.Pkg() == nil || !isRuntimePkg(f.Pkg()) {
		return
	}
	switch {
	case namedRuntimeType(s.Recv(), "Tracer") && tracerStateFields[f.Name()],
		namedRuntimeType(s.Recv(), "Counters") && tracerRooted(pass, sel.X):
		// A Counters value copied out via Tracer.Counters() is the
		// caller's to mutate; only writes through a live Tracer are
		// ownership violations.
		pass.Report(lhs.Pos(), "write to tracer counter %s outside Tracer methods or //deltacolor:coordinator code: the accounting is exact only with a single coordinator-owned writer", f.Name())
	case batchCounterFields[f.Name()]:
		pass.Report(lhs.Pos(), "write to batch trace counter %s outside //deltacolor:coordinator code: batch counters are owner-written and drained by the coordinator", f.Name())
	}
}

// tracerRooted reports whether the expression reaches its value through
// a field of a Tracer (e.g. tr.c in tr.c.StepNanos), as opposed to a
// detached Counters copy.
func tracerRooted(pass *Pass, x ast.Expr) bool {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal && namedRuntimeType(s.Recv(), "Tracer")
}
