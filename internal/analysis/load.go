package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package as the analyzers see it: parsed
// files (with comments), the types.Package and the full types.Info.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one source tree. Module
// packages are resolved through Resolve and checked from source with the
// loader itself as importer; everything else (the standard library) is
// delegated to go/importer's source importer, so the loader needs no
// export data, no build cache and no network — exactly what a
// dependency-free module allows.
//
// The zero value is not usable; construct with NewLoader.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path claimed by this tree to its directory
	// (ok=false defers the path to the standard-library importer).
	Resolve func(path string) (dir string, ok bool)

	std  types.Importer
	pkgs map[string]*Package
	errs map[string]error
}

// NewLoader returns a loader over the given resolver.
func NewLoader(resolve func(path string) (dir string, ok bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		errs:    map[string]error{},
	}
}

// ModuleResolver returns a Resolve function for a module rooted at dir
// with the given module path (read from go.mod by ReadModule).
func ModuleResolver(modPath, dir string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modPath {
			return dir, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
}

// ReadModule reads the module path from dir/go.mod.
func ReadModule(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// PackagesUnder returns the sorted import paths of every Go package in
// the subtree rooted at dir of the module rooted at root, skipping
// testdata, hidden and underscore directories.
func PackagesUnder(dir, root, modPath string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		path, ok, err := PackageAt(p, root, modPath)
		if err != nil {
			return err
		}
		if ok {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// PackageAt returns the import path of the package in dir when dir holds
// at least one non-test Go source file of the module rooted at root.
func PackageAt(dir, root, modPath string) (string, bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", false, err
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return "", false, err
		}
		if rel == "." {
			return modPath, true, nil
		}
		return modPath + "/" + filepath.ToSlash(rel), true, nil
	}
	return "", false, nil
}

// Import implements types.Importer so module packages can import each
// other during checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.Resolve(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the package at the import path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("import path %q is outside the loader's tree", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.check(path, dir)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses the package's non-test sources and type-checks them. Test
// files are excluded on purpose: the invariants guard production code,
// and golden tests legitimately poke at surfaces protocols must not.
func (l *Loader) check(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
