package analysis

import (
	"go/ast"
	"go/types"
)

// IDBoundary enforces the external/internal node-ID separation the PR 5
// cache-locality relabeling introduced: every engine table (port tables,
// lanes, presence maps, halt segments, context array) is laid out in
// internal (locality) order and must be indexed by internal indices only,
// while every observable surface (Ctx.id, DeadSend, outputs) carries
// external IDs only. The extID/intID translation arrays and
// Network.toExt are the single blessed crossing points.
//
// The analyzer runs a light forward taint pass per function: expressions
// provably holding an external ID (c.id, toExt(...), extID[i],
// DeadSend.From/To) are Ext; expressions provably holding an internal
// index (intID[v], portsFlat values, members of batch live/senders
// lists) are Int. It flags only provable mismatches — an untainted index
// is assumed correct.
var IDBoundary = &Analyzer{
	Name: "idboundary",
	Doc: "engine-internal tables must be indexed by internal node " +
		"indices and external surfaces (DeadSend, Ctx.id) fed external " +
		"IDs; extID/intID/toExt are the only translation points",
	Run: runIDBoundary,
}

// internalTables are the runtime struct fields laid out in internal
// (locality) order. Indexing one with an external ID reads the wrong
// node's state whenever relabeling is active.
var internalTables = map[string]bool{
	"ports": true, "rev": true, "off": true,
	"portsFlat": true, "revFlat": true, "slotFlat": true,
	"inBoxed": true, "outBoxed": true, "inInt": true, "outInt": true,
	"inHas": true, "outHas": true, "recvAny": true, "recvInt": true,
	"haltSeg": true, "ctxs": true, "extID": true, "state": true,
}

// intValueTables are fields whose *element values* are internal indices.
var intValueTables = map[string]bool{
	"portsFlat": true, "live": true, "senders": true,
}

type taint int

const (
	taintNone taint = iota
	taintExt
	taintInt
)

func (t taint) String() string {
	switch t {
	case taintExt:
		return "external ID"
	case taintInt:
		return "internal index"
	}
	return "untainted"
}

func runIDBoundary(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkIDBoundaryFunc(pass, fd.Body)
		}
	}
}

func checkIDBoundaryFunc(pass *Pass, body *ast.BlockStmt) {
	ib := &idbState{pass: pass, vars: map[types.Object]taint{}}
	// Pass 1: propagate taint through direct assignments and range
	// clauses, in source order (good enough for the engine's
	// straight-line kernels; loops re-binding taint converge because the
	// sources are structural, not flow-dependent).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if t := ib.taintOf(n.Rhs[i]); t != taintNone {
							if obj := ib.objOf(id); obj != nil {
								ib.vars[obj] = t
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			ib.rangeTaint(n)
		}
		return true
	})
	// Pass 2: check every boundary crossing.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			ib.checkIndex(n)
		case *ast.CompositeLit:
			ib.checkDeadSendLit(n)
		case *ast.CallExpr:
			ib.checkTranslation(n)
		case *ast.AssignStmt:
			ib.checkIDWrite(n)
		}
		return true
	})
}

type idbState struct {
	pass *Pass
	vars map[types.Object]taint
}

func (ib *idbState) objOf(id *ast.Ident) types.Object {
	if obj := ib.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return ib.pass.Info.Uses[id]
}

// runtimeField returns the field name when sel selects a field declared
// in the runtime package, else "".
func (ib *idbState) runtimeField(sel *ast.SelectorExpr) string {
	s, ok := ib.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	f := s.Obj()
	if f.Pkg() == nil || !isRuntimePkg(f.Pkg()) {
		return ""
	}
	return f.Name()
}

// taintOf classifies an expression as holding an external ID, an
// internal index, or neither.
func (ib *idbState) taintOf(e ast.Expr) taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ib.objOf(e); obj != nil {
			return ib.vars[obj]
		}
	case *ast.SelectorExpr:
		switch name := ib.runtimeField(e); name {
		case "id":
			if sel, ok := ib.pass.Info.Selections[e]; ok && namedRuntimeType(sel.Recv(), "Ctx") {
				return taintExt
			}
		case "iid":
			return taintInt
		case "From", "To":
			if sel, ok := ib.pass.Info.Selections[e]; ok && namedRuntimeType(sel.Recv(), "DeadSend") {
				return taintExt
			}
		}
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			switch ib.runtimeField(sel) {
			case "extID":
				return taintExt
			case "intID":
				return taintInt
			}
			if intValueTables[ib.runtimeField(sel)] {
				return taintInt
			}
		}
	case *ast.CallExpr:
		if fn := calleeFunc(ib.pass.Info, e); fn != nil && fn.Name() == "toExt" && isRuntimePkg(fn.Pkg()) {
			return taintExt
		}
		// Conversions like int(x) / int32(x) preserve taint.
		if len(e.Args) == 1 {
			if tv, ok := ib.pass.Info.Types[e.Fun]; ok && tv.IsType() {
				return ib.taintOf(e.Args[0])
			}
		}
	case *ast.BinaryExpr:
		// offset arithmetic (i+1, base+p) keeps the identity of the
		// tainted side as long as the other side is untainted.
		lt, rt := ib.taintOf(e.X), ib.taintOf(e.Y)
		if lt == taintNone {
			return rt
		}
		if rt == taintNone || rt == lt {
			return lt
		}
	}
	return taintNone
}

// rangeTaint records the taint of range-clause variables: iterating an
// internal-order table binds internal indices to the key (and, for
// tables whose values are internal indices, to the value too); iterating
// the translation arrays binds one world to each side.
func (ib *idbState) rangeTaint(rng *ast.RangeStmt) {
	sel, ok := ast.Unparen(rng.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := ib.runtimeField(sel)
	if name == "" {
		return
	}
	set := func(e ast.Expr, t taint) {
		if e == nil || t == taintNone {
			return
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := ib.objOf(id); obj != nil {
				ib.vars[obj] = t
			}
		}
	}
	switch {
	case name == "extID":
		set(rng.Key, taintInt)
		set(rng.Value, taintExt)
	case name == "intID":
		set(rng.Key, taintExt)
		set(rng.Value, taintInt)
	case internalTables[name]:
		set(rng.Key, taintInt)
		if intValueTables[name] {
			set(rng.Value, taintInt)
		}
	case intValueTables[name]:
		set(rng.Value, taintInt)
	}
}

func (ib *idbState) checkIndex(idx *ast.IndexExpr) {
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := ib.runtimeField(sel)
	if name == "" {
		return
	}
	t := ib.taintOf(idx.Index)
	if internalTables[name] && t == taintExt {
		ib.pass.Report(idx.Pos(), "internal table %s indexed by an external ID: engine tables are laid out in locality order; translate with intID first", name)
	}
	if name == "intID" && t == taintInt {
		ib.pass.Report(idx.Pos(), "intID indexed by an internal index: intID maps external IDs to internal indices, this double-translates")
	}
}

func (ib *idbState) checkDeadSendLit(lit *ast.CompositeLit) {
	tv, ok := ib.pass.Info.Types[lit]
	if !ok || !namedRuntimeType(tv.Type, "DeadSend") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || (key.Name != "From" && key.Name != "To") {
			continue
		}
		if ib.taintOf(kv.Value) == taintInt {
			ib.pass.Report(kv.Pos(), "DeadSend.%s fed an internal index: dead-send records are an external surface; translate with toExt", key.Name)
		}
	}
}

// checkTranslation flags double translation: toExt of something already
// external.
func (ib *idbState) checkTranslation(call *ast.CallExpr) {
	fn := calleeFunc(ib.pass.Info, call)
	if fn == nil || fn.Name() != "toExt" || !isRuntimePkg(fn.Pkg()) || len(call.Args) != 1 {
		return
	}
	if ib.taintOf(call.Args[0]) == taintExt {
		ib.pass.Report(call.Pos(), "toExt applied to a value that is already an external ID (double translation)")
	}
}

// checkIDWrite flags writing an internal index into Ctx.id, the external
// identity every protocol observes.
func (ib *idbState) checkIDWrite(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || ib.runtimeField(sel) != "id" {
			continue
		}
		if s, ok := ib.pass.Info.Selections[sel]; !ok || !namedRuntimeType(s.Recv(), "Ctx") {
			continue
		}
		if ib.taintOf(as.Rhs[i]) == taintInt {
			ib.pass.Report(as.Pos(), "Ctx.id assigned an internal index: Ctx.id is the external identity protocols observe; assign toExt(i)")
		}
	}
}
