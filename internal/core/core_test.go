package core

import (
	"errors"
	"math/rand"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
	"deltacolor/verify"
)

func TestCheckNicePreconditions(t *testing.T) {
	tests := []struct {
		name    string
		g       *graph.G
		wantErr error
	}{
		{"complete K5", gen.Complete(5), ErrComplete},
		{"complete K4", gen.Complete(4), ErrComplete},
		{"odd cycle C5", gen.Cycle(5), ErrDegreeTooSmall},
		{"even cycle C6", gen.Cycle(6), ErrDegreeTooSmall},
		{"path P8", gen.Path(8), ErrDegreeTooSmall},
		{"torus 4x4", gen.Torus(4, 4), nil},
		{"hypercube d=3", gen.Hypercube(3), nil},
		{"grid 5x5", gen.Grid(5, 5), nil},
		{"complete bipartite K33", gen.CompleteBipartite(3, 3), nil},
		{"clique chain", gen.CliqueChain(4, 4), nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CheckNice(tc.g, 3)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("CheckNice: unexpected error %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("CheckNice: got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestCheckNiceDisconnected(t *testing.T) {
	// Two nice components: accepted.
	g := graph.New(32)
	t1 := gen.Torus(4, 4)
	for _, e := range t1.Edges() {
		g.MustEdge(e[0], e[1])
	}
	for _, e := range t1.Edges() {
		g.MustEdge(e[0]+16, e[1]+16)
	}
	if _, err := CheckNice(g, 3); err != nil {
		t.Fatalf("two nice components rejected: %v", err)
	}

	// A nice component plus a clique component: rejected with ErrComplete.
	// The clique must match Δ+1 of the whole graph to be un-Δ-colorable.
	h := graph.New(16 + 5)
	for _, e := range t1.Edges() {
		h.MustEdge(e[0], e[1])
	}
	k := gen.Complete(5)
	for _, e := range k.Edges() {
		h.MustEdge(e[0]+16, e[1]+16)
	}
	// Δ(torus) = 4, Δ(K5) = 4, so Δ+1 = 5 = |K5|: the K5 component is a
	// Δ+1-clique and cannot be Δ-colored.
	if _, err := CheckNice(h, 3); !errors.Is(err, ErrComplete) {
		t.Fatalf("torus+K5: got %v, want ErrComplete", err)
	}
}

func TestLayeringDistances(t *testing.T) {
	// On a path 0-1-2-3-4 embedded in a star-ish graph the layering must
	// equal BFS distance from the base.
	g := gen.Grid(4, 4)
	base := []int{0}
	layer := Layering(g, base, nil)
	if layer[0] != 0 {
		t.Fatalf("base node layer = %d, want 0", layer[0])
	}
	// Node 15 (opposite corner) is at Manhattan distance 6 in a 4x4 grid.
	if layer[15] != 6 {
		t.Fatalf("corner layer = %d, want 6", layer[15])
	}
	// Every non-base node must have a neighbor exactly one layer below.
	for v := 0; v < g.N(); v++ {
		if layer[v] <= 0 {
			continue
		}
		found := false
		for _, u := range g.Neighbors(v) {
			if layer[u] == layer[v]-1 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d at layer %d has no neighbor at layer %d", v, layer[v], layer[v]-1)
		}
	}
}

func TestLayeringRestricted(t *testing.T) {
	g := gen.Grid(3, 3)
	restrict := make([]bool, g.N())
	// Restrict to the top row {0,1,2}.
	restrict[0], restrict[1], restrict[2] = true, true, true
	layer := Layering(g, []int{0}, restrict)
	if layer[0] != 0 || layer[1] != 1 || layer[2] != 2 {
		t.Fatalf("restricted layering on row: got %v %v %v, want 0 1 2", layer[0], layer[1], layer[2])
	}
	for v := 3; v < g.N(); v++ {
		if layer[v] != -1 {
			t.Fatalf("non-restricted node %d got layer %d, want -1", v, layer[v])
		}
	}
}

func TestDetRulingSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{2, 3, 5} {
		for trial := 0; trial < 3; trial++ {
			g := gen.MustRandomRegular(rng, 128, 4)
			rs := DetRulingSetCompute(g, nil, k)
			// Independence at distance k: any two members are >= k apart.
			var members []int
			for v := 0; v < g.N(); v++ {
				if rs.InSet[v] {
					members = append(members, v)
				}
			}
			if len(members) == 0 {
				t.Fatalf("k=%d: empty ruling set", k)
			}
			for _, v := range members {
				d, _ := g.MultiSourceDist([]int{v})
				for _, u := range members {
					if u != v && d[u] >= 0 && d[u] < k {
						t.Fatalf("k=%d: members %d,%d at distance %d < k", k, v, u, d[u])
					}
				}
			}
			// Domination: every node within Beta of the set.
			d, _ := g.MultiSourceDist(members)
			for v := 0; v < g.N(); v++ {
				if d[v] < 0 || d[v] > rs.Beta {
					t.Fatalf("k=%d: node %d at distance %d > beta=%d", k, v, d[v], rs.Beta)
				}
			}
		}
	}
}

func TestDetRulingSetActiveSubset(t *testing.T) {
	g := gen.Grid(6, 6)
	active := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		active[v] = true
	}
	rs := DetRulingSetCompute(g, active, 3)
	for v := 0; v < g.N(); v++ {
		if rs.InSet[v] && !active[v] {
			t.Fatalf("inactive node %d in ruling set", v)
		}
	}
}

// colorCheck verifies a Result against the source graph.
func colorCheck(t *testing.T, g *graph.G, res *Result) {
	t.Helper()
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		t.Fatalf("invalid coloring: %v", err)
	}
	if res.Rounds <= 0 {
		t.Fatalf("rounds = %d, want > 0", res.Rounds)
	}
	if res.Delta != g.MaxDegree() {
		t.Fatalf("delta = %d, want %d", res.Delta, g.MaxDegree())
	}
}

func TestRandomizedOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	families := []struct {
		name string
		g    *graph.G
	}{
		{"torus 8x8", gen.Torus(8, 8)},
		{"hypercube d=4", gen.Hypercube(4)},
		{"grid 8x8", gen.Grid(8, 8)},
		{"random 4-regular n=256", gen.MustRandomRegular(rng, 256, 4)},
		{"random 3-regular n=128", gen.MustRandomRegular(rng, 128, 3)},
		{"random 8-regular n=128", gen.MustRandomRegular(rng, 128, 8)},
		{"complete bipartite K44", gen.CompleteBipartite(4, 4)},
		{"clique chain 5x4", gen.CliqueChain(5, 4)},
		{"gnp capped", gen.GNPMaxDeg(rng, 200, 0.03, 6)},
	}
	for _, tc := range families {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CheckNice(tc.g, 3); err != nil {
				t.Skipf("family not nice: %v", err)
			}
			res, err := Randomized(tc.g, RandOptions{Seed: 1})
			if err != nil {
				t.Fatalf("Randomized: %v", err)
			}
			colorCheck(t, tc.g, res)
		})
	}
}

func TestRandomizedSmallDeltaMode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.MustRandomRegular(rng, 512, 3)
	res, err := Randomized(g, RandOptions{Seed: 3, SmallDelta: true})
	if err != nil {
		t.Fatalf("Randomized small-Δ: %v", err)
	}
	colorCheck(t, g, res)
	if res.Delta != 3 {
		t.Fatalf("delta = %d, want 3", res.Delta)
	}
}

func TestRandomizedDeterministicLists(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.MustRandomRegular(rng, 256, 5)
	res, err := Randomized(g, RandOptions{Seed: 5, ListMode: ListColorDeterministic})
	if err != nil {
		t.Fatalf("Randomized det lists: %v", err)
	}
	colorCheck(t, g, res)
}

func TestRandomizedManySeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := gen.MustRandomRegular(rng, 200, 4)
	for seed := int64(0); seed < 8; seed++ {
		res, err := Randomized(g, RandOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		colorCheck(t, g, res)
	}
}

func TestRandomizedRejectsBadInputs(t *testing.T) {
	if _, err := Randomized(gen.Complete(6), RandOptions{}); !errors.Is(err, ErrComplete) {
		t.Fatalf("K6: got %v, want ErrComplete", err)
	}
	if _, err := Randomized(gen.Cycle(7), RandOptions{}); !errors.Is(err, ErrDegreeTooSmall) {
		t.Fatalf("C7: got %v, want ErrDegreeTooSmall", err)
	}
}

func TestDeterministicOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	families := []struct {
		name string
		g    *graph.G
	}{
		{"torus 8x8", gen.Torus(8, 8)},
		{"hypercube d=4", gen.Hypercube(4)},
		{"random 4-regular n=256", gen.MustRandomRegular(rng, 256, 4)},
		{"random 6-regular n=128", gen.MustRandomRegular(rng, 128, 6)},
		{"clique chain 6x5", gen.CliqueChain(6, 5)},
	}
	for _, tc := range families {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Deterministic(tc.g, 1)
			if err != nil {
				t.Fatalf("Deterministic: %v", err)
			}
			colorCheck(t, tc.g, res)
		})
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.MustRandomRegular(rng, 128, 4)
	res1, err := Deterministic(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Deterministic(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Rounds != res2.Rounds {
		t.Fatalf("rounds differ across identical runs: %d vs %d", res1.Rounds, res2.Rounds)
	}
	for v := range res1.Colors {
		if res1.Colors[v] != res2.Colors[v] {
			t.Fatalf("colors differ at node %d: %d vs %d", v, res1.Colors[v], res2.Colors[v])
		}
	}
}

func TestAutoParamsDefaults(t *testing.T) {
	o := RandOptions{}.AutoParams(1<<12, 4)
	if o.Backoff != 6 {
		t.Fatalf("Δ=4 backoff = %d, want 6", o.Backoff)
	}
	if o.R <= 0 {
		t.Fatalf("R = %d, want > 0", o.R)
	}
	if o.P <= 0 || o.P > 0.05 {
		t.Fatalf("P = %v, want in (0, 0.05]", o.P)
	}

	o3 := RandOptions{}.AutoParams(1<<12, 3)
	if o3.Backoff != 12 {
		t.Fatalf("Δ=3 backoff = %d, want 12", o3.Backoff)
	}
	if o3.R%6 != 0 {
		t.Fatalf("Δ=3 R = %d, want a multiple of 6 (Lemma 14)", o3.R)
	}

	// Large Δ uses the constant radius; very large Δ a smaller constant.
	oL := RandOptions{}.AutoParams(1<<12, 8)
	if oL.R != 4 {
		t.Fatalf("Δ=8 R = %d, want 4", oL.R)
	}
	oXL := RandOptions{}.AutoParams(1<<12, 16)
	if oXL.R != 2 {
		t.Fatalf("Δ=16 R = %d, want 2", oXL.R)
	}

	// Explicit values survive.
	oX := RandOptions{R: 8, Backoff: 10, P: 0.01}.AutoParams(1<<12, 4)
	if oX.R != 8 || oX.Backoff != 10 || oX.P != 0.01 {
		t.Fatalf("explicit params overridden: %+v", oX)
	}
}

func TestRepairUncolored(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.MustRandomRegular(rng, 64, 4)
	delta := 4
	// Start from a valid coloring and erase a scattered subset.
	res, err := Randomized(g, RandOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	colors := append([]int(nil), res.Colors...)
	erased := 0
	for v := 0; v < g.N(); v += 7 {
		colors[v] = -1
		erased++
	}
	acct := &local.Accountant{}
	rres, err := RepairUncolored(g, colors, delta, 17, acct)
	if err != nil {
		t.Fatalf("RepairUncolored: %v", err)
	}
	if rres.Fixed != erased {
		t.Fatalf("fixed %d nodes, want %d", rres.Fixed, erased)
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		t.Fatalf("repair left invalid coloring: %v", err)
	}
	if acct.Total() <= 0 {
		t.Fatalf("repair charged %d rounds, want > 0", acct.Total())
	}
	if len(rres.Batches) == 0 || acct.Total() != rres.TotalRounds() {
		t.Fatalf("accountant total %d != engine total %d over %d batches", acct.Total(), rres.TotalRounds(), len(rres.Batches))
	}
	// Batching must not devolve into one batch per hole on a scattered
	// erasure: at least one batch has to carry multiple repairs.
	if len(rres.Batches) >= rres.Fixed {
		t.Fatalf("%d batches for %d repairs: no batching happened", len(rres.Batches), rres.Fixed)
	}
}

func TestLayerColorerReverseOrder(t *testing.T) {
	g := gen.Torus(6, 6)
	delta := g.MaxDegree()
	acct := &local.Accountant{}
	lc := NewLayerColorer(g, delta, ListColorRandomized, 3, acct)

	// Layer by distance from node 0; layer 0 = {0}.
	layer := Layering(g, []int{0}, nil)
	s := 0
	for _, l := range layer {
		if l > s {
			s = l
		}
	}
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = -1
	}
	rep, err := lc.ColorLayersReverse(colors, layer, s, "t")
	if err != nil {
		t.Fatalf("ColorLayersReverse: %v", err)
	}
	if rep != 0 {
		t.Fatalf("repairs = %d, want 0 (every layer is a deg+1 instance)", rep)
	}
	// All nodes except layer 0 must be colored, properly.
	for v := 0; v < g.N(); v++ {
		if layer[v] >= 1 && colors[v] < 0 {
			t.Fatalf("node %d (layer %d) left uncolored", v, layer[v])
		}
	}
	if err := verify.PartialColoring(g, colors, delta); err != nil {
		t.Fatalf("partial coloring invalid: %v", err)
	}
}

func TestResultPhasesSumToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.MustRandomRegular(rng, 128, 4)
	res, err := Randomized(g, RandOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, p := range res.Phases {
		if p.Rounds < 0 {
			t.Fatalf("phase %q has negative rounds %d", p.Name, p.Rounds)
		}
		sum += p.Rounds
	}
	if sum != res.Rounds {
		t.Fatalf("phase sum %d != total %d", sum, res.Rounds)
	}
}

// diamondWithTail builds the anchor-overlap scenario of the PR 4 bugfix: a
// diamond (K4 minus an edge, degree-choosable) whose nodes 1 and 3 are
// also free nodes — 3 by low degree, 1 by an uncolored neighbor outside
// the component — so the free-node singletons overlap the DCC group.
func diamondWithTail() (g *graph.G, inL []bool, colors []int) {
	g = graph.New(5)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(3, 0)
	g.MustEdge(0, 2)
	g.MustEdge(1, 4) // tail: node 4 outside L, uncolored
	inL = []bool{true, true, true, true, false}
	colors = []int{-1, -1, -1, -1, -1}
	return g, inL, colors
}

func TestDiscoverAnchorsOverlapExcluded(t *testing.T) {
	g, inL, colors := diamondWithTail()
	delta := 3
	lGraph := maskGraph(g, inL)
	comp, count := lGraph.ConnectedComponents()
	byComp := make([][]int, count)
	for v := 0; v < g.N(); v++ {
		if inL[v] {
			byComp[comp[v]] = append(byComp[comp[v]], v)
		}
	}
	groups, _, err := discoverAnchors(g, inL, colors, byComp, delta)
	if err != nil {
		t.Fatal(err)
	}
	var dccGroups, freeGroups int
	owned := map[int]bool{}
	for _, grp := range groups {
		if grp.free {
			freeGroups++
		} else {
			dccGroups++
		}
		for _, v := range grp.nodes {
			if owned[v] {
				t.Fatalf("node %d appears in two anchor groups: %+v", v, groups)
			}
			owned[v] = true
		}
	}
	if dccGroups == 0 {
		t.Fatalf("the diamond DCC was not discovered: %+v", groups)
	}
	// Nodes 1 (uncolored outside neighbor) and 3 (degree 2 < Δ) qualify as
	// free nodes but sit inside the DCC group; the dedupe must drop their
	// singletons instead of emitting overlapping anchors.
	if freeGroups != 0 {
		t.Fatalf("free singletons overlap the DCC group: %+v", groups)
	}
}

func TestSmallComponentsOverlappingAnchors(t *testing.T) {
	// End to end: colorSmallComponents on the overlap construction must
	// color all of L properly with nothing deferred (the DCC anchor covers
	// the whole component).
	g, inL, colors := diamondWithTail()
	delta := 3
	acct := &local.Accountant{}
	lc := NewLayerColorer(g, delta, ListColorRandomized, 7, acct)
	deferred, err := colorSmallComponents(g, inL, colors, delta, RandOptions{Seed: 7}.AutoParams(g.N(), delta), lc, acct)
	if err != nil {
		t.Fatal(err)
	}
	if deferred != 0 {
		t.Fatalf("deferred = %d, want 0", deferred)
	}
	for v := 0; v < g.N(); v++ {
		if inL[v] && colors[v] < 0 {
			t.Fatalf("L node %d left uncolored", v)
		}
	}
	if err := verify.PartialColoring(g, colors, delta); err != nil {
		t.Fatal(err)
	}
}
