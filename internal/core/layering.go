// Package core implements the paper's Δ-coloring algorithms: the layering
// technique (Section 3), the deterministic algorithm of Theorem 4, the
// network-decomposition variant of Theorem 21, and the randomized
// small-Δ/large-Δ algorithms of Theorems 1 and 3 (Section 4) with their
// DCC-removal, marking/T-node and shattering phases.
package core

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/internal/brooks"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// Layering assigns every node of a restricted node set its distance to a
// base set, producing the layers B_0, B_1, ..., B_s of Section 3.
//
// layer[v] = dist(v, base) measured within G[restrict] when restrict is
// non-nil (otherwise in G); -1 for unreachable or non-restricted nodes.
func Layering(g *graph.G, base []int, restrict []bool) []int {
	work := g
	if restrict != nil {
		work = maskGraph(g, restrict)
	}
	dist, _ := work.MultiSourceDist(base)
	if restrict != nil {
		for v := range dist {
			if !restrict[v] {
				dist[v] = -1
			}
		}
	}
	return dist
}

// maskGraph returns g with edges incident to non-restricted nodes removed.
func maskGraph(g *graph.G, restrict []bool) *graph.G {
	sub := graph.New(g.N())
	for _, e := range g.Edges() {
		if restrict[e[0]] && restrict[e[1]] {
			sub.MustEdge(e[0], e[1])
		}
	}
	return sub
}

// ListColorMode selects the list-coloring subroutine used when re-coloring
// layers (Theorem 18's deterministic algorithm vs Theorem 19's randomized
// one, per our substitutions in DESIGN.md §3).
type ListColorMode int

const (
	// ListColorRandomized uses random color trials (O(log n) w.h.p.).
	ListColorRandomized ListColorMode = iota + 1
	// ListColorDeterministic schedules by the classes of a Linial coloring.
	ListColorDeterministic
)

// LayerColorer colors layered node sets in reverse layer order, one
// (deg+1)-list-coloring instance per layer, charging rounds to the
// accountant. It owns the base coloring needed by the deterministic mode
// and a single network over g that every layer instance reuses (reseeded
// per layer) — the port tables are built once, not once per phase.
type LayerColorer struct {
	g          *graph.G
	delta      int
	mode       ListColorMode
	seed       int64
	acct       *local.Accountant
	net        *local.Network
	baseColors []int
	baseK      int
}

// NewLayerColorer prepares a colorer. In deterministic mode it computes a
// Linial base coloring up front (charged to the accountant once).
func NewLayerColorer(g *graph.G, delta int, mode ListColorMode, seed int64, acct *local.Accountant) *LayerColorer {
	lc := &LayerColorer{g: g, delta: delta, mode: mode, seed: seed, acct: acct}
	lc.net = local.NewNetwork(g, seed)
	if mode == ListColorDeterministic {
		colors, k, rounds := dist.Linial(lc.net)
		lc.baseColors, lc.baseK = colors, k
		acct.Charge("linial", rounds)
	}
	return lc
}

// ColorLayersReverse colors every node with layer[v] in [1, s] (and
// colors[v] < 0) in decreasing layer order, writing into colors. Layer 0 is
// the caller's responsibility (base layers are colored with different
// techniques). Nodes whose list instance turns out infeasible are repaired
// with the distributed Brooks procedure and counted in repairs.
func (lc *LayerColorer) ColorLayersReverse(colors []int, layer []int, s int, phase string) (repairs int, err error) {
	lc.acct.Begin(phase)
	defer lc.acct.End()
	for i := s; i >= 1; i-- {
		active := make([]bool, lc.g.N())
		any := false
		for v := range layer {
			if layer[v] == i && colors[v] < 0 {
				active[v] = true
				any = true
			}
		}
		if !any {
			continue
		}
		li := dist.NewListInstance(lc.g, active, colors, lc.delta)
		got, rounds, solveErr := lc.solve(li, int64(i))
		lc.acct.Charge(fmt.Sprintf("%s[%d]", phase, i), rounds)
		if solveErr != nil {
			// Infeasible or unlucky instance: repair node-by-node with the
			// Brooks token procedure at the end; mark and continue.
			repairs += repairDefer(colors, active)
			continue
		}
		for v := range got {
			if active[v] {
				colors[v] = got[v]
			}
		}
	}
	return repairs, nil
}

// solve runs the configured list-coloring subroutine on the shared
// network, reseeded per layer (the per-layer seeds are unchanged from the
// build-a-network-per-layer era, so colorings are byte-identical — only
// the repeated O(n + Σ deg) construction cost is gone).
func (lc *LayerColorer) solve(li *dist.ListInstance, salt int64) ([]int, int, error) {
	if err := li.CheckDegPlusOne(lc.g); err != nil {
		return nil, 0, err
	}
	lc.net.Reseed(lc.seed*31 + salt)
	switch lc.mode {
	case ListColorDeterministic:
		return dist.ListColorDeterministic(lc.net, li, lc.baseColors, lc.baseK)
	default:
		return dist.ListColorRandomized(lc.net, li)
	}
}

// repairDefer leaves the active nodes uncolored (colors[v] stays -1) so the
// final repair pass can fix them; returns how many were deferred.
func repairDefer(colors []int, active []bool) int {
	n := 0
	for v := range active {
		if active[v] && colors[v] < 0 {
			n++
		}
	}
	return n
}

// RepairUncolored completes any remaining uncolored nodes with the batched
// distributed Brooks engine (Theorem 5 walks scheduled by an MIS over
// their repair balls, see brooks.RepairHoles). Each batch of
// pairwise-independent repairs is charged its max rounds plus the
// scheduling cost — not the sum the pre-batching safety net billed. Used
// as the safety net that makes every algorithm total on all nice inputs.
func RepairUncolored(g *graph.G, colors []int, delta int, seed int64, acct *local.Accountant) (*brooks.BatchResult, error) {
	res, err := brooks.Repair(g, colors, delta, seed)
	if err != nil {
		return res, fmt.Errorf("repair: %w", err)
	}
	chargeRepairBatches(acct, "repair", res)
	return res, nil
}

// chargeRepairBatches records a batched repair run's per-batch costs under
// phase names "<prefix>-sched[i]" / "<prefix>-batch[i]".
func chargeRepairBatches(acct *local.Accountant, prefix string, res *brooks.BatchResult) {
	acct.Begin(prefix)
	defer acct.End()
	for i, b := range res.Batches {
		if b.SchedRounds > 0 {
			acct.Charge(fmt.Sprintf("%s-sched[%d]", prefix, i), b.SchedRounds)
		}
		acct.Charge(fmt.Sprintf("%s-batch[%d]", prefix, i), b.Rounds)
	}
}
