package core

import (
	"errors"
	"fmt"

	"deltacolor/graph"
	"deltacolor/internal/brooks"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// Precondition errors shared by all Δ-coloring entry points.
var (
	// ErrComplete: the graph is a clique; by Brooks' theorem it has no
	// Δ-coloring.
	ErrComplete = errors.New("graph is a complete graph (not Δ-colorable)")
	// ErrOddCycle: the graph is an odd cycle (Δ = 2, chromatic number 3).
	ErrOddCycle = errors.New("graph is an odd cycle (not Δ-colorable)")
	// ErrDegreeTooSmall: Δ <= 2 (paths/cycles need Ω(n) rounds even when
	// 2-colorable; the theorems require Δ >= 3).
	ErrDegreeTooSmall = errors.New("maximum degree must be at least 3")
	// ErrDisconnected: algorithms expect each component to be nice; run
	// per component.
	ErrNotNice = errors.New("graph is a path, cycle or clique (not a nice graph)")
)

// CheckNice validates the theorems' preconditions: Δ >= minDelta and the
// graph is nice (not a path, cycle or clique). Disconnected inputs are
// accepted when every component is nice; the coloring is computed on all
// components simultaneously (the LOCAL model does this for free).
func CheckNice(g *graph.G, minDelta int) (int, error) {
	delta := g.MaxDegree()
	if delta < minDelta || delta < 3 {
		return delta, fmt.Errorf("Δ=%d: %w", delta, ErrDegreeTooSmall)
	}
	comp, count := g.ConnectedComponents()
	byComp := make([][]int, count)
	for v, c := range comp {
		byComp[c] = append(byComp[c], v)
	}
	for _, nodes := range byComp {
		sub, _, err := g.InducedSubgraph(nodes)
		if err != nil {
			return delta, err
		}
		if sub.IsClique() && sub.N() == delta+1 {
			return delta, ErrComplete
		}
		if !sub.IsNice() {
			return delta, ErrNotNice
		}
	}
	return delta, nil
}

// Result is the outcome of a Δ-coloring run.
type Result struct {
	Colors  []int
	Delta   int
	Rounds  int
	Phases  []local.PhaseStat
	Repairs int // nodes completed by the Brooks safety net
	// RepairBatches counts the batch iterations the Brooks repair engine
	// ran (across every engine invocation of the algorithm); 0 when no
	// repairs were needed. RepairBatchRounds is the per-batch charged
	// rounds histogram (scheduling + execution), concatenated in
	// invocation order.
	RepairBatches     int
	RepairBatchRounds []int
	// Span is the run's nested timeline (pipeline → phase → primitive),
	// collected only when a default tracer is installed
	// (local.SetDefaultTracer); nil otherwise.
	Span *local.Span
}

// startSpans opens span collection on acct when a process-wide tracer is
// installed, returning it (possibly nil) for the closing finishSpans.
func startSpans(acct *local.Accountant, pipeline string) *local.Tracer {
	tr := local.DefaultTracer()
	if tr != nil {
		acct.StartSpans(pipeline, tr)
	}
	return tr
}

// addRepairStats folds one batched-repair run into the result's stats.
func (r *Result) addRepairStats(res *brooks.BatchResult) {
	r.RepairBatches += len(res.Batches)
	r.RepairBatchRounds = append(r.RepairBatchRounds, res.BatchRounds()...)
}

// Deterministic runs the Theorem 4 algorithm:
//
//	(1) build base layer B0 as an (R, β) ruling set (deterministic AGLP
//	    recursion), R chosen so the Brooks recolorings of B0 nodes stay in
//	    disjoint balls;
//	(2) peel layers B_1..B_s by distance to B0;
//	(3) re-color layers in reverse order, each a (deg+1)-list instance,
//	    with the deterministic list-coloring subroutine;
//	(4) color B0 nodes independently via the distributed Brooks theorem.
//
// Round complexity with our substitutions: O(Δ²·log²n) — the paper's
// O(√Δ log^1.5Δ · log²n) with the Δ-dependence of our simpler list-coloring
// subroutine; the log²n growth in n is the quantity experiment E3 checks.
func Deterministic(g *graph.G, seed int64) (*Result, error) {
	delta, err := CheckNice(g, 3)
	if err != nil {
		return nil, err
	}
	acct := &local.Accountant{}
	startSpans(acct, "deterministic")
	n := g.N()

	// R: B0 members must be far enough apart that Brooks recolorings
	// (search radius rB, touched radius <= 3·rB) do not interact.
	rB := brooks.SearchRadius(n, delta)
	bigR := 6*rB + 3

	acct.Begin("decompose")
	rs := DetRulingSetCompute(g, nil, bigR)
	acct.Charge("ruling-set", rs.Rounds)

	var base []int
	for v := 0; v < n; v++ {
		if rs.InSet[v] {
			base = append(base, v)
		}
	}
	layer := Layering(g, base, nil)
	s := 0
	for _, l := range layer {
		if l > s {
			s = l
		}
	}
	acct.Charge("layering", s)
	acct.End()

	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	lc := NewLayerColorer(g, delta, ListColorDeterministic, seed, acct)
	repairs, err := lc.ColorLayersReverse(colors, layer, s, "layers")
	if err != nil {
		return nil, err
	}

	// Color B0 via Theorem 5 through the batch engine: the ruling-set
	// spacing guarantees disjoint recoloring balls, so the engine schedules
	// every B0 repair into one batch charged max rounds — the same
	// accounting the old hand-rolled loop used, now with the independence
	// verified instead of assumed.
	b0res, err := brooks.RepairHoles(g, colors, base, delta, seed+0xb0)
	if err != nil {
		return nil, fmt.Errorf("deterministic: color B0: %w", err)
	}
	chargeRepairBatches(acct, "brooks-B0", b0res)

	rres, err := RepairUncolored(g, colors, delta, seed+0x4e9, acct)
	if err != nil {
		return nil, fmt.Errorf("deterministic: %w", err)
	}
	repairs += rres.Fixed

	if err := dist.VerifyColoring(g, colors); err != nil {
		return nil, fmt.Errorf("deterministic: %w", err)
	}
	out := &Result{
		Colors:  colors,
		Delta:   delta,
		Rounds:  acct.Total(),
		Phases:  acct.Phases(),
		Repairs: repairs,
	}
	out.addRepairStats(b0res)
	out.addRepairStats(rres)
	out.Span = acct.FinishSpans()
	return out, nil
}
