package core

import (
	"math/rand"

	"deltacolor/graph"
)

// ShatterStats quantifies one run of the Section 4 marking process
// (phases 4–5) without completing the coloring. Experiment E6 uses it to
// check Lemmas 22–24: the per-node survival probability should be
// poly(Δ)-small and the surviving components poly(Δ)·log n-sized; E10
// sweeps the (p, b) design choices through it.
type ShatterStats struct {
	N         int     // nodes in the trial graph H
	Delta     int     //
	P         float64 // selection probability used
	Backoff   int     // backoff distance used
	R         int     // happiness radius used
	Selected  int     // nodes that drew heads
	TNodes    int     // selected nodes that survived backoff and marked a pair
	Marked    int     // nodes colored with color one
	Survivors int     // nodes left in L (unhappy, unmarked)
	// MaxComponent is the largest connected component of L.
	MaxComponent int
	// Components is the number of connected components of L.
	Components int
}

// SurvivalRate is Survivors / N.
func (s ShatterStats) SurvivalRate() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Survivors) / float64(s.N)
}

// ShatterOnce runs phases (4)–(5) of the randomized algorithm on the whole
// graph (treating every node as part of the remainder graph H) and reports
// the shattering statistics. The graph is not modified.
func ShatterOnce(g *graph.G, opts RandOptions) ShatterStats {
	delta := g.MaxDegree()
	o := opts.AutoParams(g.N(), delta)
	n := g.N()
	rng := rand.New(rand.NewSource(o.Seed ^ 0x5eed))

	inH := make([]bool, n)
	for v := range inH {
		inH[v] = true
	}
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}

	sh := runMarking(g, inH, delta, o, rng)
	for _, v := range sh.marked {
		colors[v] = 0
	}
	// selected[] and isTNode[] coincide after runMarking: both record the
	// nodes that survived the backoff and marked a pair.
	tnodes := 0
	for v := 0; v < n; v++ {
		if sh.isTNode[v] {
			tnodes++
		}
	}
	marked := 0
	for v := 0; v < n; v++ {
		if colors[v] == 0 {
			marked++
		}
	}

	layerC, _ := buildHappyLayers(g, inH, sh, delta, o.R, colors)

	inL := make([]bool, n)
	survivors := 0
	for v := 0; v < n; v++ {
		if inH[v] && colors[v] < 0 && layerC[v] < 0 {
			inL[v] = true
			survivors++
		}
	}
	maxComp, comps := largestComponent(g, inL)
	return ShatterStats{
		N:            n,
		Delta:        delta,
		P:            o.P,
		Backoff:      o.Backoff,
		R:            o.R,
		Selected:     tnodes, // survivors of the backoff
		TNodes:       tnodes,
		Marked:       marked,
		Survivors:    survivors,
		MaxComponent: maxComp,
		Components:   comps,
	}
}

// largestComponent returns the size of the largest connected component of
// G[in] and the number of components.
func largestComponent(g *graph.G, in []bool) (largest, count int) {
	sub := maskGraph(g, in)
	comp, nc := sub.ConnectedComponents()
	size := make([]int, nc)
	for v := 0; v < g.N(); v++ {
		if in[v] {
			size[comp[v]]++
		}
	}
	for _, s := range size {
		if s == 0 {
			continue
		}
		count++
		if s > largest {
			largest = s
		}
	}
	return largest, count
}
