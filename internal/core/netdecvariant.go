package core

import (
	"fmt"
	"math"

	"deltacolor/graph"
	"deltacolor/internal/brooks"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// DeterministicNetDec runs the Theorem 21 algorithm ([PS95, Theorem 5],
// reproved in the paper via the layering technique):
//
//	(1) compute a network decomposition (our LDD substitution for the
//	    2^O(√log n) deterministic decomposition of [PS92], see DESIGN.md §3);
//	(2) build the base layer B0 as an (R, ·) ruling set computed greedily
//	    over the decomposition's color classes, R chosen so B0 members'
//	    Brooks recoloring balls are disjoint;
//	(3) peel layers B_1..B_s by distance to B0 and re-color them in reverse
//	    order, each a (deg+1)-list instance, solving the instances color
//	    class by color class over the decomposition;
//	(4) color B0 via the distributed Brooks theorem (Theorem 5).
//
// Compared to Deterministic (Theorem 4), the ruling set and the list
// colorings ride on the decomposition instead of the AGLP recursion and
// Linial color classes; experiment E8 compares the two round counts.
func DeterministicNetDec(g *graph.G, seed int64) (*Result, error) {
	delta, err := CheckNice(g, 3)
	if err != nil {
		return nil, err
	}
	acct := &local.Accountant{}
	startSpans(acct, "netdec")
	n := g.N()

	acct.Begin("decompose")
	// (1) Network decomposition with beta = Θ(1/log n).
	beta := 1.0 / math.Max(1, math.Log(float64(n+2)))
	dec := dist.Decompose(g, nil, beta, seed)
	if err := dist.VerifyDecomposition(g, nil, dec); err != nil {
		acct.End() // close "decompose" on the error path (spanpair)
		return nil, fmt.Errorf("netdec variant: %w", err)
	}
	acct.Charge("decomposition", dec.Rounds)

	// (2) B0: greedy (R, ·) ruling set over decomposition color classes.
	// Iterating one class costs one cluster-graph round = 2·MaxRadius+1
	// G-rounds, plus a distance-R probe per chosen candidate batch.
	rB := brooks.SearchRadius(n, delta)
	bigR := 6*rB + 3
	base := rulingSetViaDecomposition(g, dec, bigR)
	acct.Charge("ruling-set", dec.NumColors*(2*dec.MaxRadius+1+bigR))
	if len(base) == 0 {
		base = []int{0}
	}

	// (3) Layers by distance to B0, colored in reverse.
	layer := Layering(g, base, nil)
	s := 0
	for _, l := range layer {
		if l > s {
			s = l
		}
	}
	acct.Charge("layering", s)
	acct.End()

	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	lc := NewLayerColorer(g, delta, ListColorDeterministic, seed, acct)
	repairs, err := lc.ColorLayersReverse(colors, layer, s, "layers")
	if err != nil {
		return nil, err
	}

	// (4) B0 via Theorem 5 through the batch engine (independent
	// recolorings; spacing >= bigR puts them all in one batch).
	b0res, err := brooks.RepairHoles(g, colors, base, delta, seed+0xb0)
	if err != nil {
		return nil, fmt.Errorf("netdec variant: color B0: %w", err)
	}
	chargeRepairBatches(acct, "brooks-B0", b0res)

	rres, err := RepairUncolored(g, colors, delta, seed+0x4e9, acct)
	if err != nil {
		return nil, fmt.Errorf("netdec variant: %w", err)
	}
	repairs += rres.Fixed

	if err := dist.VerifyColoring(g, colors); err != nil {
		return nil, fmt.Errorf("netdec variant: %w", err)
	}
	out := &Result{
		Colors:  colors,
		Delta:   delta,
		Rounds:  acct.Total(),
		Phases:  acct.Phases(),
		Repairs: repairs,
	}
	out.addRepairStats(b0res)
	out.addRepairStats(rres)
	out.Span = acct.FinishSpans()
	return out, nil
}

// rulingSetViaDecomposition selects cluster centers class by class,
// keeping a center only when no previously chosen node lies within
// distance < bigR. The result is an independent-at-distance-bigR set; it
// need not dominate the graph (unreached nodes end up in high layers,
// which the layering pass still covers because Layering assigns -1 only
// to disconnected nodes — callers treat the whole reachable set).
//
// The blocking probe is symmetric — a candidate is rejected iff some
// already-chosen node lies within distance bigR-1 of it — so the default
// path runs one stepped distance-(bigR-1) flood from the chosen set per
// class (the real message-passing form, allocation-free int rounds) and
// only the intra-class additions are marked centrally as each center is
// accepted. The ablated path (SetSteppedGather(false)) is the original
// per-candidate central BFS probe; both produce the identical base set,
// and the manual round charge at the call site covers either form.
func rulingSetViaDecomposition(g *graph.G, dec *dist.Decomposition, bigR int) []int {
	var base []int
	chosen := make([]bool, g.N())
	if local.SteppedGatherEnabled() {
		fnet := local.NewNetwork(g, 1)
		for class := 0; class < dec.NumColors; class++ {
			blocked := local.FloodStepped(fnet, chosen, bigR-1)
			for ci, center := range dec.Centers {
				if dec.ClusterColor[ci] != class || blocked[center] {
					continue
				}
				chosen[center] = true
				base = append(base, center)
				for _, u := range g.BFSLimited(center, bigR-1).Order {
					blocked[u] = true
				}
			}
		}
		return base
	}
	for class := 0; class < dec.NumColors; class++ {
		for ci, center := range dec.Centers {
			if dec.ClusterColor[ci] != class {
				continue
			}
			ok := true
			res := g.BFSLimited(center, bigR-1)
			for _, u := range res.Order {
				if chosen[u] {
					ok = false
					break
				}
			}
			if ok {
				chosen[center] = true
				base = append(base, center)
			}
		}
	}
	return base
}
