package core

import (
	"deltacolor/graph"
)

// DetRulingSet computes a (k, (k-1)·ceil(log2 n)) ruling set of G[active]
// deterministically with the classic Awerbuch–Goldberg–Luby–Plotkin bit
// recursion: split candidates on the highest ID bit, recursively compute
// ruling sets of both halves in parallel, keep the 0-side and add 1-side
// members at distance >= k from it. One recursion level costs k-1 rounds
// (a distance-(k-1) probe), so the whole computation costs
// (k-1)·ceil(log2 n) rounds.
//
// This substitutes for the SEW13-based deterministic ruling sets of
// Lemma 20 (1)/(2); the (α, β) contract the layering technique needs is
// identical, with β = (k-1)·log n instead of k²·β' (see DESIGN.md §3).
type DetRulingSet struct {
	InSet  []bool
	Alpha  int
	Beta   int
	Rounds int
}

// DetRulingSetCompute runs the recursion over the given candidate IDs
// (distances are measured in g, matching the layering semantics).
func DetRulingSetCompute(g *graph.G, active []bool, k int) *DetRulingSet {
	n := g.N()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	var candidates []int
	for v := 0; v < n; v++ {
		if active == nil || active[v] {
			candidates = append(candidates, v)
		}
	}
	set := aglpRec(g, candidates, k, bits-1)
	in := make([]bool, n)
	for _, v := range set {
		in[v] = true
	}
	beta := (k - 1) * bits
	if beta < 1 {
		beta = 1
	}
	return &DetRulingSet{
		InSet:  in,
		Alpha:  k,
		Beta:   beta,
		Rounds: (k - 1) * bits,
	}
}

func aglpRec(g *graph.G, candidates []int, k, bit int) []int {
	if len(candidates) == 0 {
		return nil
	}
	if len(candidates) == 1 || bit < 0 {
		// IDs are unique, so at bit < 0 a single candidate remains per
		// recursion path.
		return candidates[:1]
	}
	var c0, c1 []int
	for _, v := range candidates {
		if v&(1<<bit) == 0 {
			c0 = append(c0, v)
		} else {
			c1 = append(c1, v)
		}
	}
	s0 := aglpRec(g, c0, k, bit-1)
	s1 := aglpRec(g, c1, k, bit-1)
	if len(s0) == 0 {
		return s1
	}
	// Keep s1 members at distance >= k from s0 (distance-(k-1) probe).
	dist, _ := g.MultiSourceDist(s0)
	out := append([]int(nil), s0...)
	for _, v := range s1 {
		if dist[v] < 0 || dist[v] >= k {
			out = append(out, v)
		}
	}
	return out
}
