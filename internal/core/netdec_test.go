package core

import (
	"errors"
	"math/rand"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

func TestDeterministicNetDecOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	families := []struct {
		name string
		g    *graph.G
	}{
		{"torus 8x8", gen.Torus(8, 8)},
		{"hypercube d=4", gen.Hypercube(4)},
		{"random 4-regular n=256", gen.MustRandomRegular(rng, 256, 4)},
		{"random 6-regular n=128", gen.MustRandomRegular(rng, 128, 6)},
		{"petersen", gen.Petersen()},
	}
	for _, tc := range families {
		t.Run(tc.name, func(t *testing.T) {
			res, err := DeterministicNetDec(tc.g, 1)
			if err != nil {
				t.Fatalf("DeterministicNetDec: %v", err)
			}
			colorCheck(t, tc.g, res)
		})
	}
}

func TestDeterministicNetDecRejectsBadInputs(t *testing.T) {
	if _, err := DeterministicNetDec(gen.Complete(5), 1); !errors.Is(err, ErrComplete) {
		t.Fatalf("K5: got %v, want ErrComplete", err)
	}
	if _, err := DeterministicNetDec(gen.Cycle(9), 1); !errors.Is(err, ErrDegreeTooSmall) {
		t.Fatalf("C9: got %v, want ErrDegreeTooSmall", err)
	}
}

func TestDeterministicNetDecMultipleSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g := gen.MustRandomRegular(rng, 128, 4)
	for seed := int64(0); seed < 4; seed++ {
		res, err := DeterministicNetDec(g, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestShatterOnceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := gen.MustRandomRegular(rng, 1024, 4)
	st := ShatterOnce(g, RandOptions{Seed: 3})

	if st.N != g.N() || st.Delta != 4 {
		t.Fatalf("N=%d Delta=%d, want %d, 4", st.N, st.Delta, g.N())
	}
	if st.P <= 0 || st.Backoff != 6 || st.R <= 0 {
		t.Fatalf("params not auto-filled: %+v", st)
	}
	// Each surviving T-node marks exactly two neighbors, but two T-nodes
	// can mark the same node (they are >= backoff apart, so with b >= 2
	// they cannot share a neighbor; marks are distinct).
	if st.Marked != 2*st.TNodes {
		t.Fatalf("marked=%d, want 2·T-nodes=%d", st.Marked, 2*st.TNodes)
	}
	if st.Survivors < 0 || st.Survivors > st.N {
		t.Fatalf("survivors=%d out of range", st.Survivors)
	}
	if st.MaxComponent > st.Survivors {
		t.Fatalf("max component %d > survivors %d", st.MaxComponent, st.Survivors)
	}
	if (st.Survivors == 0) != (st.Components == 0) {
		t.Fatalf("survivors=%d but components=%d", st.Survivors, st.Components)
	}
	if rate := st.SurvivalRate(); rate < 0 || rate > 1 {
		t.Fatalf("survival rate %v out of [0,1]", rate)
	}
}

func TestShatterOnceZeroGraph(t *testing.T) {
	st := ShatterStats{}
	if st.SurvivalRate() != 0 {
		t.Fatalf("empty stats survival rate = %v, want 0", st.SurvivalRate())
	}
}

func TestShatterOnceSweepBackoff(t *testing.T) {
	// Larger backoff => no more T-nodes than smaller backoff in
	// expectation; here just assert the process stays well-formed across
	// the ablation range used by E10.
	rng := rand.New(rand.NewSource(88))
	g := gen.MustRandomRegular(rng, 512, 4)
	for _, b := range []int{2, 6, 12} {
		st := ShatterOnce(g, RandOptions{Seed: 1, Backoff: b})
		if st.Backoff != b {
			t.Fatalf("backoff %d not honored: %+v", b, st)
		}
		if st.Marked != 2*st.TNodes {
			t.Fatalf("b=%d: marked=%d, want %d", b, st.Marked, 2*st.TNodes)
		}
	}
}

func TestRulingSetViaDecompositionSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := gen.MustRandomRegular(rng, 256, 4)
	// Build a decomposition and derive a spaced ruling set from it.
	res, err := DeterministicNetDec(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Indirectly validated: the run completed with a proper coloring and
	// the Brooks phase (disjoint balls) raised no error.
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		t.Fatal(err)
	}
}

// TestSmallDeltaShatteringCoversAll checks Section 4.4's claim at laptop
// scale: with the small-Δ parameterization (r = Θ(log log n)) the
// shattering phase leaves nothing behind whenever at least one T-node
// survives — the algorithm can then skip phase (6) entirely.
func TestSmallDeltaShatteringCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	covered := 0
	trials := 6
	for i := 0; i < trials; i++ {
		g := gen.MustRandomRegular(rng, 2048, 3)
		st := ShatterOnce(g, RandOptions{Seed: int64(i), SmallDelta: true, Backoff: 3})
		if st.TNodes > 0 && st.Survivors == 0 {
			covered++
		}
		if st.TNodes > 0 && st.Survivors > 0 {
			t.Fatalf("trial %d: %d T-nodes but %d survivors — the Θ(log log n) radius should cover the graph at this scale", i, st.TNodes, st.Survivors)
		}
	}
	if covered == 0 {
		t.Fatal("no trial produced a surviving T-node; cannot validate §4.4 at this scale")
	}
}

// TestRandomizedOnDCCGadget: the NearRegularWithDCC family glues a
// canonical degree-choosable component onto a regular graph, so the DCC
// machinery (phase 1-3, brute-force base coloring) must actually engage.
func TestRandomizedOnDCCGadget(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for i := 0; i < 4; i++ {
		g, err := gen.NearRegularWithDCC(rng, 128, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Randomized(g, RandOptions{Seed: int64(i)})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		colorCheck(t, g, res)
	}
}
