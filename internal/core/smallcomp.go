package core

import (
	"math"

	"deltacolor/graph"
	"deltacolor/internal/dist"
	"deltacolor/internal/gallai"
	"deltacolor/local"
)

// colorSmallComponents implements Section 4.3 (phase 6): the components of
// L — the nodes that neither found a T-node nor sit near the boundary —
// are shattered-small w.h.p. (Lemmas 23/24) and are colored first:
//
//	(1) anchors: free nodes (degree < Δ or an uncolored neighbor outside
//	    the component) and DCCs of radius <= R_C inside the component;
//	(2) a ruling set (MIS) over the virtual anchor graph;
//	(3) layers D_i by distance to the chosen anchors, colored in reverse
//	    as (deg+1)-list instances;
//	(4) anchors last: DCCs brute-forced from degree lists, free nodes
//	    greedily (their outside slack guarantees a free color).
//
// Components the heuristics fail to anchor are deferred to the Brooks
// repair pass; the count is returned.
func colorSmallComponents(g *graph.G, inL []bool, colors []int, delta int, o RandOptions, lc *LayerColorer, acct *local.Accountant) (int, error) {
	n := g.N()
	lGraph := maskGraph(g, inL)
	comp, count := componentsOf(lGraph)
	byComp := make([][]int, count)
	for v := 0; v < n; v++ {
		if inL[v] {
			byComp[comp[v]] = append(byComp[comp[v]], v)
		}
	}

	deferred := 0
	groups, maxRC, err := discoverAnchors(g, inL, colors, byComp, delta)
	if err != nil {
		return deferred, err
	}
	acct.Charge("small-anchors", 2*maxRC)
	if len(groups) == 0 {
		// No component could be anchored; defer everything to the Brooks
		// repair pass.
		for v := 0; v < n; v++ {
			if inL[v] {
				deferred++
			}
		}
		return deferred, nil
	}

	// Ruling set over the virtual anchor graph, built straight from the
	// masked graph's port tables (see local.QuotientNetwork).
	nodeSets := make([][]int, len(groups))
	for gi, grp := range groups {
		nodeSets[gi] = grp.nodes
	}
	qnet := local.QuotientNetwork(lGraph, nodeSets, o.Seed+23)
	inMIS, misRounds := dist.LubyMIS(qnet, nil)
	acct.Charge("small-ruling-set", misRounds*(2*maxRC+1))

	inBase := make([]bool, n)
	var base []int
	var chosen []int
	for gi, grp := range groups {
		if !inMIS[gi] {
			continue
		}
		chosen = append(chosen, gi)
		for _, v := range grp.nodes {
			if !inBase[v] {
				inBase[v] = true
				base = append(base, v)
			}
		}
	}

	// D layers by distance within L to the chosen anchors.
	layerD := Layering(g, base, inL)
	sD := 0
	for v := 0; v < n; v++ {
		if !inL[v] {
			layerD[v] = -1
			continue
		}
		if inBase[v] {
			layerD[v] = 0
		}
		if layerD[v] > sD {
			sD = layerD[v]
		}
		if layerD[v] < 0 {
			deferred++ // unreachable from any anchor; repaired later
		}
	}
	acct.Charge("small-layers", sD)

	rep, err := lc.ColorLayersReverse(colors, layerD, sD, "D")
	if err != nil {
		return deferred, err
	}
	deferred += rep

	// Anchors last (independently: MIS groups are pairwise non-adjacent).
	maxRad := 0
	for _, gi := range chosen {
		grp := groups[gi]
		if grp.free {
			v := grp.nodes[0]
			if colors[v] < 0 {
				if c := freeColorOf(g, colors, v, delta); c >= 0 {
					colors[v] = c
				} else {
					deferred++
				}
			}
			continue
		}
		if !allUncolored(colors, grp.nodes) {
			continue
		}
		lists := gallai.DegreeLists(g, grp.nodes, colors, delta)
		sol, err := gallai.BruteListColor(g, grp.nodes, lists)
		if err != nil {
			deferred += len(grp.nodes)
			continue
		}
		for v, c := range sol {
			colors[v] = c
		}
		if r := gallai.SetRadius(g, grp.nodes); r > maxRad {
			maxRad = r
		}
	}
	acct.Charge("small-anchors-color", 2*maxRad+1)
	return deferred, nil
}

// smallComponentNetLimit caps the graph size for which component
// discovery runs through the stepped network. The stepped collector costs
// O(|component|) per-node memory (every member learns its component), so
// it is reserved for the shattered-small regime the phase targets;
// anything larger — or a component overrunning the collector's own cap —
// falls back to the central traversal.
const smallComponentNetLimit = 65536

// componentsOf computes the connected components of the masked L-graph,
// through the stepped engine by default (the message-passing form the
// shattering analysis describes) with the central traversal as the
// ablated and fallback path. Both number components in ascending order of
// their minimum member, so the choice is observationally invisible; the
// equivalence suite pins that.
func componentsOf(lGraph *graph.G) ([]int, int) {
	if local.SteppedGatherEnabled() && lGraph.N() <= smallComponentNetLimit {
		if comp, count, ok := local.CollectComponents(local.NewNetwork(lGraph, 1)); ok {
			return comp, count
		}
	}
	return lGraph.ConnectedComponents()
}

// anchorGroup is one candidate anchor of a small component: a DCC (free ==
// false) or a free-node singleton (free == true).
type anchorGroup struct {
	nodes []int
	free  bool
}

// discoverAnchors finds the candidate anchors of every component: DCC
// groups first, then free-node singletons for nodes outside every DCC
// group of their component. The exclusion matters because anchor groups
// may otherwise overlap — a free node frequently sits inside a
// degree-choosable component — and while the quotient network marks
// overlapping groups adjacent, so the ruling set can never select two
// groups sharing a node (TestQuotientNetworkSharedMemberAdjacent), a
// redundant singleton anchor would only shrink the ruling set's coverage.
// The returned groups are pairwise disjoint within each component by
// construction (TestDiscoverAnchorsOverlapExcluded). maxRC is the largest
// per-component DCC search radius, the ball the anchor discovery is
// charged for.
func discoverAnchors(g *graph.G, inL []bool, colors []int, byComp [][]int, delta int) (groups []anchorGroup, maxRC int, err error) {
	for _, nodes := range byComp {
		if len(nodes) == 0 {
			continue
		}
		base := math.Max(2, float64(delta-2))
		rc := int(math.Ceil(2*math.Log(float64(len(nodes))+1)/math.Log(base))) + 1
		if rc > maxRC {
			maxRC = rc
		}
		// DCCs inside the component (searched in the induced subgraph so
		// the component's own structure decides choosability).
		sub, orig, err := g.InducedSubgraph(nodes)
		if err != nil {
			return nil, maxRC, err
		}
		subDCCs, _, _ := gallai.SelectDCCs(sub, rc)
		seen := map[int]bool{}
		inDCC := map[int]bool{}
		for _, d := range subDCCs {
			key := minOf(d)
			if seen[key] {
				continue // dedupe identical selections cheaply by their min node
			}
			seen[key] = true
			mapped := make([]int, len(d))
			for i, x := range d {
				mapped[i] = orig[x]
			}
			groups = append(groups, anchorGroup{nodes: mapped})
			for _, v := range mapped {
				inDCC[v] = true
			}
		}
		// Free nodes not already anchored by a DCC group.
		for _, v := range nodes {
			if !inDCC[v] && isFreeNode(g, inL, colors, v, delta) {
				groups = append(groups, anchorGroup{nodes: []int{v}, free: true})
			}
		}
	}
	return groups, maxRC, nil
}

// isFreeNode implements the Section 4.3 definition: degree < Δ, or at
// least one neighbor outside the component that is not colored with the
// first color after shattering (i.e. still uncolored).
func isFreeNode(g *graph.G, inL []bool, colors []int, v, delta int) bool {
	if g.Deg(v) < delta {
		return true
	}
	for _, u := range g.Neighbors(v) {
		if !inL[u] && colors[u] < 0 {
			return true
		}
	}
	return false
}

func freeColorOf(g *graph.G, colors []int, v, delta int) int {
	used := make([]bool, delta)
	for _, u := range g.Neighbors(v) {
		if c := colors[u]; c >= 0 && c < delta {
			used[c] = true
		}
	}
	for c := 0; c < delta; c++ {
		if !used[c] {
			return c
		}
	}
	return -1
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
