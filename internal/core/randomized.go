package core

import (
	"fmt"
	"math"
	"math/rand"

	"deltacolor/graph"
	"deltacolor/internal/dist"
	"deltacolor/internal/gallai"
	"deltacolor/local"
)

// RandOptions parameterizes the randomized Δ-coloring algorithm of
// Section 4. Zero values select the paper's defaults (computed from n and
// Δ by AutoParams).
type RandOptions struct {
	Seed       int64
	R          int           // DCC-removal radius r (0 = auto)
	Backoff    int           // marking backoff distance b (0 = auto: 6 for Δ>=4, 12 for Δ=3)
	P          float64       // selection probability (0 = auto: Δ^-b clamped to practical scale)
	ListMode   ListColorMode // list-coloring subroutine (0 = randomized)
	SmallDelta bool          // force the small-Δ parameterization r = Θ(log log n)
}

// AutoParams fills the zero fields of o per the paper's choices: the
// large-Δ version (Theorem 3) uses a constant radius r and b = 6, p = Δ^-6;
// the small-Δ version (Theorem 1) uses r = Θ(log log n) and b = 12 for
// Δ = 3. p is clamped from below at laptop scale so the marking process
// fires on feasible n (the paper's asymptotic constants assume enormous n;
// see DESIGN.md §3).
func (o RandOptions) AutoParams(n, delta int) RandOptions {
	if o.Backoff == 0 {
		if delta == 3 {
			o.Backoff = 12
		} else {
			o.Backoff = 6
		}
	}
	if o.R == 0 {
		loglog := math.Log(math.Max(2, math.Log(math.Max(2, float64(n)))))
		if o.SmallDelta || delta <= 5 {
			// r = Θ(log log n), rounded up to a multiple of 6 (Lemma 14).
			r := int(math.Ceil(loglog))
			o.R = ((r + 5) / 6) * 6
			if o.R < 6 {
				o.R = 6
			}
		} else if delta <= 10 {
			o.R = 4 // the paper's O(1); 4 keeps 2r-ball collection cheap
		} else {
			// For large Δ a radius-4 ball is already the whole graph at
			// laptop scale; r = 2 is an equally valid choice of the paper's
			// constant and keeps DCC detection at O(poly Δ) per node.
			o.R = 2
		}
	}
	if o.P == 0 {
		p := math.Pow(float64(delta), -float64(o.Backoff))
		// At laptop scale Δ^-12 never fires. The survival probability of a
		// selected node against the backoff is ≈ exp(-p·|B_b|), so the
		// expected number of surviving T-nodes n·p·exp(-p·|B_b|) peaks at
		// p = 1/|B_b|; clamp from below there. Correctness is unaffected
		// (any p works), only the tail bounds of Lemma 23 assume the
		// paper's constant.
		ball := float64(delta)
		for i := 1; i < o.Backoff; i++ {
			ball *= float64(delta - 1)
			if ball > float64(4*n) {
				break
			}
		}
		if min := 1.0 / ball; p < min {
			p = min
		}
		if p > 0.05 {
			p = 0.05
		}
		o.P = p
	}
	if o.ListMode == 0 {
		o.ListMode = ListColorRandomized
	}
	return o
}

// Randomized runs the Section 4 algorithm (Theorems 1 and 3):
//
//	I   remove degree-choosable components of radius <= r (phases 1–3);
//	II  shattering: random T-node creation, happy-node layers, small
//	    leftover components (phases 4–6);
//	III color the happy layers in reverse (phase 7);
//	IV  color the DCC layers in reverse and brute-force the base layer
//	    (phases 8–9).
//
// Any node the probabilistic phases fail to cover is completed by the
// distributed Brooks safety net and counted in Result.Repairs, so the
// returned coloring is always a valid Δ-coloring on nice graphs.
func Randomized(g *graph.G, opts RandOptions) (*Result, error) {
	delta, err := CheckNice(g, 3)
	if err != nil {
		return nil, err
	}
	o := opts.AutoParams(g.N(), delta)
	acct := &local.Accountant{}
	startSpans(acct, "randomized")
	n := g.N()
	rng := rand.New(rand.NewSource(o.Seed ^ 0x5eed))

	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	lc := NewLayerColorer(g, delta, o.ListMode, o.Seed, acct)

	// ---- Phase I: remove DCCs of radius <= r (phases 1-3). ----
	acct.Begin("dcc-removal")
	dccs, _, selRounds := gallai.SelectDCCs(g, o.R)
	acct.Charge("dcc-select", selRounds)

	inB0 := make([]bool, n)
	var layerB []int
	sB := 0
	if len(dccs) > 0 {
		// The virtual DCC network is built directly from g's port tables
		// (linear in the groups' sizes and boundary edges), not by the
		// O(m) graph.Quotient + NewNetwork rebuild.
		qnet := local.QuotientNetwork(g, dccs, o.Seed+11)
		inMIS, misRounds := dist.LubyMIS(qnet, nil)
		acct.Charge("dcc-ruling-set", misRounds*(2*o.R+1))
		var base []int
		for di, d := range dccs {
			if inMIS[di] {
				for _, v := range d {
					if !inB0[v] {
						inB0[v] = true
						base = append(base, v)
					}
				}
			}
		}
		layerB = Layering(g, base, nil)
		// Keep only layers 0..sB; beyond that nodes stay in H.
		sB = 4*o.R + 2
		for v := range layerB {
			if layerB[v] > sB {
				layerB[v] = -1
			}
		}
		acct.Charge("dcc-layers", sB)
	} else {
		layerB = make([]int, n)
		for v := range layerB {
			layerB[v] = -1
		}
	}

	acct.End()

	inH := make([]bool, n)
	for v := 0; v < n; v++ {
		inH[v] = layerB[v] < 0
	}

	// ---- Phase II: shattering (phases 4-6). ----
	acct.Begin("shatter")
	sh := runMarking(g, inH, delta, o, rng)
	acct.Charge("marking", o.Backoff+2)
	for _, v := range sh.marked {
		colors[v] = 0 // color one
	}

	layerC, sC := buildHappyLayers(g, inH, sh, delta, o.R, colors)
	acct.Charge("happy-layers", 3*o.R)

	// Remaining graph L: H nodes that are neither marked nor in a C layer.
	inL := make([]bool, n)
	anyL := false
	for v := 0; v < n; v++ {
		if inH[v] && colors[v] < 0 && layerC[v] < 0 {
			inL[v] = true
			anyL = true
		}
	}
	repairs := 0
	if anyL {
		rep, err := colorSmallComponents(g, inL, colors, delta, o, lc, acct)
		if err != nil {
			acct.End() // close "shatter" on the error path (spanpair)
			return nil, err
		}
		repairs += rep
	}
	acct.End()

	// ---- Phase III: color happy layers C_{2r}..C_0 (phase 7). ----
	rep, err := lc.ColorLayersReverse(colors, shiftLayers(layerC), sC+1, "C")
	if err != nil {
		return nil, err
	}
	repairs += rep

	// ---- Phase IV: color DCC layers B_s..B_1 and base B0 (phases 8-9). ----
	rep, err = lc.ColorLayersReverse(colors, layerB, sB, "B")
	if err != nil {
		return nil, err
	}
	repairs += rep

	if len(dccs) > 0 {
		maxRad := 0
		for _, d := range dccs {
			if !allUncolored(colors, d) {
				continue
			}
			lists := gallai.DegreeLists(g, d, colors, delta)
			sol, err := gallai.BruteListColor(g, d, lists)
			if err != nil {
				// Heuristic DCC turned out infeasible against this boundary
				// (should not happen, Theorem 8); defer to repair.
				continue
			}
			for v, c := range sol {
				colors[v] = c
			}
			if r := gallai.SetRadius(g, d); r > maxRad {
				maxRad = r
			}
		}
		acct.Charge("B0-bruteforce", 2*maxRad+1)
	}

	rres, err := RepairUncolored(g, colors, delta, o.Seed+0x4e9, acct)
	if err != nil {
		return nil, fmt.Errorf("randomized: %w", err)
	}
	repairs += rres.Fixed

	if err := dist.VerifyColoring(g, colors); err != nil {
		return nil, fmt.Errorf("randomized: %w", err)
	}
	out := &Result{
		Colors:  colors,
		Delta:   delta,
		Rounds:  acct.Total(),
		Phases:  acct.Phases(),
		Repairs: repairs,
	}
	out.addRepairStats(rres)
	out.Span = acct.FinishSpans()
	return out, nil
}

// shatterState is the outcome of the marking process (phase 4).
type shatterState struct {
	selected []bool // survived the backoff and created a T-node
	marked   []int  // nodes colored with color one
	isTNode  []bool
}

// runMarking performs phase (4) on H: every H-node is selected with
// probability p; a selected node with another selected node within
// distance b (in H) unselects; survivors pick two random non-adjacent
// H-neighbors and mark them with color one, becoming T-nodes.
func runMarking(g *graph.G, inH []bool, delta int, o RandOptions, rng *rand.Rand) *shatterState {
	n := g.N()
	sh := &shatterState{
		selected: make([]bool, n),
		isTNode:  make([]bool, n),
	}
	hGraph := maskGraph(g, inH)
	var initial []int
	for v := 0; v < n; v++ {
		if inH[v] && rng.Float64() < o.P {
			initial = append(initial, v)
		}
	}
	// Backoff: unselect when another selected node is within distance b.
	initialSet := make([]bool, n)
	for _, v := range initial {
		initialSet[v] = true
	}
	for _, v := range initial {
		keep := true
		res := hGraph.BFSLimited(v, o.Backoff)
		for _, u := range res.Order {
			if u != v && initialSet[u] {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		// Pick two random non-adjacent H-neighbors.
		nbrs := hNeighbors(g, inH, v)
		pair, ok := randomNonAdjacentPair(g, nbrs, rng)
		if !ok {
			continue // neighborhood is a clique: cannot become a T-node
		}
		sh.selected[v] = true
		sh.isTNode[v] = true
		sh.marked = append(sh.marked, pair[0], pair[1])
	}
	return sh
}

func hNeighbors(g *graph.G, inH []bool, v int) []int {
	var out []int
	for _, u := range g.Neighbors(v) {
		if inH[u] {
			out = append(out, u)
		}
	}
	return out
}

// randomNonAdjacentPair returns two distinct non-adjacent nodes from nbrs,
// chosen uniformly among such pairs, or ok=false when nbrs is a clique.
func randomNonAdjacentPair(g *graph.G, nbrs []int, rng *rand.Rand) ([2]int, bool) {
	var pairs [][2]int
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !g.HasEdge(nbrs[i], nbrs[j]) {
				pairs = append(pairs, [2]int{nbrs[i], nbrs[j]})
			}
		}
	}
	if len(pairs) == 0 {
		return [2]int{}, false
	}
	return pairs[rng.Intn(len(pairs))], true
}

// buildHappyLayers performs phase (5): boundary handling, unmarking near
// the boundary, and the C_0..C_{2r} layers by distance (through uncolored
// H-nodes) to the anchor set (T-nodes and boundary nodes). Returns the
// layer array (-1 for unassigned) and the top layer index used.
func buildHappyLayers(g *graph.G, inH []bool, sh *shatterState, delta, r int, colors []int) ([]int, int) {
	n := g.N()
	hGraph := maskGraph(g, inH)
	// Boundary of H: degree < Δ within H.
	boundary := make([]bool, n)
	var boundaryNodes []int
	for v := 0; v < n; v++ {
		if inH[v] && hGraph.Deg(v) < delta {
			boundary[v] = true
			boundaryNodes = append(boundaryNodes, v)
		}
	}
	// Marked nodes within distance r of the boundary lose their color.
	if len(boundaryNodes) > 0 {
		dist, _ := hGraph.MultiSourceDist(boundaryNodes)
		for v := 0; v < n; v++ {
			if inH[v] && colors[v] == 0 && dist[v] >= 0 && dist[v] <= r {
				colors[v] = -1
			}
		}
	}
	// Anchors: T-nodes that still have two same-colored (color one)
	// neighbors, plus boundary nodes.
	var anchors []int
	for v := 0; v < n; v++ {
		if !inH[v] || colors[v] >= 0 {
			continue
		}
		if boundary[v] {
			anchors = append(anchors, v)
			continue
		}
		if sh.isTNode[v] {
			cnt := 0
			for _, u := range g.Neighbors(v) {
				if inH[u] && colors[u] == 0 {
					cnt++
				}
			}
			if cnt >= 2 {
				anchors = append(anchors, v)
			}
		}
	}
	layer := make([]int, n)
	for v := range layer {
		layer[v] = -1
	}
	if len(anchors) == 0 {
		return layer, 0
	}
	// Distance through uncolored H-nodes only.
	uncH := make([]bool, n)
	for v := 0; v < n; v++ {
		uncH[v] = inH[v] && colors[v] < 0
	}
	uncGraph := maskGraph(g, uncH)
	dist, _ := uncGraph.MultiSourceDist(anchors)
	top := 0
	for v := 0; v < n; v++ {
		if uncH[v] && dist[v] >= 0 && dist[v] <= 2*r {
			layer[v] = dist[v]
			if dist[v] > top {
				top = dist[v]
			}
		}
	}
	return layer, top
}

// shiftLayers maps layer i -> i+1 so that C_0 participates in the reverse
// list-coloring pass (C_0 nodes carry their own slack: T-nodes see two
// same-colored neighbors, boundary nodes have an uncolored neighbor in the
// B layers).
func shiftLayers(layer []int) []int {
	out := make([]int, len(layer))
	for v, l := range layer {
		if l < 0 {
			out[v] = -1
		} else {
			out[v] = l + 1
		}
	}
	return out
}

func allUncolored(colors []int, nodes []int) bool {
	for _, v := range nodes {
		if colors[v] >= 0 {
			return false
		}
	}
	return true
}
