package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"deltacolor/graph/gen"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// withSteppedGather runs f under the given package-wide gather default
// and restores the previous one.
func withSteppedGather(on bool, f func()) {
	prev := local.SteppedGatherEnabled()
	local.SetSteppedGather(on)
	defer local.SetSteppedGather(prev)
	f()
}

// TestRulingSetViaDecompositionSteppedMatchesCentral pins the ported
// ruling-set probe: the per-class stepped flood must accept the exact
// same centers, in the same order, as the original per-candidate central
// BFS probe.
func TestRulingSetViaDecompositionSteppedMatchesCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		n, d int
		seed int64
	}{
		{"rr4-128", 128, 4, 1},
		{"rr3-256", 256, 3, 2},
		{"rr6-96", 96, 6, 3},
	}
	for _, tc := range cases {
		g := gen.MustRandomRegular(rng, tc.n, tc.d)
		beta := 1.0 / math.Max(1, math.Log(float64(tc.n+2)))
		dec := dist.Decompose(g, nil, beta, tc.seed)
		for _, bigR := range []int{3, 9, 27} {
			var stepped, central []int
			withSteppedGather(true, func() { stepped = rulingSetViaDecomposition(g, dec, bigR) })
			withSteppedGather(false, func() { central = rulingSetViaDecomposition(g, dec, bigR) })
			if !reflect.DeepEqual(stepped, central) {
				t.Fatalf("%s bigR=%d: stepped base %v, central %v", tc.name, bigR, stepped, central)
			}
		}
	}
}

// TestComponentsOfMatchesCentral pins the ported component discovery on
// masked L-graphs: identical labels and counts whichever engine runs,
// including graphs where the mask isolates nodes.
func TestComponentsOfMatchesCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		g := gen.MustRandomRegular(rng, 200, 4)
		inL := make([]bool, g.N())
		for v := range inL {
			inL[v] = rng.Float64() < 0.35
		}
		lGraph := maskGraph(g, inL)
		wantComp, wantCount := lGraph.ConnectedComponents()
		var comp []int
		var count int
		withSteppedGather(true, func() { comp, count = componentsOf(lGraph) })
		if count != wantCount || !reflect.DeepEqual(comp, wantComp) {
			t.Fatalf("trial %d: stepped components diverge (count %d vs %d)", trial, count, wantCount)
		}
		withSteppedGather(false, func() { comp, count = componentsOf(lGraph) })
		if count != wantCount || !reflect.DeepEqual(comp, wantComp) {
			t.Fatalf("trial %d: ablated componentsOf diverges from central", trial)
		}
	}
}
