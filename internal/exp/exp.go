// Package exp is the experiment harness: one runner per experiment
// (E1–E14, DESIGN.md §4 plus the runtime, repair-tail and locality
// additions), each
// producing a Table whose rows cmd/benchsuite prints and EXPERIMENTS.md
// records. bench_test.go wraps the same runners in testing.B benchmarks so
// `go test -bench=.` regenerates every table.
package exp

import (
	"deltacolor/local"

	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Config scales the experiments. The zero value selects the full
// EXPERIMENTS.md parameters; Quick shrinks every sweep to smoke-test size
// (used by -short tests and the benchmark harness's inner loop). Strict
// turns every late dead send — a message staged for a neighbor the sender
// could already have known was halted (local.LateDeadSends) — into a
// panic via local.SetStrictDeadSends, so dead-send protocol regressions
// fail the harness — and CI — instead of surfacing in user runs.
type Config struct {
	Quick  bool
	Seed   int64
	Strict bool
}

// install applies the config's process-wide settings. Every experiment
// runner calls it first, so a runner invoked directly (tests, benchsuite
// -only) still honors -strict.
func (c Config) install() {
	local.SetStrictDeadSends(c.Strict)
}

// Table is one experiment's output: a titled grid of rows plus free-form
// notes (bound checks, fits, pass/fail summaries).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// CSV renders the table in RFC 4180 CSV (header row first, notes
// omitted), for spreadsheet/plotting pipelines.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|"))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// itoa and f2/f4 are tiny formatting helpers for table cells.
func itoa(x int) string      { return fmt.Sprintf("%d", x) }
func f2(x float64) string    { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string    { return fmt.Sprintf("%.4f", x) }
func pow2(e int) string      { return fmt.Sprintf("2^%d", e) }
func loglog(n int) float64   { return math.Log2(math.Max(2, math.Log2(float64(n)))) }
func log2f(n int) float64    { return math.Log2(float64(n)) }
func ratio(a, b int) float64 { return float64(a) / math.Max(1, float64(b)) }

// fitSlope estimates the least-squares slope of y against x (both already
// transformed by the caller, e.g. log-log). Used to report empirical growth
// exponents next to the theorems' predictions.
func fitSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
