package exp

// E12: runtime throughput. Unlike E1–E11, which measure the *algorithms*
// (rounds, messages), E12 measures the *simulator*: how fast the sharded
// LOCAL scheduler constructs networks and turns rounds over at scale. The
// workload is a fixed-length heartbeat protocol (every node broadcasts a
// small integer each round and folds in what it hears), so the numbers
// isolate scheduler cost from algorithmic cost. cmd/benchsuite serializes
// the report to BENCH_runtime.json so the performance trajectory of the
// runtime is tracked across PRs.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

// RuntimeSchema identifies the BENCH_runtime.json layout.
const RuntimeSchema = "deltacolor/bench-runtime/v1"

// RuntimeRow is one (family, n) measurement.
type RuntimeRow struct {
	Family         string  `json:"family"`
	N              int     `json:"n"`
	Edges          int     `json:"edges"`
	Delta          int     `json:"delta"`
	Rounds         int     `json:"rounds"`
	BuildMillis    float64 `json:"build_ms"` // NewNetwork construction
	RunMillis      float64 `json:"run_ms"`   // full Run wall time
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// RuntimeReport is the full E12 output, serialized to BENCH_runtime.json.
type RuntimeReport struct {
	Schema     string       `json:"schema"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick"`
	Seed       int64        `json:"seed"`
	Rows       []RuntimeRow `json:"rows"`
}

// heartbeat is the uniform scheduler workload: r rounds of broadcast+fold.
func heartbeat(r int) local.NodeFunc {
	return func(ctx *local.Ctx) {
		sum := ctx.ID() & 0xff
		for i := 0; i < r; i++ {
			ctx.Broadcast(sum & 0xff)
			ctx.Next()
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.Recv(p).(int); ok {
					sum += m
				}
			}
		}
		ctx.SetOutput(sum)
	}
}

// runtimeCase builds one graph family instance.
func runtimeCase(family string, n int, seed int64) *graph.G {
	switch family {
	case "path":
		return gen.Path(n)
	case "rr4":
		return gen.MustRandomRegular(rand.New(rand.NewSource(seed)), n, 4)
	case "clique":
		return gen.Complete(n)
	default:
		panic("unknown runtime family " + family)
	}
}

// RuntimeThroughput measures scheduler throughput across the graph
// families. The clique family is capped by edge count (a million-node
// clique has 5·10¹¹ edges), so it scales n where the others scale edges.
func RuntimeThroughput(cfg Config) *RuntimeReport {
	rep := &RuntimeReport{
		Schema:     RuntimeSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
	}
	type c struct {
		family string
		n      int
	}
	var cases []c
	rounds := 16
	if cfg.Quick {
		rounds = 8
		for _, n := range []int{1_000, 10_000} {
			cases = append(cases, c{"path", n}, c{"rr4", n})
		}
		cases = append(cases, c{"clique", 128}, c{"clique", 256})
	} else {
		for _, n := range []int{10_000, 100_000, 1_000_000} {
			cases = append(cases, c{"path", n}, c{"rr4", n})
		}
		cases = append(cases, c{"clique", 512}, c{"clique", 1024}, c{"clique", 2048})
	}
	for _, tc := range cases {
		g := runtimeCase(tc.family, tc.n, cfg.Seed)
		t0 := time.Now()
		net := local.NewNetwork(g, cfg.Seed)
		build := time.Since(t0)

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		net.Run(heartbeat(rounds))
		runtime.ReadMemStats(&after)

		st := net.LastRunStats()
		row := RuntimeRow{
			Family:       tc.family,
			N:            tc.n,
			Edges:        g.M(),
			Delta:        g.MaxDegree(),
			Rounds:       st.Rounds,
			BuildMillis:  float64(build.Microseconds()) / 1000,
			RunMillis:    float64(st.WallTime.Microseconds()) / 1000,
			RoundsPerSec: st.RoundsPerSec,
		}
		if st.Rounds > 0 {
			row.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / float64(st.Rounds)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Table renders the report in the E1–E11 table format.
func (rep *RuntimeReport) Table() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "Runtime throughput (sharded LOCAL scheduler, heartbeat workload)",
		Header: []string{"family", "n", "edges", "rounds", "build ms", "run ms", "rounds/s", "allocs/round"},
	}
	for _, r := range rep.Rows {
		t.AddRow(r.Family, itoa(r.N), itoa(r.Edges), itoa(r.Rounds),
			f2(r.BuildMillis), f2(r.RunMillis), f2(r.RoundsPerSec),
			fmt.Sprintf("%.0f", r.AllocsPerRound))
	}
	t.AddNote("GOMAXPROCS=%d, quick=%v; network construction is O(n + Σ deg), rounds cost O(active + messages).",
		rep.GoMaxProcs, rep.Quick)
	return t
}

// WriteJSON serializes the report (BENCH_runtime.json).
func (rep *RuntimeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// E12Runtime adapts RuntimeThroughput to the experiment-runner signature.
func E12Runtime(cfg Config) *Table {
	return RuntimeThroughput(cfg).Table()
}
