package exp

// E12: runtime throughput. Unlike E1–E11, which measure the *algorithms*
// (rounds, messages), E12 measures the *simulator*: how fast the batched
// LOCAL round engine constructs networks and turns rounds over at scale.
// The workload is a fixed-length heartbeat protocol (every node broadcasts
// a small integer each round through the int fast path and folds in what
// it hears), so the numbers isolate scheduler cost from algorithmic cost.
// cmd/benchsuite serializes the report to BENCH_runtime.json so the
// performance trajectory of the runtime is tracked across PRs, and
// CompareRuntime turns a pair of reports into a CI regression gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

// RuntimeSchema identifies the BENCH_runtime.json layout. v2 added the
// explicit workers column (rounds/s is always measured single-worker for
// machine comparability) and the GOMAXPROCS-sweep columns; v3 added the
// reference-loop score that makes the CI delta gate machine-independent
// (see ReferenceScore); v4 adds the gather and tiled-delivery workload
// families, the per-row max message size (from an untimed instrumented
// re-run), the ns/node-round normalization, and always populates the
// sweep columns (on a single-CPU host the sweep runs two workers on the
// one CPU, measuring coordination overhead instead of speedup).
const RuntimeSchema = "deltacolor/bench-runtime/v4"

// Older layouts accepted as comparison baselines (PR 2–8 reports).
const (
	runtimeSchemaV1 = "deltacolor/bench-runtime/v1"
	runtimeSchemaV2 = "deltacolor/bench-runtime/v2"
	runtimeSchemaV3 = "deltacolor/bench-runtime/v3"
)

// RuntimeRow is one (family, n) measurement.
type RuntimeRow struct {
	Family         string  `json:"family"`
	N              int     `json:"n"`
	Edges          int     `json:"edges"`
	Delta          int     `json:"delta"`
	Rounds         int     `json:"rounds"`
	BuildMillis    float64 `json:"build_ms"` // NewNetwork construction
	RunMillis      float64 `json:"run_ms"`   // full Run wall time, 1 worker
	Workers        int     `json:"workers"`  // worker count of the main measurement (always 1)
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`

	// NsPerNodeRound normalizes the timed run to nanoseconds per
	// node-round (run_ms · 10⁶ ÷ (rounds · n)) — the unit the stepped-port
	// acceptance is stated in: the gather families must stay within 2x of
	// the int-path heartbeat on the same graph at the same n.
	NsPerNodeRound float64 `json:"ns_per_node_round"`

	// MaxMsgBytes is the largest single message of the workload, measured
	// on a separate untimed run with message stats enabled (the reflection
	// walk would pollute the timed run). 4 for the int-path heartbeat.
	MaxMsgBytes int `json:"max_msg_bytes"`

	// GOMAXPROCS sweep: the same run with a worker per CPU — or, on a
	// single-CPU host, with two workers time-slicing the one CPU, so the
	// column records coordination overhead rather than staying empty.
	WorkersMP      int     `json:"workers_mp,omitempty"`
	RoundsPerSecMP float64 `json:"rounds_per_sec_mp,omitempty"`
}

// RuntimeReport is the full E12 output, serialized to BENCH_runtime.json.
type RuntimeReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`
	// RefScore is the host's reference-loop score (iterations/s of the
	// fixed loop in ReferenceScore), measured alongside the rows. When both
	// sides of a comparison carry one, CompareRuntime gates on
	// rounds/s ÷ RefScore — a machine-independent ratio — instead of raw
	// rounds/s. Zero in pre-v3 reports.
	RefScore float64      `json:"ref_score,omitempty"`
	Rows     []RuntimeRow `json:"rows"`
}

// refLoopWords sizes the reference loop's walk array: 16 MiB of int32,
// past any LLC, so the loop mixes cache-missing loads with ALU work in
// roughly the engine's own proportions.
const refLoopWords = 1 << 22

// refLoopIters is the fixed iteration count one timed rep executes.
const refLoopIters = 1 << 22

// ReferenceScore measures the host with a fixed single-threaded loop
// (xorshift index generation + a dependent load/store walk over a 16 MiB
// array) and returns its iterations/s, best of three reps. The loop is
// engine-independent: it never changes with the repository, so the ratio
// rounds/s ÷ ReferenceScore is comparable across machines and lets the CI
// benchmark-delta gate stop depending on the runner's absolute speed.
func ReferenceScore() float64 {
	buf := make([]int32, refLoopWords)
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		x := uint32(0x9e3779b9)
		var acc int32
		for i := 0; i < refLoopIters; i++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			j := x & (refLoopWords - 1)
			acc += buf[j]
			buf[j] = acc ^ int32(x)
		}
		el := time.Since(t0).Seconds()
		if el <= 0 {
			continue
		}
		if s := float64(refLoopIters) / el; s > best {
			best = s
		}
	}
	return best
}

// heartbeat is the uniform scheduler workload: r rounds of broadcast+fold
// over the small-integer fast path, in the executor's native stepped form
// (per-node state is one struct in a flat array — no stacks, no boxing).
func heartbeat(r int) local.Stepped[heartbeatState] {
	return local.Stepped[heartbeatState]{
		Init: func(ctx *local.Ctx, s *heartbeatState) bool {
			s.sum = ctx.ID() & 0xff
			if r == 0 {
				ctx.SetOutput(s.sum & 0xff)
				return false
			}
			ctx.BroadcastInt(s.sum & 0xff)
			return true
		},
		Step: func(ctx *local.Ctx, s *heartbeatState) bool {
			for p := 0; p < ctx.Degree(); p++ {
				if m, ok := ctx.RecvInt(p); ok {
					s.sum += m
				}
			}
			s.round++
			if s.round == r {
				ctx.SetOutput(s.sum & 0xff)
				return false
			}
			ctx.BroadcastInt(s.sum & 0xff)
			return true
		},
	}
}

type heartbeatState struct {
	sum   int
	round int
}

// runtimeCase builds one graph family instance. The gather and tiled
// families reuse the rr4 expander — the graph with no exploitable label
// order, where delivery locality and payload shape dominate.
func runtimeCase(family string, n int, seed int64) *graph.G {
	switch family {
	case "path":
		return gen.Path(n)
	case "rr4", "rr4-tiled", "rr4-gather", "rr4-gather-blocking":
		return gen.MustRandomRegular(rand.New(rand.NewSource(seed)), n, 4)
	case "clique":
		return gen.Complete(n)
	default:
		panic("unknown runtime family " + family)
	}
}

// runtimeGatherRadius is the gather families' ball radius: radius 2 keeps
// the per-node ball ~Δ² nodes (the shape the DCC phases gather at), small
// enough to hold a million balls in memory.
const runtimeGatherRadius = 2

// runtimeReps is the timed-measurement repetition count per case (best
// rep wins, for both the single-worker and the sweep measurement). The
// gather families allocate their output inside the timed window, so
// single-shot timings swing with GC landing; the delta gate compares
// quick CI runs against the checked-in full sweep and needs both sides
// at their repeatable best.
const runtimeReps = 3

// runRuntimeWorkload executes one family's workload on a prepared
// network: the int-path heartbeat for the scheduler families, the native
// stepped gather or its blocking coroutine shim for the gather families.
func runRuntimeWorkload(family string, net *local.Network, rounds int) {
	switch family {
	case "rr4-gather":
		local.GatherStepped(net, runtimeGatherRadius)
	case "rr4-gather-blocking":
		net.Run(func(ctx *local.Ctx) {
			local.GatherBall(ctx, runtimeGatherRadius)
		})
	default:
		local.RunStepped(net, heartbeat(rounds))
	}
}

// RuntimeThroughput measures scheduler throughput across the graph
// families. Rounds/s is measured with a single worker so the number is
// comparable across hosts; the same case is then re-run for the
// GOMAXPROCS sweep with a worker per CPU (two workers on a single-CPU
// host, where the column measures coordination overhead). The clique
// family is capped by edge count (a million-node clique has 5·10¹¹
// edges), so it scales n where the others scale edges. The
// rr4-gather-blocking family is capped at n=100k: the coroutine shim
// parks one goroutine stack per node, and a million suspended stacks
// measure the allocator, not the scheduler — the cap is deliberate and
// the README's blocking-vs-stepped table says so.
func RuntimeThroughput(cfg Config) *RuntimeReport {
	cfg.install()
	rep := &RuntimeReport{
		Schema:     RuntimeSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
		RefScore:   ReferenceScore(),
	}
	type c struct {
		family string
		n      int
	}
	var cases []c
	rounds := 16
	if cfg.Quick {
		rounds = 8
		for _, n := range []int{1_000, 10_000} {
			cases = append(cases, c{"path", n}, c{"rr4", n})
		}
		cases = append(cases, c{"clique", 128}, c{"clique", 256})
		for _, n := range []int{1_000, 10_000} {
			cases = append(cases, c{"rr4-tiled", n}, c{"rr4-gather", n}, c{"rr4-gather-blocking", n})
		}
	} else {
		for _, n := range []int{10_000, 100_000, 1_000_000} {
			cases = append(cases, c{"path", n}, c{"rr4", n})
		}
		// clique 256 is also a quick-mode case: sharing one n with the
		// quick sweep lets the CI benchmark-delta gate cover the clique
		// family (CompareRuntime can only gate common (family, n) rows).
		cases = append(cases, c{"clique", 256}, c{"clique", 512}, c{"clique", 1024}, c{"clique", 2048})
		for _, n := range []int{10_000, 100_000, 1_000_000} {
			cases = append(cases, c{"rr4-tiled", n}, c{"rr4-gather", n})
		}
		cases = append(cases, c{"rr4-gather-blocking", 10_000}, c{"rr4-gather-blocking", 100_000})
	}
	sweepWorkers := runtime.NumCPU()
	if sweepWorkers < 2 {
		sweepWorkers = 2
	}
	for _, tc := range cases {
		g := runtimeCase(tc.family, tc.n, cfg.Seed)
		t0 := time.Now()
		net := local.NewNetwork(g, cfg.Seed)
		build := time.Since(t0)
		net.SetWorkers(1)
		if tc.family == "rr4-tiled" {
			net.SetTiledDelivery(true)
		}

		// Warm-up run: the first run on a fresh network pays cold page
		// faults, lazy engine-buffer setup (the tile tables in particular)
		// and branch-predictor training; at quick scale that cold start is
		// a large fraction of the ~20ms timed window and made the CI delta
		// gate flake on the smaller families.
		runRuntimeWorkload(tc.family, net, rounds)
		// Collect garbage from the warm-up and earlier cases, then keep the
		// best of a few reps: the gather families allocate their output
		// balls inside the timed window, so a single rep's throughput
		// depends on where GC lands — heap state differs between quick and
		// full sweeps, and the delta gate compares across the two.
		runtime.GC()

		row := RuntimeRow{
			Family:      tc.family,
			N:           tc.n,
			Edges:       g.M(),
			Delta:       g.MaxDegree(),
			Workers:     1,
			BuildMillis: float64(build.Microseconds()) / 1000,
		}
		var before, after runtime.MemStats
		for rep := 0; rep < runtimeReps; rep++ {
			runtime.ReadMemStats(&before)
			runRuntimeWorkload(tc.family, net, rounds)
			runtime.ReadMemStats(&after)
			st := net.LastRunStats()
			if st.RoundsPerSec <= row.RoundsPerSec {
				continue
			}
			row.Rounds = st.Rounds
			row.RunMillis = float64(st.WallTime.Microseconds()) / 1000
			row.RoundsPerSec = st.RoundsPerSec
			if st.Rounds > 0 {
				row.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / float64(st.Rounds)
				row.NsPerNodeRound = float64(st.WallTime.Nanoseconds()) / (float64(st.Rounds) * float64(tc.n))
			}
		}

		net.SetWorkers(sweepWorkers)
		row.WorkersMP = sweepWorkers
		for rep := 0; rep < runtimeReps; rep++ {
			runRuntimeWorkload(tc.family, net, rounds)
			if rps := net.LastRunStats().RoundsPerSec; rps > row.RoundsPerSecMP {
				row.RoundsPerSecMP = rps
			}
		}

		// Untimed instrumented re-run for the max message size, after both
		// timed runs; the reflection walk would pollute the measurements.
		net.EnableMessageStats()
		runRuntimeWorkload(tc.family, net, rounds)
		row.MaxMsgBytes = net.MessageStats().MaxBytes
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Table renders the report in the E1–E11 table format.
func (rep *RuntimeReport) Table() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "Runtime throughput (batched LOCAL round engine: heartbeat, tiled-delivery and ball-gather workloads)",
		Header: []string{"family", "n", "edges", "rounds", "build ms", "run ms", "rounds/s (1w)", "ns/node-round", "allocs/round", "max msg B", fmt.Sprintf("rounds/s (%dw)", rep.sweepWorkers())},
	}
	for _, r := range rep.Rows {
		mp := "-"
		if r.WorkersMP > 0 {
			mp = f2(r.RoundsPerSecMP)
		}
		t.AddRow(r.Family, itoa(r.N), itoa(r.Edges), itoa(r.Rounds),
			f2(r.BuildMillis), f2(r.RunMillis), f2(r.RoundsPerSec),
			f2(r.NsPerNodeRound), fmt.Sprintf("%.0f", r.AllocsPerRound), itoa(r.MaxMsgBytes), mp)
	}
	t.AddNote("GOMAXPROCS=%d, quick=%v, reference-loop score %.3g iters/s; rounds/s is the best of %d warmed reps with one worker (host-comparable), the sweep column the best of %d with a worker per CPU (two workers on a single-CPU host, where it measures coordination overhead). max msg B comes from a separate instrumented run. The rr4-gather family runs the native stepped radius-%d gather, rr4-gather-blocking the coroutine shim it retired (capped at n=100k: one parked goroutine stack per node), rr4-tiled the heartbeat under tiled delivery. Network construction is O(n + Σ deg); a round costs O(workers) park/wake transitions and zero allocations on the int path.",
		rep.GoMaxProcs, rep.Quick, rep.RefScore, runtimeReps, runtimeReps, runtimeGatherRadius)
	return t
}

// sweepWorkers returns the worker count of the sweep column (for the
// header), defaulting to the host CPU count when no row carries one.
func (rep *RuntimeReport) sweepWorkers() int {
	for _, r := range rep.Rows {
		if r.WorkersMP > 0 {
			return r.WorkersMP
		}
	}
	return runtime.NumCPU()
}

// WriteJSON serializes the report (BENCH_runtime.json).
func (rep *RuntimeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadRuntimeReport parses a report previously written by WriteJSON. Both
// the current schema and the PR 2 v1 layout are accepted (v1 rows carry no
// workers column; their rounds/s was measured at GOMAXPROCS=1, so they
// compare directly against the v2 single-worker measurement).
func ReadRuntimeReport(r io.Reader) (*RuntimeReport, error) {
	var rep RuntimeReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("runtime report: %w", err)
	}
	if rep.Schema != RuntimeSchema && rep.Schema != runtimeSchemaV1 && rep.Schema != runtimeSchemaV2 && rep.Schema != runtimeSchemaV3 {
		return nil, fmt.Errorf("runtime report: unknown schema %q", rep.Schema)
	}
	return &rep, nil
}

// CompareRuntime checks cur against a baseline report: for every family
// present in both, at the largest common n, single-worker rounds/s must
// not fall more than maxRegress (a fraction, e.g. 0.30) below the
// baseline. When both reports carry a reference-loop score the comparison
// is on the machine-independent ratio rounds/s ÷ RefScore, so a baseline
// recorded on a fast workstation gates correctly on a slow CI runner (and
// vice versa); pre-v3 baselines without a score fall back to absolute
// rounds/s. It returns an error describing the first regression, or when
// the reports share no rows at all — a silently vacuous gate would defeat
// the point of the CI step.
func CompareRuntime(cur, base *RuntimeReport, maxRegress float64) error {
	normalized := cur.RefScore > 0 && base.RefScore > 0
	type key struct {
		family string
		n      int
	}
	baseRows := map[key]RuntimeRow{}
	for _, r := range base.Rows {
		baseRows[key{r.Family, r.N}] = r
	}
	largest := map[string]RuntimeRow{}
	for _, r := range cur.Rows {
		if _, ok := baseRows[key{r.Family, r.N}]; !ok {
			continue
		}
		if best, ok := largest[r.Family]; !ok || r.N > best.N {
			largest[r.Family] = r
		}
	}
	if len(largest) == 0 {
		return fmt.Errorf("benchmark delta: no (family, n) rows in common between current and baseline reports")
	}
	for family, r := range largest {
		b := baseRows[key{family, r.N}]
		curScore, baseScore, unit := r.RoundsPerSec, b.RoundsPerSec, "rounds/s"
		if normalized {
			curScore /= cur.RefScore
			baseScore /= base.RefScore
			unit = "rounds-per-ref (rounds/s ÷ reference-loop score)"
		}
		floor := baseScore * (1 - maxRegress)
		if curScore < floor {
			return fmt.Errorf("benchmark delta: %s n=%d regressed: %.4g %s vs baseline %.4g (floor %.4g at -%.0f%%)",
				family, r.N, curScore, unit, baseScore, floor, maxRegress*100)
		}
	}
	return nil
}

// CompareMultiWorker is the scheduler's parallel-speedup gate: on the
// rr4 family — the expander whose scattered delivery is exactly where a
// worker pool should help — the multi-worker sweep of cur must not be
// slower than base's single-worker measurement at the largest common n,
// up to margin (a fraction; quick-scale CI runs are noisy and a 10k-node
// round is a ~2ms window, so the margin is generous). cur and base are
// expected to come from the same machine in the same CI job (GOMAXPROCS=4
// and =1 runs respectively), so the comparison is on raw rounds/s, not
// the reference-normalized ratio. It returns an error describing the
// regression, or when no common rr4 row with a populated sweep exists —
// a vacuous gate would defeat the CI step.
func CompareMultiWorker(cur, base *RuntimeReport, margin float64) error {
	baseRows := map[int]RuntimeRow{}
	for _, r := range base.Rows {
		if r.Family == "rr4" {
			baseRows[r.N] = r
		}
	}
	var pick *RuntimeRow
	for i := range cur.Rows {
		r := &cur.Rows[i]
		if r.Family != "rr4" || r.RoundsPerSecMP <= 0 {
			continue
		}
		if _, ok := baseRows[r.N]; !ok {
			continue
		}
		if pick == nil || r.N > pick.N {
			pick = r
		}
	}
	if pick == nil {
		return fmt.Errorf("multi-worker gate: no common rr4 row with a populated sweep between current and baseline reports")
	}
	b := baseRows[pick.N]
	floor := b.RoundsPerSec * (1 - margin)
	if pick.RoundsPerSecMP < floor {
		return fmt.Errorf("multi-worker gate: rr4 n=%d with %d workers %.2f rounds/s vs single-worker baseline %.2f (floor %.2f at -%.0f%%)",
			pick.N, pick.WorkersMP, pick.RoundsPerSecMP, b.RoundsPerSec, floor, margin*100)
	}
	return nil
}

// E12Runtime adapts RuntimeThroughput to the experiment-runner signature.
func E12Runtime(cfg Config) *Table {
	return RuntimeThroughput(cfg).Table()
}
