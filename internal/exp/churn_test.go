package exp

import (
	"bytes"
	"testing"
)

func churnRow(n, incrRounds, fullRounds int, incrMs, fullMs float64) ChurnMutationRow {
	return ChurnMutationRow{Family: "rr4", N: n, Edges: 2 * n, Delta: 8,
		Mutations: n / 100, Conflicts: n / 200,
		IncrRounds: incrRounds, IncrMillis: incrMs,
		FullRounds: fullRounds, FullMillis: fullMs,
		RoundsRatio: ratio(incrRounds, fullRounds), WallRatio: incrMs / fullMs}
}

func TestChurnReportRoundTrip(t *testing.T) {
	rep := &ChurnReport{Schema: ChurnSchema, GoMaxProcs: 1, Quick: true, Seed: 5,
		MutationRows: []ChurnMutationRow{churnRow(10000, 40, 300, 12, 800)},
		FaultRows:    []ChurnFaultRow{{Plan: "drop-2%", N: 512, Rounds: 200, Verified: true}}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChurnReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MutationRows) != 1 || len(got.FaultRows) != 1 || got.Seed != 5 ||
		got.MutationRows[0].IncrRounds != 40 || !got.FaultRows[0].Verified {
		t.Fatalf("round trip lost data: %+v", got)
	}
	bad := bytes.NewBufferString(`{"schema":"bogus/v9"}`)
	if _, err := ReadChurnReport(bad); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

func TestChurnGate(t *testing.T) {
	healed := ChurnFaultRow{Plan: "drop-2%", N: 512, Verified: true}
	dead := ChurnFaultRow{Plan: "crash-burst", N: 512, Unrecoverable: true}

	ok := &ChurnReport{Schema: ChurnSchema,
		MutationRows: []ChurnMutationRow{
			churnRow(10000, 400, 300, 900, 800), // small n loses: not gated
			churnRow(100000, 40, 300, 12, 2000),
		},
		FaultRows: []ChurnFaultRow{dead, healed}}
	if err := ChurnGate(ok); err != nil {
		t.Fatalf("incremental wins at largest n, got %v", err)
	}

	badRounds := &ChurnReport{Schema: ChurnSchema,
		MutationRows: []ChurnMutationRow{churnRow(100000, 400, 300, 12, 2000)},
		FaultRows:    []ChurnFaultRow{healed}}
	if err := ChurnGate(badRounds); err == nil {
		t.Fatal("incremental losing on rounds must fail the gate")
	}

	badWall := &ChurnReport{Schema: ChurnSchema,
		MutationRows: []ChurnMutationRow{churnRow(100000, 40, 300, 2500, 2000)},
		FaultRows:    []ChurnFaultRow{healed}}
	if err := ChurnGate(badWall); err == nil {
		t.Fatal("incremental losing on wall time must fail the gate")
	}

	noHeal := &ChurnReport{Schema: ChurnSchema,
		MutationRows: []ChurnMutationRow{churnRow(100000, 40, 300, 12, 2000)},
		FaultRows:    []ChurnFaultRow{dead}}
	if err := ChurnGate(noHeal); err == nil {
		t.Fatal("no healed fault row must fail the gate")
	}

	empty := &ChurnReport{Schema: ChurnSchema}
	if err := ChurnGate(empty); err == nil {
		t.Fatal("empty report must fail, not pass vacuously")
	}
}

// TestChurnRecoverySmoke runs E16 at a tiny scale and checks the report's
// shape and self-consistency: every mutation row verified both colorings
// (the runner panics otherwise), ratios match their numerators, and the
// fault rows all resolved to a typed outcome.
func TestChurnRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 measurement is slow")
	}
	rep := ChurnRecovery(Config{Quick: true, Seed: 3})
	if rep.Schema != ChurnSchema || !rep.Quick {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.MutationRows) != 2 || len(rep.FaultRows) != 3 {
		t.Fatalf("rows = %d mutation / %d fault, want 2/3", len(rep.MutationRows), len(rep.FaultRows))
	}
	for _, r := range rep.MutationRows {
		if r.Mutations == 0 || r.Inserts == 0 {
			t.Fatalf("vacuous mutation row: %+v", r)
		}
		if r.Conflicts == 0 {
			t.Fatalf("mutation stream left no conflicts (nothing measured): %+v", r)
		}
		if r.FullRounds <= 0 || r.FullMillis <= 0 {
			t.Fatalf("full pipeline not measured: %+v", r)
		}
		if got := ratio(r.IncrRounds, r.FullRounds); got != r.RoundsRatio {
			t.Fatalf("rounds ratio %v inconsistent with %d/%d", r.RoundsRatio, r.IncrRounds, r.FullRounds)
		}
	}
	for _, r := range rep.FaultRows {
		if r.Verified == r.Unrecoverable {
			t.Fatalf("fault row without a typed outcome: %+v", r)
		}
	}
}
