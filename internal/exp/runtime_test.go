package exp

import (
	"bytes"
	"testing"

	"deltacolor/local"
)

func runtimeRow(family string, n int, rps float64) RuntimeRow {
	return RuntimeRow{Family: family, N: n, Rounds: 8, Workers: 1, RoundsPerSec: rps}
}

func TestCompareRuntime(t *testing.T) {
	base := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		runtimeRow("path", 1000, 100),
		runtimeRow("path", 10000, 50),
		runtimeRow("rr4", 10000, 40),
	}}

	ok := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		runtimeRow("path", 1000, 10), // small-n regressions are not gated
		runtimeRow("path", 10000, 40),
		runtimeRow("rr4", 10000, 35),
	}}
	if err := CompareRuntime(ok, base, 0.30); err != nil {
		t.Fatalf("within tolerance, got %v", err)
	}

	bad := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		runtimeRow("path", 10000, 30), // -40% at the largest common n
		runtimeRow("rr4", 10000, 39),
	}}
	if err := CompareRuntime(bad, base, 0.30); err == nil {
		t.Fatal("40% regression at largest n must fail")
	}

	disjoint := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		runtimeRow("clique", 512, 5),
	}}
	if err := CompareRuntime(disjoint, base, 0.30); err == nil {
		t.Fatal("no common rows must fail, not pass vacuously")
	}
}

func TestCompareMultiWorker(t *testing.T) {
	mpRow := func(n int, rps, rpsMP float64) RuntimeRow {
		r := runtimeRow("rr4", n, rps)
		r.RoundsPerSecMP = rpsMP
		r.WorkersMP = 4
		return r
	}
	base := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		runtimeRow("rr4", 1000, 200),
		runtimeRow("rr4", 10000, 100),
		runtimeRow("path", 10000, 500), // other families are not gated
	}}

	ok := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		mpRow(1000, 190, 10), // small-n coordination overhead is not gated
		mpRow(10000, 95, 90), // within the 25% margin of base's 100
	}}
	if err := CompareMultiWorker(ok, base, 0.25); err != nil {
		t.Fatalf("within margin, got %v", err)
	}

	bad := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		mpRow(10000, 95, 60), // -40% vs base's single-worker 100
	}}
	if err := CompareMultiWorker(bad, base, 0.25); err == nil {
		t.Fatal("multi-worker 40% slower than single-worker baseline must fail")
	}

	noSweep := &RuntimeReport{Schema: RuntimeSchema, Rows: []RuntimeRow{
		runtimeRow("rr4", 10000, 95), // RoundsPerSecMP == 0
	}}
	if err := CompareMultiWorker(noSweep, base, 0.25); err == nil {
		t.Fatal("report without a populated sweep must fail, not pass vacuously")
	}
}

// TestCompareRuntimeRefNormalized checks the machine-independence of the
// v3 gate: when both reports carry a reference-loop score, the comparison
// is on rounds/s ÷ RefScore, so a baseline from a 2× faster machine does
// not flag a same-speed-relative current run — and a real relative
// regression is still caught even when absolute rounds/s went up.
func TestCompareRuntimeRefNormalized(t *testing.T) {
	fast := &RuntimeReport{Schema: RuntimeSchema, RefScore: 200, Rows: []RuntimeRow{
		runtimeRow("path", 10000, 100), // ratio 0.5
	}}
	slowSameRatio := &RuntimeReport{Schema: RuntimeSchema, RefScore: 100, Rows: []RuntimeRow{
		runtimeRow("path", 10000, 48), // ratio 0.48: -4% relative, -52% absolute
	}}
	if err := CompareRuntime(slowSameRatio, fast, 0.30); err != nil {
		t.Fatalf("slower machine at the same ratio must pass: %v", err)
	}
	// Without normalization the same pair fails (absolute -52%).
	noRef := &RuntimeReport{Schema: RuntimeSchema, Rows: slowSameRatio.Rows}
	if err := CompareRuntime(noRef, &RuntimeReport{Schema: RuntimeSchema, Rows: fast.Rows}, 0.30); err == nil {
		t.Fatal("absolute fallback should flag the -52% drop")
	}
	fastButRegressed := &RuntimeReport{Schema: RuntimeSchema, RefScore: 1000, Rows: []RuntimeRow{
		runtimeRow("path", 10000, 150), // absolute +50%, ratio 0.15: -70% relative
	}}
	if err := CompareRuntime(fastButRegressed, fast, 0.30); err == nil {
		t.Fatal("relative regression on a faster machine must fail despite higher absolute rounds/s")
	}
}

func TestReferenceScorePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("reference loop takes ~1s")
	}
	if s := ReferenceScore(); s <= 0 {
		t.Fatalf("reference score = %v, want > 0", s)
	}
}

func TestRuntimeReportRoundTripAndV1Baseline(t *testing.T) {
	rep := &RuntimeReport{Schema: RuntimeSchema, GoMaxProcs: 1, Rows: []RuntimeRow{runtimeRow("path", 1000, 100)}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRuntimeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].RoundsPerSec != 100 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// A v1-era baseline (no workers column) must parse and compare.
	v1 := bytes.NewBufferString(`{"schema":"deltacolor/bench-runtime/v1","gomaxprocs":1,
		"rows":[{"family":"path","n":1000,"rounds":16,"rounds_per_sec":90}]}`)
	base, err := ReadRuntimeReport(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareRuntime(rep, base, 0.30); err != nil {
		t.Fatalf("v2 vs v1 comparison: %v", err)
	}

	bad := bytes.NewBufferString(`{"schema":"bogus/v9"}`)
	if _, err := ReadRuntimeReport(bad); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

// TestStrictQuickE12AndE11 smoke-runs two experiment runners with the
// strict dead-send gate installed: the harness protocols must stay free
// of late dead sends (a panic here is a protocol regression).
func TestStrictQuickE12AndE11(t *testing.T) {
	defer local.SetStrictDeadSends(false)
	cfg := Config{Quick: true, Seed: 31, Strict: true}
	if tb := E12Runtime(cfg); len(tb.Rows) == 0 {
		t.Fatal("E12 produced no rows")
	}
	if !local.StrictDeadSends() {
		t.Fatal("runner did not install the strict default")
	}
	if tb := E11Congest(cfg); len(tb.Rows) == 0 {
		t.Fatal("E11 produced no rows")
	}
}
