package exp

import (
	"bytes"
	"testing"
)

func overheadRow(family string, n int, level string, rps, over float64) OverheadRow {
	return OverheadRow{Family: family, N: n, Edges: 2 * n, Level: level, Rounds: 8,
		RoundsPerSec: rps, Overhead: over}
}

func TestOverheadReportRoundTrip(t *testing.T) {
	rep := &OverheadReport{Schema: OverheadSchema, GoMaxProcs: 1, Quick: true, Seed: 7,
		Rows: []OverheadRow{
			overheadRow("path", 10000, "off", 100, 0),
			overheadRow("path", 10000, "full", 95, 0.05),
		}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOverheadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[1].Overhead != 0.05 || got.Seed != 7 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	bad := bytes.NewBufferString(`{"schema":"bogus/v9"}`)
	if _, err := ReadOverheadReport(bad); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

func TestOverheadGate(t *testing.T) {
	ok := &OverheadReport{Schema: OverheadSchema, Rows: []OverheadRow{
		overheadRow("path", 10000, "off", 100, 0),
		overheadRow("path", 10000, "full", 50, 0.50), // small n: not gated
		overheadRow("path", 100000, "off", 80, 0),
		overheadRow("path", 100000, "counters", 40, 0.50), // counters: not gated
		overheadRow("path", 100000, "full", 73, 0.0875),
		overheadRow("rr4", 100000, "off", 60, 0),
		overheadRow("rr4", 100000, "full", 58, 1.0/30),
	}}
	if err := OverheadGate(ok); err != nil {
		t.Fatalf("within the 10%% budget at largest n, got %v", err)
	}

	bad := &OverheadReport{Schema: OverheadSchema, Rows: []OverheadRow{
		overheadRow("path", 100000, "off", 80, 0),
		overheadRow("path", 100000, "full", 70, 0.125), // -12.5%
	}}
	if err := OverheadGate(bad); err == nil {
		t.Fatal("12.5% overhead at largest n must fail the gate")
	}

	vacuous := &OverheadReport{Schema: OverheadSchema, Rows: []OverheadRow{
		overheadRow("path", 100000, "off", 80, 0),
		overheadRow("path", 10000, "full", 70, 0), // no common largest n
	}}
	if err := OverheadGate(vacuous); err == nil {
		t.Fatal("report with no off/full pair must fail, not pass vacuously")
	}
}

// TestTracerOverheadSmoke runs the E15 measurement at a tiny scale and
// checks the report's shape: every (family, size) case yields one row per
// trace level, off rows have zero overhead, and throughputs are positive.
func TestTracerOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 measurement is slow")
	}
	rep := TracerOverhead(Config{Quick: true, Seed: 9})
	if rep.Schema != OverheadSchema || !rep.Quick {
		t.Fatalf("report header: %+v", rep)
	}
	// Quick mode: 2 sizes x 3 heartbeat families x 3 levels, plus the
	// single-size rr4-gather case x 3 levels.
	if len(rep.Rows) != 21 {
		t.Fatalf("rows = %d, want 21", len(rep.Rows))
	}
	sawGather := false
	for _, r := range rep.Rows {
		if r.Family == "rr4-gather" {
			sawGather = true
		}
	}
	if !sawGather {
		t.Fatal("report carries no rr4-gather rows; the gate would not cover the gather kernel")
	}
	for _, r := range rep.Rows {
		if r.RoundsPerSec <= 0 {
			t.Fatalf("row %+v has non-positive throughput", r)
		}
		if r.Level == "off" && r.Overhead != 0 {
			t.Fatalf("off row carries overhead %v", r.Overhead)
		}
	}
}
