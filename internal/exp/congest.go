package exp

import (
	"math/rand"

	"deltacolor/graph/gen"
	"deltacolor/internal/dist"
	"deltacolor/local"
)

// E11Congest profiles the message sizes of the message-passing building
// blocks. The LOCAL model allows unbounded messages; this experiment
// measures how far each primitive actually is from the CONGEST model's
// O(log n)-bit budget: the color/trial protocols ship a handful of bytes
// per edge per round (CONGEST-portable as-is), while ball gathering is
// exactly the primitive whose messages grow with the neighborhood — the
// formal reason the paper's algorithms are LOCAL-model results.
func E11Congest(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E11",
		Title:  "CONGEST profile — message sizes of the distributed primitives",
		Header: []string{"primitive", "n", "Δ", "rounds", "messages", "max msg bytes", "avg msg bytes"},
	}
	n := 1 << 10
	if cfg.Quick {
		n = 1 << 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	g := gen.MustRandomRegular(rng, n, 4)

	run := func(name string, f func(net *local.Network)) {
		net := local.NewNetwork(g, cfg.Seed)
		net.EnableMessageStats()
		f(net)
		st := net.MessageStats()
		avg := 0.0
		if st.Messages > 0 {
			avg = float64(st.TotalBytes) / float64(st.Messages)
		}
		t.AddRow(name, itoa(n), "4", itoa(net.Rounds()), itoa(st.Messages), itoa(st.MaxBytes), f2(avg))
	}

	run("Linial O(Δ²) coloring", func(net *local.Network) {
		dist.Linial(net)
	})
	run("Luby MIS", func(net *local.Network) {
		dist.LubyMIS(net, nil)
	})
	run("randomized list coloring", func(net *local.Network) {
		active := make([]bool, g.N())
		for v := range active {
			active[v] = true
		}
		partial := make([]int, g.N())
		for v := range partial {
			partial[v] = -1
		}
		li := dist.NewListInstance(g, active, partial, 5)
		if _, _, err := dist.ListColorRandomized(net, li); err != nil {
			panic(err)
		}
	})
	run("gather radius-4 balls (stepped)", func(net *local.Network) {
		local.GatherStepped(net, 4)
	})
	run("gather radius-4 balls (blocking shim)", func(net *local.Network) {
		net.Run(func(ctx *local.Ctx) {
			local.GatherBall(ctx, 4)
		})
	})

	t.AddNote("the symmetry-breaking protocols (Linial, MIS, list coloring) move a few bytes per edge per round — CONGEST-portable as-is — while ball gathering ships whole neighborhoods (max message orders of magnitude larger): exactly the phases that make the paper's algorithms LOCAL-model results. The stepped gather packs each round's frontier into one flat integer record per edge, so it ships the same information in strictly fewer bytes than the blocking shim's map-shaped payloads.")
	return t
}
