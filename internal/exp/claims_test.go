package exp

import (
	"strconv"
	"strings"
	"testing"
)

// Acceptance tests for the experiment claims themselves, in quick mode:
// the *shapes* EXPERIMENTS.md reports must hold on every run, not just
// the published one. Quick mode is noisier than the full suite, so only
// the robust invariants are asserted.

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("expected integer cell, got %q", s)
	}
	return v
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("expected float cell, got %q", s)
	}
	return v
}

// E4: the randomized algorithm must beat the baseline on every row.
func TestClaimE4RandomizedBeatsBaseline(t *testing.T) {
	tb := E4Baseline(Config{Quick: true, Seed: 11})
	for _, row := range tb.Rows {
		randRounds := atoi(t, row[3])
		baseRounds := atoi(t, row[5])
		if baseRounds <= randRounds {
			t.Fatalf("row %v: baseline (%d) did not exceed randomized (%d)", row, baseRounds, randRounds)
		}
	}
}

// E5: every qualifying ball must satisfy the expansion bound (the
// "satisfied" cell is "k/k").
func TestClaimE5BoundAlwaysSatisfied(t *testing.T) {
	tb := E5Expansion(Config{Quick: true, Seed: 13})
	for _, row := range tb.Rows {
		parts := strings.Split(row[5], "/")
		if len(parts) != 2 {
			t.Fatalf("malformed satisfied cell %q", row[5])
		}
		if parts[0] != parts[1] {
			t.Fatalf("row %v: %s of %s qualifying balls satisfied the bound", row, parts[0], parts[1])
		}
	}
}

// E7: every Brooks repair stays within the Theorem 5 radius bound.
func TestClaimE7WithinBound(t *testing.T) {
	tb := E7Brooks(Config{Quick: true, Seed: 17})
	for _, row := range tb.Rows {
		if maxRad, bound := atoi(t, row[4]), atoi(t, row[5]); maxRad > bound {
			t.Fatalf("row %v: radius %d > bound %d", row, maxRad, bound)
		}
	}
}

// E7b: forced instances exist and still stay within the bound.
func TestClaimE7bForcedWithinBound(t *testing.T) {
	tb := E7Adversarial(Config{Quick: true, Seed: 19})
	anyForced := false
	for _, row := range tb.Rows {
		forced := atoi(t, row[3])
		if forced > 0 {
			anyForced = true
		}
		if maxRad, bound := atoi(t, row[4]), atoi(t, row[5]); maxRad > bound {
			t.Fatalf("row %v: radius %d > bound %d", row, maxRad, bound)
		}
	}
	if !anyForced {
		t.Fatal("no forced instances constructed in any family")
	}
}

// E9: the structural lemmas admit zero violations.
func TestClaimE9ZeroViolations(t *testing.T) {
	tb := E9Structure(Config{Quick: true, Seed: 23})
	for _, row := range tb.Rows {
		if v10, v13 := atoi(t, row[3]), atoi(t, row[4]); v10 != 0 || v13 != 0 {
			t.Fatalf("row %v: lemma violations (%d, %d)", row, v10, v13)
		}
	}
}

// E1: rounds normalized by (log log n)² stay within a loose constant
// band — the quick-mode form of the Theorem 1 shape.
func TestClaimE1NormalizedRoundsBounded(t *testing.T) {
	tb := E1SmallDelta(Config{Quick: true, Seed: 29})
	for _, row := range tb.Rows {
		norm := atof(t, row[4])
		if norm <= 0 || norm > 200 {
			t.Fatalf("row %v: rounds/(loglog n)² = %v outside sanity band", row, norm)
		}
	}
}

// E13: batched repair rounds must scale with batches, not holes — on every
// row the batched charge beats the summed charge by at least 5x and the
// batch count stays tiny while the hole count grows.
func TestClaimE13BatchedBeatsSummed(t *testing.T) {
	tb := E13RepairTail(Config{Quick: true, Seed: 17, Strict: true})
	if len(tb.Rows) == 0 {
		t.Fatal("E13 produced no rows")
	}
	for _, row := range tb.Rows {
		holes := atoi(t, row[2])
		batches := atoi(t, row[3])
		summed := atoi(t, row[4])
		batched := atoi(t, row[5])
		if batched*5 > summed {
			t.Fatalf("row %v: batched %d not at least 5x below summed %d", row, batched, summed)
		}
		if batches > 2 {
			t.Fatalf("row %v: %d batches for the constructed workloads, want <= 2", row, batches)
		}
		if holes <= batches {
			t.Fatalf("row %v: %d holes vs %d batches — workload does not force batching", row, holes, batches)
		}
		if ratio := atof(t, row[6]); ratio >= 1 {
			t.Fatalf("row %v: ratio %.4f >= 1", row, ratio)
		}
	}
}
