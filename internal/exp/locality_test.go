package exp

import (
	"bytes"
	"testing"

	"deltacolor/local"
)

func localityRow(family string, n int, relabel bool, rps float64) LocalityRow {
	return LocalityRow{Family: family, N: n, Relabel: relabel, Rounds: 8, RoundsPerSec: rps}
}

func TestLocalityGate(t *testing.T) {
	ok := &LocalityReport{Schema: LocalitySchema, Rows: []LocalityRow{
		localityRow("rr4", 1000, false, 50), // smaller n is not gated
		localityRow("rr4", 1000, true, 10),
		localityRow("rr4", 10000, false, 40),
		localityRow("rr4", 10000, true, 38), // within the noise tolerance
		localityRow("path", 10000, false, 100),
		localityRow("path", 10000, true, 60), // non-rr4 families are not gated
	}}
	if err := LocalityGate(ok); err != nil {
		t.Fatalf("within tolerance, got %v", err)
	}

	bad := &LocalityReport{Schema: LocalitySchema, Rows: []LocalityRow{
		localityRow("rr4", 10000, false, 40),
		localityRow("rr4", 10000, true, 20), // -50%: relabeling lost badly
	}}
	if err := LocalityGate(bad); err == nil {
		t.Fatal("relabel-on regression must fail the gate")
	}

	vacuous := &LocalityReport{Schema: LocalitySchema, Rows: []LocalityRow{
		localityRow("path", 10000, false, 40),
		localityRow("path", 10000, true, 40),
	}}
	if err := LocalityGate(vacuous); err == nil {
		t.Fatal("a report without an rr4 pair must fail, not pass vacuously")
	}

	unpaired := &LocalityReport{Schema: LocalitySchema, Rows: []LocalityRow{
		localityRow("rr4", 10000, true, 40),
		localityRow("rr4", 1000, false, 400),
	}}
	if err := LocalityGate(unpaired); err == nil {
		t.Fatal("rr4 rows at different n are not a pair; the gate must fail")
	}
}

func TestLocalityReportRoundTrip(t *testing.T) {
	rep := &LocalityReport{Schema: LocalitySchema, GoMaxProcs: 1, Rows: []LocalityRow{
		localityRow("rr4", 1000, true, 123),
	}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLocalityReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].RoundsPerSec != 123 || !got.Rows[0].Relabel {
		t.Fatalf("round trip lost data: %+v", got)
	}
	bad := bytes.NewBufferString(`{"schema":"bogus/v9"}`)
	if _, err := ReadLocalityReport(bad); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

// TestQuickE14RestoresRelabelDefault: the ablation runner toggles the
// package-wide relabel default; it must leave it as it found it and
// produce paired rows for every case.
func TestQuickE14RestoresRelabelDefault(t *testing.T) {
	if !local.RelabelEnabled() {
		t.Fatal("premise: relabeling should be the package default")
	}
	rep := LocalityAblation(Config{Quick: true, Seed: 17})
	if !local.RelabelEnabled() {
		t.Fatal("E14 left relabeling ablated")
	}
	if len(rep.Rows)%2 != 0 || len(rep.Rows) == 0 {
		t.Fatalf("E14 rows must come in off/on pairs, got %d", len(rep.Rows))
	}
	for i := 0; i < len(rep.Rows); i += 2 {
		off, on := rep.Rows[i], rep.Rows[i+1]
		if off.Relabel || !on.Relabel || off.Family != on.Family || off.N != on.N {
			t.Fatalf("rows %d/%d are not an off/on pair: %+v / %+v", i, i+1, off, on)
		}
		if off.Rounds != on.Rounds {
			t.Fatalf("%s n=%d: rounds differ between ablation and relabeling (%d vs %d)",
				off.Family, off.N, off.Rounds, on.Rounds)
		}
	}
	if err := LocalityGate(rep); err != nil {
		t.Logf("quick-scale gate note (not fatal at smoke scale): %v", err)
	}
}
