package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment in quick mode: no
// panics, non-empty tables, markdown renders.
func TestAllExperimentsQuick(t *testing.T) {
	tables := All(Config{Quick: true, Seed: 1})
	if len(tables) != 12 {
		t.Fatalf("got %d tables, want 12", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" {
			t.Fatalf("table missing ID/title: %+v", tb)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate table ID %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("table %s has no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("table %s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
		var buf bytes.Buffer
		tb.Markdown(&buf)
		out := buf.String()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, "|") {
			t.Fatalf("table %s markdown malformed:\n%s", tb.ID, out)
		}
	}
}

func TestFitSlope(t *testing.T) {
	// y = 3x + 1 exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 4, 7, 10}
	if got := fitSlope(xs, ys); math.Abs(got-3) > 1e-9 {
		t.Fatalf("fitSlope = %v, want 3", got)
	}
	if got := fitSlope([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Fatalf("fitSlope on single point = %v, want NaN", got)
	}
	if got := fitSlope([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(got) {
		t.Fatalf("fitSlope on vertical data = %v, want NaN", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v, want 4", got)
	}
	if got := geomean(nil); !math.IsNaN(got) {
		t.Fatalf("geomean(nil) = %v, want NaN", got)
	}
}

func TestTableMarkdownShape(t *testing.T) {
	tb := &Table{ID: "EX", Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddNote("note %d", 7)
	var buf bytes.Buffer
	tb.Markdown(&buf)
	out := buf.String()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "> note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "EX", Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("1", "2,3") // comma must be quoted
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b\n") || !strings.Contains(out, `1,"2,3"`) {
		t.Fatalf("csv malformed:\n%s", out)
	}
}
