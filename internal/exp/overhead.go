package exp

// E15: tracer overhead. PR 6 put a Tracer into the round engine's hot
// loop (per-round phase timing, lane counters, the ring buffer), guarded
// so a disabled tracer costs one nil check per phase. E15 verifies the
// guard empirically: the E12 heartbeat workload runs with tracing off,
// counters-only, and full across path/rr4/grid, and the throughput ratio
// against the untraced run is the overhead. cmd/benchsuite serializes the
// report (BENCH_overhead.json) and OverheadGate turns the tentpole's
// budget into a CI check: full tracing may cost at most 10% throughput on
// every family at the largest measured n.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"deltacolor/graph"
	"deltacolor/local"
)

// OverheadSchema identifies the BENCH_overhead.json layout.
const OverheadSchema = "deltacolor/bench-overhead/v1"

// OverheadRow is one (family, n, level) measurement. RoundsPerSec is the
// best of overheadReps runs (per-rep variance on small cases would
// otherwise dominate the effect being measured); Overhead is the relative
// throughput cost against the same case's trace-off row.
type OverheadRow struct {
	Family       string  `json:"family"`
	N            int     `json:"n"`
	Edges        int     `json:"edges"`
	Level        string  `json:"level"` // "off" | "counters" | "full"
	Rounds       int     `json:"rounds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	Overhead     float64 `json:"overhead"` // 1 - rps/rps_off; 0 for the off row
}

// OverheadReport is the full E15 output, serialized to BENCH_overhead.json.
type OverheadReport struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Seed       int64         `json:"seed"`
	Rows       []OverheadRow `json:"rows"`
}

// overheadReps is the measurement repetition count per (case, level).
// Reps are interleaved across levels (off, counters, full, off, ...) and
// each level keeps its best, so a system-wide slow episode degrades every
// level equally instead of biasing whichever one it landed on — the
// comparison is percent-scale, well below this container's run-to-run
// variance on a single measurement.
const overheadReps = 7

var overheadLevels = []struct {
	name  string
	level local.TraceLevel
}{
	{"off", local.TraceOff},
	{"counters", local.TraceCounters},
	{"full", local.TraceFull},
}

// TracerOverhead measures heartbeat throughput at every trace level for
// every (family, n) case, single-worker for host comparability. The
// tracer is attached per network (SetTracer), so the process-wide default
// is untouched.
func TracerOverhead(cfg Config) *OverheadReport {
	cfg.install()
	rep := &OverheadReport{
		Schema:     OverheadSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
	}
	type c struct {
		family string
		n      int
	}
	// Quick mode keeps the full 16-round runs: at 100k a run is still
	// <100ms, and halving it once made the strict gate flake — a single
	// scheduler hiccup inside a ~40ms window reads as a 15% "overhead".
	var cases []c
	rounds := 16
	sizes := []int{10_000, 100_000, 1_000_000}
	gatherSizes := []int{10_000, 100_000}
	if cfg.Quick {
		sizes = []int{10_000, 100_000}
		gatherSizes = []int{10_000}
	}
	for _, n := range sizes {
		cases = append(cases, c{"path", n}, c{"rr4", n}, c{"grid", n})
	}
	// The gate also covers the new gather kernel: the tracer sits in the
	// same engine loop whether the payloads are int heartbeats or boxed
	// ball frontiers, and the boxed lane must meet the same 10% budget.
	// Smaller sizes than the heartbeat families: one (case, level) cell is
	// overheadReps whole gathers, and the comparison is percent-scale
	// either way.
	for _, n := range gatherSizes {
		cases = append(cases, c{"rr4-gather", n})
	}
	for _, tc := range cases {
		var g *graph.G
		if tc.family == "rr4-gather" {
			g = runtimeCase(tc.family, tc.n, cfg.Seed)
		} else {
			g = localityCase(tc.family, tc.n, cfg.Seed)
		}
		workload := func(net *local.Network) {
			if tc.family == "rr4-gather" {
				local.GatherStepped(net, runtimeGatherRadius)
			} else {
				local.RunStepped(net, heartbeat(rounds))
			}
		}
		net := local.NewNetwork(g, cfg.Seed)
		net.SetWorkers(1)
		// Warm-up run: the first run on a fresh network pays cold page
		// faults and branch-predictor training that would all be billed to
		// whichever level happens to run first.
		workload(net)
		tracers := make([]*local.Tracer, len(overheadLevels))
		best := make([]float64, len(overheadLevels))
		var st local.RunStats
		for li, lv := range overheadLevels {
			if lv.level > local.TraceOff {
				tracers[li] = local.NewTracer(lv.level, 0)
			}
		}
		for r := 0; r < overheadReps; r++ {
			for li := range overheadLevels {
				net.SetTracer(tracers[li])
				workload(net)
				if s := net.LastRunStats(); s.RoundsPerSec > best[li] {
					best[li] = s.RoundsPerSec
					st = s
				}
			}
		}
		net.SetTracer(nil)
		for li, lv := range overheadLevels {
			row := OverheadRow{
				Family:       tc.family,
				N:            g.N(), // actual size (grid rounds n to a square)
				Edges:        g.M(),
				Level:        lv.name,
				Rounds:       st.Rounds,
				RoundsPerSec: best[li],
			}
			if li > 0 && best[0] > 0 {
				row.Overhead = 1 - best[li]/best[0]
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// Table renders the report in the E1–E14 table format.
func (rep *OverheadReport) Table() *Table {
	t := &Table{
		ID:     "E15",
		Title:  "Tracer overhead (heartbeat and stepped-gather workloads: tracing off vs counters-only vs full)",
		Header: []string{"family", "n", "edges", "level", "rounds/s", "overhead"},
	}
	for _, r := range rep.Rows {
		ov := "-"
		if r.Level != "off" {
			ov = fmt.Sprintf("%+.1f%%", r.Overhead*100)
		}
		t.AddRow(r.Family, itoa(r.N), itoa(r.Edges), r.Level, f2(r.RoundsPerSec), ov)
	}
	t.AddNote("GOMAXPROCS=%d, quick=%v; one worker, best of %d reps per level. counters-only adds two integer "+
		"adds per sending batch; full additionally takes %d time.Now calls per round and writes one preallocated "+
		"ring record, so neither level allocates per round. The strict gate requires full <= %.0f%% overhead at "+
		"the largest n of every family.", rep.GoMaxProcs, rep.Quick, overheadReps, 3, overheadGateTolerance*100)
	return t
}

// WriteJSON serializes the report (BENCH_overhead.json).
func (rep *OverheadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadOverheadReport parses a report previously written by WriteJSON.
func ReadOverheadReport(r io.Reader) (*OverheadReport, error) {
	var rep OverheadReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("overhead report: %w", err)
	}
	if rep.Schema != OverheadSchema {
		return nil, fmt.Errorf("overhead report: unknown schema %q", rep.Schema)
	}
	return &rep, nil
}

// overheadGateTolerance is the tentpole's tracing budget: full tracing
// may cost at most this fraction of untraced throughput.
const overheadGateTolerance = 0.10

// OverheadGate checks the tracing budget: for every family, at the
// largest measured n, the full-trace row's throughput must be within
// overheadGateTolerance of the off row's. It returns an error describing
// the first budget violation, or when the report carries no off/full pair
// at all — a vacuous gate would defeat the CI step.
func OverheadGate(rep *OverheadReport) error {
	type pair struct{ off, full *OverheadRow }
	largest := map[string]*pair{}
	for i := range rep.Rows {
		r := &rep.Rows[i]
		p := largest[r.Family]
		if p == nil {
			p = &pair{}
			largest[r.Family] = p
		}
		switch r.Level {
		case "off":
			if p.off == nil || r.N > p.off.N {
				p.off = r
			}
		case "full":
			if p.full == nil || r.N > p.full.N {
				p.full = r
			}
		}
	}
	checked := 0
	for family, p := range largest {
		if p.off == nil || p.full == nil || p.off.N != p.full.N {
			continue
		}
		checked++
		floor := p.off.RoundsPerSec * (1 - overheadGateTolerance)
		if p.full.RoundsPerSec < floor {
			return fmt.Errorf("tracer overhead gate: %s n=%d full tracing %.2f rounds/s vs off %.2f (floor %.2f at -%.0f%%)",
				family, p.full.N, p.full.RoundsPerSec, p.off.RoundsPerSec, floor, overheadGateTolerance*100)
		}
	}
	if checked == 0 {
		return fmt.Errorf("tracer overhead gate: report has no off/full pair at a common n")
	}
	return nil
}

// E15Overhead adapts TracerOverhead to the experiment-runner signature.
func E15Overhead(cfg Config) *Table {
	return TracerOverhead(cfg).Table()
}
