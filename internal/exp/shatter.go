package exp

import (
	"fmt"
	"math"
	"math/rand"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/core"
)

// colorForTest produces a valid Δ-coloring to perturb in the Brooks
// experiments.
func colorForTest(g *graph.G, seed int64) ([]int, error) {
	res, err := core.Randomized(g, core.RandOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Colors, nil
}

// E6Shattering reproduces Lemmas 22–24: after the marking process, the
// per-node survival probability is poly(Δ)-small and the surviving
// components have size O(poly(Δ)·log n). We sweep n at fixed Δ and report
// the measured survival rate and the largest surviving component against
// the c·log n shape.
func E6Shattering(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E6",
		Title:  "Lemmas 22–24 — shattering: survival rate and component size vs log n",
		Header: []string{"Δ (backoff)", "n", "p", "T-nodes", "survivors", "survival rate", "max comp", "comp/log₂n"},
	}
	exps := []int{10, 11, 12, 13, 14}
	if cfg.Quick {
		exps = []int{9, 10}
	}
	// Two regimes. "paper": b = 6 with the auto happiness radius — at
	// laptop n the distance-6 backoff ball holds ~10³ nodes, so T-nodes
	// are scarce and the radius covers the graph from a single T-node
	// (the asymptotic constants target enormous n; the outcome is binary).
	// "laptop": b = 3, r = 3 — dense marking with a short radius, which
	// makes the shattering *visible*: a few percent of nodes survive, in
	// components of size O(log n).
	type regime struct {
		name    string
		backoff int
		r       int
	}
	regimes := []regime{{"paper b=6", 6, 0}, {"laptop b=3 r=3", 3, 3}}
	for _, rg := range regimes {
		for _, delta := range []int{4, 6} {
			for _, e := range exps {
				n := 1 << e
				rng := rand.New(rand.NewSource(cfg.Seed + int64(e*31+delta+rg.backoff)))
				g := gen.MustRandomRegular(rng, n, delta)
				st := core.ShatterOnce(g, core.RandOptions{Seed: cfg.Seed + int64(e), Backoff: rg.backoff, R: rg.r})
				t.AddRow(
					fmt.Sprintf("%d (%s)", delta, rg.name), pow2(e), f4(st.P), itoa(st.TNodes),
					itoa(st.Survivors), f4(st.SurvivalRate()),
					itoa(st.MaxComponent), f2(float64(st.MaxComponent)/log2f(n)),
				)
			}
		}
	}
	t.AddNote("in the laptop regime the survival rate FALLS as n grows while the max surviving component stays O(log n) (bounded comp/log₂n) — the shattering property (Lemma 24 P2) that lets phase (6) color leftovers with brute-force-sized machinery. In the paper regime the outcome is binary at these sizes: one surviving T-node's happiness ball already covers the graph, or none survives the backoff and everything remains — the asymptotic regime the constants were written for.")
	return t
}

// E10Ablations sweeps the design parameters Section 4 fixes: the backoff
// distance b (6 for Δ >= 4, 12 for Δ = 3), the selection probability p, and
// the DCC radius r. The table shows why the paper's choices balance T-node
// density (coverage) against blocked paths.
func E10Ablations(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E10",
		Title:  "Ablations — marking backoff b, selection probability p, radius r",
		Header: []string{"variant", "Δ", "n", "T-nodes", "survivors", "survival rate", "max comp", "total rounds"},
	}
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 9
	}
	delta := 4
	rng := rand.New(rand.NewSource(cfg.Seed + 1001))
	g := gen.MustRandomRegular(rng, n, delta)

	base := core.RandOptions{Seed: cfg.Seed}.AutoParams(n, delta)

	variants := []struct {
		name string
		o    core.RandOptions
	}{
		{"paper defaults (b=6)", base},
		{"b=2 (tight backoff)", withBackoff(base, 2)},
		{"b=12 (wide backoff)", withBackoff(base, 12)},
		{"p×4 (dense marking)", withP(base, math.Min(0.2, base.P*4))},
		{"p÷4 (sparse marking)", withP(base, base.P/4)},
		{"r=2 (short happiness radius)", withR(base, 2)},
		{"r=8 (long happiness radius)", withR(base, 8)},
	}
	for _, va := range variants {
		st := core.ShatterOnce(g, va.o)
		res, err := core.Randomized(g, va.o)
		if err != nil {
			panic(fmt.Sprintf("E10 %s: %v", va.name, err))
		}
		t.AddRow(
			va.name, itoa(delta), itoa(n),
			itoa(st.TNodes), itoa(st.Survivors), f4(st.SurvivalRate()),
			itoa(st.MaxComponent), itoa(res.Rounds),
		)
	}
	t.AddNote("sparser marking (p÷4) or a short happiness radius leaves more survivors for the small-component machinery; a tight backoff (b=2) raises T-node density but risks blocked paths — the paper's defaults sit at the low-survivor, low-round corner.")
	return t
}

func withBackoff(o core.RandOptions, b int) core.RandOptions {
	o.Backoff = b
	return o
}

func withP(o core.RandOptions, p float64) core.RandOptions {
	o.P = p
	return o
}

func withR(o core.RandOptions, r int) core.RandOptions {
	o.R = r
	return o
}

// All runs every experiment and returns the tables in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1SmallDelta(cfg),
		E2LargeDelta(cfg),
		E3Deterministic(cfg),
		E4Baseline(cfg),
		E5Expansion(cfg),
		E6Shattering(cfg),
		E7Brooks(cfg),
		E7Adversarial(cfg),
		E8NetDec(cfg),
		E9Structure(cfg),
		E10Ablations(cfg),
		E11Congest(cfg),
	}
}
