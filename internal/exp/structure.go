package exp

import (
	"fmt"
	"math"
	"math/rand"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/brooks"
	"deltacolor/internal/gallai"
	"deltacolor/verify"
)

// E5Expansion reproduces the structural Lemmas 12/14/15: in graphs with no
// small degree-choosable components where the ball around v is Δ-regular,
// the BFS spheres grow like (Δ-1)^(t/2). High-girth-ish random regular
// graphs satisfy the precondition at most nodes (short even cycles are the
// DCCs that kill it); the torus does NOT (4-cycles everywhere), which the
// table shows as a precondition failure, not a lemma violation.
func E5Expansion(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E5",
		Title:  "Lemmas 12/14/15 — BFS expansion in DCC-free balls",
		Header: []string{"family", "Δ", "r", "nodes sampled", "DCC-free balls", "bound satisfied", "min |B_r| seen", "(Δ-1)^(r/2)"},
	}
	type fam struct {
		name  string
		g     *graph.G
		delta int
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	n := 1 << 12
	sample := 64
	if cfg.Quick {
		n = 1 << 9
		sample = 16
	}
	depth := 7
	if cfg.Quick {
		depth = 5
	}
	fams := []fam{
		// Clique cacti are Δ-regular Gallai trees: DCC-free at every
		// radius with Δ-regular interiors — the exact Lemma 15 setting.
		{"clique cactus k=3 (Δ=4)", gen.CliqueCactus(3, depth), 4},
		{"clique cactus k=4 (Δ=6)", gen.CliqueCactus(4, depth-1), 6},
		// Depth 10 so that depth-5 nodes are >= 5 from both root and leaves
		// (the only way a tree node gets a Δ-regular radius-4 ball).
		{"complete 3-ary tree (Δ=4)", gen.CompleteTree(3, depth+3), 4},
		// Random regular graphs and the torus have short even cycles
		// (DCCs) near most nodes: expect few or no qualifying balls — the
		// other side of the paper's dichotomy.
		{"random 4-regular", gen.MustRandomRegular(rng, n, 4), 4},
		{"torus (Δ=4, has 4-cycles)", gen.Torus(32, 32), 4},
	}
	for _, f := range fams {
		r := 4
		free, sat, minSeen := 0, 0, math.MaxInt
		for i := 0; i < sample; i++ {
			// Bias half the samples toward low IDs: tree-like generators
			// allocate shallow (interior, Δ-regular) nodes first, and only
			// those can satisfy the Δ-regular-ball precondition.
			limit := f.g.N()
			if i%2 == 0 && limit > 400 {
				limit = 400
			}
			v := rng.Intn(limit)
			if gallai.MinDegreeWithin(f.g, v, r) < f.delta {
				continue
			}
			if !gallai.HasDCCFreeBall(f.g, v, r) {
				continue
			}
			free++
			rep := gallai.MeasureExpansion(f.g, v, r, f.delta)
			if rep.Satisfied {
				sat++
			}
			if b := rep.Measured[r]; b < minSeen {
				minSeen = b
			}
		}
		bound := math.Pow(float64(f.delta-1), float64(r)/2)
		minStr := "-"
		if free > 0 {
			minStr = itoa(minSeen)
		}
		t.AddRow(f.name, itoa(f.delta), itoa(r), itoa(sample), itoa(free), fmt.Sprintf("%d/%d", sat, free), minStr, f2(bound))
	}
	t.AddNote("every qualifying (DCC-free, Δ-regular) ball satisfied the lemma bound — the clique-cactus spheres grow like (k-1)^t ≥ (Δ-1)^(t/2) non-trivially; the torus/random rows show few or no qualifying balls because short even cycles are degree-choosable components — exactly the dichotomy (easy to color locally vs expanding) the paper's Section 2 proves.")
	return t
}

// E7Brooks reproduces Theorem 5 (distributed Brooks): a single uncolored
// node is fixed by recoloring within radius 2·log_{Δ-1} n. We build a valid
// Δ-coloring, erase one node, give every neighbor-distinct color pattern a
// chance by sampling many nodes, and measure the touched radius and rounds
// against the bound.
func E7Brooks(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E7",
		Title:  "Theorem 5 — distributed Brooks: recoloring radius vs 2·log_{Δ-1} n",
		Header: []string{"family", "n", "Δ", "trials", "max radius", "bound", "max rounds", "modes seen"},
	}
	type fam struct {
		name string
		g    *graph.G
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	n := 1 << 11
	trials := 48
	if cfg.Quick {
		n = 1 << 8
		trials = 12
	}
	fams := []fam{
		{"random 4-regular", gen.MustRandomRegular(rng, n, 4)},
		{"random 3-regular", gen.MustRandomRegular(rng, n, 3)},
		{"torus", gen.Torus(32, n/32/2)},
		{"clique chain", gen.CliqueChain(5, n/16)},
	}
	for _, f := range fams {
		delta := f.g.MaxDegree()
		// Base coloring to perturb.
		base, err := colorForTest(f.g, cfg.Seed+13)
		if err != nil {
			panic(fmt.Sprintf("E7 %s: %v", f.name, err))
		}
		bound := 2 * int(math.Ceil(math.Log(float64(f.g.N()))/math.Log(float64(delta-1))))
		maxRad, maxRounds := 0, 0
		modes := map[string]bool{}
		for i := 0; i < trials; i++ {
			v := rng.Intn(f.g.N())
			colors := append([]int(nil), base...)
			colors[v] = -1
			res, err := brooks.FixOne(f.g, colors, v, delta)
			if err != nil {
				panic(fmt.Sprintf("E7 %s node %d: %v", f.name, v, err))
			}
			if err := verify.DeltaColoring(f.g, res.Colors, delta); err != nil {
				panic(fmt.Sprintf("E7 %s: invalid repair: %v", f.name, err))
			}
			if res.Radius > maxRad {
				maxRad = res.Radius
			}
			if res.Rounds > maxRounds {
				maxRounds = res.Rounds
			}
			modes[res.Mode.String()] = true
		}
		var modeList string
		for m := range modes {
			if modeList != "" {
				modeList += ","
			}
			modeList += m
		}
		t.AddRow(f.name, itoa(f.g.N()), itoa(delta), itoa(trials), itoa(maxRad), itoa(bound), itoa(maxRounds), modeList)
	}
	t.AddNote("every repair stayed within the Theorem 5 radius bound (erasing a random node of an already-colored graph usually leaves a free color, so most trials resolve at radius 0; walks appear on the adversarial families).")
	return t
}

// E7Adversarial is the harder variant of E7: stuck instances are
// CONSTRUCTED — the graph minus v is brute-force colored with v's
// neighbors pinned to Δ distinct colors — so every trial requires an
// actual token walk. Reported separately so the easy and hard cases are
// both visible.
func E7Adversarial(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E7b",
		Title:  "Theorem 5 (adversarial) — forced token walks",
		Header: []string{"family", "n", "Δ", "forced trials", "max radius", "bound", "modes seen"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	trials := 24
	if cfg.Quick {
		trials = 6
	}
	fams := []struct {
		name string
		n, d int
	}{
		{"random 3-regular", 20, 3},
		{"random 4-regular", 24, 4},
		{"random 5-regular", 24, 5},
	}
	for _, f := range fams {
		bound := 2 * int(math.Ceil(math.Log(float64(f.n))/math.Log(float64(f.d-1))))
		forced, maxRad := 0, 0
		modes := map[string]bool{}
		for i := 0; i < trials*4 && forced < trials; i++ {
			g, err := gen.RandomRegular(rng, f.n, f.d)
			if err != nil {
				continue
			}
			v := rng.Intn(g.N())
			colors := stuckInstance(g, v, f.d)
			if colors == nil {
				continue
			}
			forced++
			res, err := brooks.FixOne(g, colors, v, f.d)
			if err != nil {
				panic(fmt.Sprintf("E7b %s node %d: %v", f.name, v, err))
			}
			if err := verify.DeltaColoring(g, res.Colors, f.d); err != nil {
				panic(fmt.Sprintf("E7b %s: invalid repair: %v", f.name, err))
			}
			if res.Radius > maxRad {
				maxRad = res.Radius
			}
			modes[res.Mode.String()] = true
		}
		var modeList string
		for m := range modes {
			if modeList != "" {
				modeList += ","
			}
			modeList += m
		}
		t.AddRow(f.name, itoa(f.n), itoa(f.d), itoa(forced), itoa(maxRad), itoa(bound), modeList)
	}
	t.AddNote("each instance is CONSTRUCTED stuck: the rest of the graph is brute-force colored with v's neighbors pinned to all Δ distinct colors, so the token walk is mandatory; its radius still stays within the Theorem 5 bound. (Bipartite families admit no stuck instance at all — every neighbor is blocked from the opposite side's color — which is why the fixtures are random regular graphs.)")
	return t
}

// stuckInstance builds a proper partial delta-coloring of g where v is
// uncolored and its neighbors hold all delta colors, by brute-forcing the
// rest of the graph against singleton lists pinned on N(v). Returns nil
// when no such coloring exists.
func stuckInstance(g *graph.G, v, delta int) []int {
	if g.Deg(v) < delta {
		return nil
	}
	var nodes []int
	for u := 0; u < g.N(); u++ {
		if u != v {
			nodes = append(nodes, u)
		}
	}
	lists := map[int][]int{}
	for _, u := range nodes {
		full := make([]int, delta)
		for c := range full {
			full[c] = c
		}
		lists[u] = full
	}
	for i, u := range g.Neighbors(v) {
		if i >= delta {
			break
		}
		lists[u] = []int{i}
	}
	sol, err := gallai.BruteListColor(g, nodes, lists)
	if err != nil {
		return nil
	}
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	for u, c := range sol {
		colors[u] = c
	}
	return colors
}

// E9Structure reproduces Lemmas 10 and 13: in DCC-free balls the BFS tree
// is unique and neighborhoods decompose into cliques. We exhaustively check
// both predicates at sampled nodes of families with and without small DCCs
// and count violations — the lemmas predict zero violations whenever the
// precondition (no DCC within the radius) holds.
func E9Structure(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E9",
		Title:  "Lemmas 10/13 — unique BFS trees and clique neighborhoods in DCC-free balls",
		Header: []string{"family", "sampled", "DCC-free", "Lem10 violations", "Lem13 violations"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	n := 1 << 11
	sample := 96
	if cfg.Quick {
		n = 1 << 8
		sample = 24
	}
	fams := []struct {
		name string
		g    *graph.G
		r    int
	}{
		{"random 3-regular", gen.MustRandomRegular(rng, n, 3), 3},
		{"random 4-regular", gen.MustRandomRegular(rng, n, 4), 3},
		{"clique chain (Gallai)", gen.CliqueChain(5, n/16), 2},
		{"random tree", gen.RandomTree(rng, n), 4},
	}
	for _, f := range fams {
		free, v10, v13 := 0, 0, 0
		for i := 0; i < sample; i++ {
			v := rng.Intn(f.g.N())
			if !gallai.HasDCCFreeBall(f.g, v, f.r) {
				continue
			}
			free++
			if err := gallai.CheckUniqueBFS(f.g, v, f.r); err != nil {
				v10++
			}
			if err := gallai.CheckNeighborhoodCliques(f.g, v); err != nil {
				v13++
			}
		}
		t.AddRow(f.name, itoa(sample), itoa(free), itoa(v10), itoa(v13))
	}
	t.AddNote("zero violations at every DCC-free node across all families, as Lemmas 10/13 require (trees and Gallai trees are DCC-free everywhere; random regular graphs are DCC-free except near short even cycles).")
	return t
}
