package exp

import (
	"fmt"
	"math/rand"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/baseline"
	"deltacolor/internal/core"
	"deltacolor/verify"
)

// mustColoring panics on an invalid result — the harness must never report
// rounds for an incorrect coloring.
func mustColoring(g *graph.G, colors []int, delta int, what string) {
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		panic(fmt.Sprintf("%s produced an invalid coloring: %v", what, err))
	}
}

// E1SmallDelta reproduces Theorem 1 / Corollary 2: the randomized small-Δ
// algorithm colors constant-degree graphs in O((log log n)²) rounds. We
// sweep n for Δ in {3,4,5} on random Δ-regular graphs and report rounds
// alongside rounds/(log log n)², which the theorem predicts stays bounded,
// and the log-log slope (sublogarithmic growth shows as slope << 1).
func E1SmallDelta(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E1",
		Title:  "Theorem 1 / Corollary 2 — randomized small-Δ coloring, rounds vs n",
		Header: []string{"Δ", "n", "rounds", "repairs", "rounds/(loglog n)²"},
	}
	exps := []int{8, 9, 10, 11, 12, 13}
	if cfg.Quick {
		exps = []int{8, 9, 10}
	}
	for _, delta := range []int{3, 4, 5} {
		var xs, ys []float64
		for _, e := range exps {
			n := 1 << e
			rng := rand.New(rand.NewSource(cfg.Seed + int64(e*100+delta)))
			g := gen.MustRandomRegular(rng, n, delta)
			res, err := core.Randomized(g, core.RandOptions{Seed: cfg.Seed + int64(e), SmallDelta: true})
			if err != nil {
				panic(fmt.Sprintf("E1 Δ=%d n=%d: %v", delta, n, err))
			}
			mustColoring(g, res.Colors, res.Delta, "E1")
			ll := loglog(n)
			t.AddRow(itoa(delta), pow2(e), itoa(res.Rounds), itoa(res.Repairs), f2(float64(res.Rounds)/(ll*ll)))
			xs = append(xs, log2f(n))
			ys = append(ys, float64(res.Rounds))
		}
		slope := fitSlope(xs, ys)
		t.AddNote("Δ=%d: d(rounds)/d(log2 n) ≈ %.2f — far below the baseline's poly(log n) growth; the paper predicts O((log log n)²), i.e. a vanishing slope.", delta, slope)
	}
	return t
}

// E2LargeDelta reproduces Theorem 3: for Δ >= 4 the randomized algorithm
// runs in O(log Δ) + 2^O(√log log n) rounds. We fix n and sweep Δ, reporting
// rounds and rounds/log Δ, which the theorem predicts approaches a constant
// plus the (n-dependent) shattering term.
func E2LargeDelta(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 3 — randomized large-Δ coloring, rounds vs Δ at fixed n",
		Header: []string{"Δ", "n", "rounds", "repairs", "rounds/log₂Δ"},
	}
	n := 1 << 12
	deltas := []int{4, 6, 8, 12, 16, 24, 32}
	if cfg.Quick {
		n = 1 << 9
		deltas = []int{4, 8, 16}
	}
	var xs, ys []float64
	for _, delta := range deltas {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(delta)))
		g := gen.MustRandomRegular(rng, n, delta)
		res, err := core.Randomized(g, core.RandOptions{Seed: cfg.Seed + int64(delta)})
		if err != nil {
			panic(fmt.Sprintf("E2 Δ=%d: %v", delta, err))
		}
		mustColoring(g, res.Colors, res.Delta, "E2")
		t.AddRow(itoa(delta), pow2(12), itoa(res.Rounds), itoa(res.Repairs), f2(float64(res.Rounds)/log2f(delta)))
		xs = append(xs, log2f(delta))
		ys = append(ys, float64(res.Rounds))
	}
	t.AddNote("d(rounds)/d(log2 Δ) ≈ %.2f: at laptop scale the additive n-dependent shattering term of Theorem 3 dominates and the O(log Δ) term is invisible — rounds stay flat (or even fall: denser graphs give the marking process more slack per node). The reproducible shape is the absence of any polynomial Δ-dependence, which the deterministic algorithm (E3) does exhibit through its substituted list-coloring subroutine.", fitSlope(xs, ys))
	return t
}

// E3Deterministic reproduces Theorem 4: deterministic Δ-coloring in
// Õ(√Δ·log²n) paper-rounds (O(Δ²·log²n) with this repository's substituted
// list-coloring subroutine, see DESIGN.md §3). The log²n growth in n is the
// reproducible shape: rounds/log²n should flatten per Δ.
func E3Deterministic(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E3",
		Title:  "Theorem 4 — deterministic coloring, rounds vs n (fit against log² n)",
		Header: []string{"Δ", "n", "rounds", "rounds/log₂²n"},
	}
	exps := []int{8, 9, 10, 11, 12}
	deltas := []int{4, 8, 16}
	if cfg.Quick {
		exps = []int{8, 9}
		deltas = []int{4, 8}
	}
	for _, delta := range deltas {
		var xs, ys []float64
		for _, e := range exps {
			n := 1 << e
			rng := rand.New(rand.NewSource(cfg.Seed + int64(e*1000+delta)))
			g := gen.MustRandomRegular(rng, n, delta)
			res, err := core.Deterministic(g, cfg.Seed+int64(e))
			if err != nil {
				panic(fmt.Sprintf("E3 Δ=%d n=%d: %v", delta, n, err))
			}
			mustColoring(g, res.Colors, res.Delta, "E3")
			l := log2f(n)
			t.AddRow(itoa(delta), pow2(e), itoa(res.Rounds), f2(float64(res.Rounds)/(l*l)))
			xs = append(xs, log2f(n))
			ys = append(ys, float64(res.Rounds))
		}
		t.AddNote("Δ=%d: d(rounds)/d(log2 n) ≈ %.1f — polylogarithmic in n as Theorem 4 predicts.", delta, fitSlope(xs, ys))
	}
	return t
}

// E4Baseline reproduces the headline comparison: the paper's algorithms
// against the Panconesi–Srinivasan-style baseline (25-year state of the
// art, O(log³n/log Δ) rounds). The shape that must hold: the randomized
// algorithm wins on every workload, by a factor that grows with n.
func E4Baseline(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E4",
		Title:  "Headline — this paper vs Panconesi–Srinivasan baseline",
		Header: []string{"workload", "n", "Δ", "rand rounds", "det rounds", "baseline rounds", "baseline/rand"},
	}
	exps := []int{8, 10, 12, 13}
	if cfg.Quick {
		exps = []int{8, 9}
	}
	var ratios []float64
	for _, e := range exps {
		n := 1 << e
		rng := rand.New(rand.NewSource(cfg.Seed + int64(e)))
		g := gen.MustRandomRegular(rng, n, 4)

		rres, err := core.Randomized(g, core.RandOptions{Seed: cfg.Seed + int64(e)})
		if err != nil {
			panic(fmt.Sprintf("E4 rand n=%d: %v", n, err))
		}
		mustColoring(g, rres.Colors, rres.Delta, "E4/rand")

		dres, err := core.Deterministic(g, cfg.Seed+int64(e))
		if err != nil {
			panic(fmt.Sprintf("E4 det n=%d: %v", n, err))
		}
		mustColoring(g, dres.Colors, dres.Delta, "E4/det")

		bres, err := baseline.Color(g, cfg.Seed+int64(e))
		if err != nil {
			panic(fmt.Sprintf("E4 baseline n=%d: %v", n, err))
		}
		mustColoring(g, bres.Colors, bres.Delta, "E4/baseline")

		r := ratio(bres.Rounds, rres.Rounds)
		ratios = append(ratios, r)
		t.AddRow("random 4-regular", pow2(e), "4", itoa(rres.Rounds), itoa(dres.Rounds), itoa(bres.Rounds), f2(r))
	}
	t.AddNote("geometric-mean speedup of the randomized algorithm over the baseline: %.2fx; the paper predicts the gap widens with n (O((log log n)²) vs O(log³ n)).", geomean(ratios))
	return t
}

// E8NetDec compares the two deterministic variants: Theorem 4 (AGLP ruling
// set + Linial-class list coloring) against Theorem 21 (network
// decomposition). Both must produce valid colorings; the table reports
// their round counts side by side.
func E8NetDec(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E8",
		Title:  "Theorem 21 — network-decomposition variant vs Theorem 4 variant",
		Header: []string{"n", "Δ", "Thm4 rounds", "Thm21 rounds", "Thm21/Thm4"},
	}
	exps := []int{8, 9, 10, 11}
	if cfg.Quick {
		exps = []int{8, 9}
	}
	for _, e := range exps {
		n := 1 << e
		rng := rand.New(rand.NewSource(cfg.Seed + int64(e*7)))
		g := gen.MustRandomRegular(rng, n, 4)
		d4, err := core.Deterministic(g, cfg.Seed+int64(e))
		if err != nil {
			panic(fmt.Sprintf("E8 thm4 n=%d: %v", n, err))
		}
		mustColoring(g, d4.Colors, d4.Delta, "E8/thm4")
		d21, err := core.DeterministicNetDec(g, cfg.Seed+int64(e))
		if err != nil {
			panic(fmt.Sprintf("E8 thm21 n=%d: %v", n, err))
		}
		mustColoring(g, d21.Colors, d21.Delta, "E8/thm21")
		t.AddRow(pow2(e), "4", itoa(d4.Rounds), itoa(d21.Rounds), f2(ratio(d21.Rounds, d4.Rounds)))
	}
	t.AddNote("both variants grow polylogarithmically; Theorem 21 trades the AGLP recursion for decomposition rounds. In the paper the Thm 21 bound (2^O(√log n)) is weaker than Thm 4's for small Δ, and the measured ratio reflects that.")
	return t
}
