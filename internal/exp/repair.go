package exp

// E13: the repair tail. Every composite algorithm ends in the Brooks
// safety net; until PR 4 it ran centrally one hole at a time and charged
// the summed rounds — the scaling bottleneck the ROADMAP flagged. E13
// measures the batched engine (internal/brooks.RepairHoles) against that
// sequential accounting on forced-repair workloads: a grid with a known
// 2-out-of-Δ checkerboard coloring and k punched holes, spread (pairwise
// independent, one batch) or paired (adjacent dominoes, two batches), at n
// up to 10⁶. The claim the table demonstrates is the acceptance criterion
// of the PR: charged repair rounds scale with the number of batches
// (≈ max per batch + scheduling), not with k.

import (
	"fmt"
	"time"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/brooks"
	"deltacolor/verify"
)

// repairWorkload punches holes into a checkerboard-colored side×side grid.
// Pattern "spread" uncolors one cell per stride×stride tile (pairwise
// non-adjacent); "paired" uncolors horizontal dominoes at the same stride
// (each pair conflicts internally, forcing a second batch).
func repairWorkload(side, stride int, pattern string) (g *graph.G, colors []int, holes int) {
	g = gen.Grid(side, side)
	colors = make([]int, g.N())
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			colors[r*side+c] = (r + c) % 2
		}
	}
	for r := 0; r+1 < side; r += stride {
		for c := 0; c+1 < side; c += stride {
			colors[r*side+c] = -1
			holes++
			if pattern == "paired" {
				colors[r*side+c+1] = -1
				holes++
			}
		}
	}
	return g, colors, holes
}

// repairStride picks the tile size so the hole count lands near target.
func repairStride(side, target int) int {
	stride := 3
	for (side/stride)*(side/stride) > target {
		stride++
	}
	return stride
}

// E13RepairTail compares the pre-batching sequential safety net (FixOne
// per hole, O(n) copy per application, summed rounds) against the batched
// engine on the forced-repair workloads, reporting both the round
// accounting and the wall time of the central simulation.
func E13RepairTail(cfg Config) *Table {
	cfg.install()
	t := &Table{
		ID:     "E13",
		Title:  "Repair tail: batched Brooks engine vs sequential safety net (forced-repair grids)",
		Header: []string{"pattern", "n", "holes", "batches", "summed rounds", "batched rounds", "ratio", "seq ms", "batch ms"},
	}
	sides := []int{100, 316, 1000}
	target := 2048
	if cfg.Quick {
		sides = []int{32, 100}
		target = 256
	}
	delta := 4
	worstRatio := 0.0
	for _, pattern := range []string{"spread", "paired"} {
		for _, side := range sides {
			stride := repairStride(side, target)
			g, colors, holes := repairWorkload(side, stride, pattern)

			// Before: the sequential engine (exactly what core.RepairUncolored
			// did before PR 4 — FixOne in ascending ID order, full-slice copy
			// per repair, summed rounds).
			seq := append([]int(nil), colors...)
			t0 := time.Now()
			summed := 0
			for v := 0; v < g.N(); v++ {
				if seq[v] >= 0 {
					continue
				}
				res, err := brooks.FixOne(g, seq, v, delta)
				if err != nil {
					panic(fmt.Sprintf("E13 %s side=%d: sequential repair of %d: %v", pattern, side, v, err))
				}
				copy(seq, res.Colors)
				summed += res.Rounds
			}
			seqMillis := float64(time.Since(t0).Microseconds()) / 1000
			if err := verify.DeltaColoring(g, seq, delta); err != nil {
				panic(fmt.Sprintf("E13 %s side=%d sequential: %v", pattern, side, err))
			}

			// After: the batched engine.
			t1 := time.Now()
			res, err := brooks.Repair(g, colors, delta, cfg.Seed)
			if err != nil {
				panic(fmt.Sprintf("E13 %s side=%d: %v", pattern, side, err))
			}
			batchMillis := float64(time.Since(t1).Microseconds()) / 1000
			if err := verify.DeltaColoring(g, colors, delta); err != nil {
				panic(fmt.Sprintf("E13 %s side=%d batched: %v", pattern, side, err))
			}
			if res.Fixed != holes {
				panic(fmt.Sprintf("E13 %s side=%d: fixed %d of %d holes", pattern, side, res.Fixed, holes))
			}
			if res.SummedRounds != summed {
				panic(fmt.Sprintf("E13 %s side=%d: engine counterfactual %d != sequential charge %d", pattern, side, res.SummedRounds, summed))
			}
			if res.TotalRounds() >= summed {
				panic(fmt.Sprintf("E13 %s side=%d: batched charge %d did not beat summed %d", pattern, side, res.TotalRounds(), summed))
			}

			r := ratio(res.TotalRounds(), summed)
			if r > worstRatio {
				worstRatio = r
			}
			t.AddRow(pattern, itoa(g.N()), itoa(holes), itoa(len(res.Batches)),
				itoa(summed), itoa(res.TotalRounds()), f4(r),
				f2(seqMillis), f2(batchMillis))
		}
	}
	t.AddNote("charged repair rounds scale with the number of batches (max per batch + MIS scheduling on the ball quotient), not with the hole count k: worst batched/summed ratio %.4f. The sequential column also pays an O(n) color-copy per repair — the central cost the engine's ball-diff application removes.", worstRatio)
	return t
}
