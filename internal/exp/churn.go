package exp

// E16: churn and fault recovery. The coloring-as-a-service loop keeps a
// Δ-coloring alive while the graph mutates underneath it and faults mangle
// the runs that maintain it. This experiment measures the two halves of
// that loop introduced by the robustness PR:
//
//   - Mutation rows: color a random-regular graph once, push a 1% mutation
//     stream (edge inserts, degree-guarded deletes, node arrivals) through
//     the live local.Network churn API, then restore a verified coloring
//     both ways — incrementally (deltacolor.Recolor: conflict-set scan +
//     batched Brooks repair, O(conflict set)) and from scratch
//     (deltacolor.Color on the mutated graph). The claim, enforced by
//     ChurnGate under -strict: at the largest n the incremental path wins
//     on charged LOCAL rounds AND wall time.
//
//   - Fault rows: deltacolor.ColorUnderFaults under representative
//     FaultPlans (drop, dup+delay, crash bursts), self-checking the
//     all-or-typed-error contract; the gate demands at least one plan
//     heals to a verified coloring.
//
// cmd/benchsuite serializes the report (BENCH_churn.json) and the CI quick
// pass runs it under -strict.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/local"
	"deltacolor/verify"
)

// ChurnSchema identifies the BENCH_churn.json layout.
const ChurnSchema = "deltacolor/bench-churn/v1"

// ChurnMutationRow is one (family, n) incremental-vs-full measurement.
type ChurnMutationRow struct {
	Family    string `json:"family"`
	N         int    `json:"n"` // node count after the stream (arrivals included)
	Edges     int    `json:"edges"`
	Delta     int    `json:"delta"` // color budget after mutation (MaxDegree)
	Mutations int    `json:"mutations"`
	Inserts   int    `json:"inserts"`
	Deletes   int    `json:"deletes"`
	NodeAdds  int    `json:"node_adds"`
	Conflicts int    `json:"conflicts"` // conflict-set size the stream left behind

	IncrRounds int     `json:"incr_rounds"` // charged repair rounds (sched + exec)
	IncrMillis float64 `json:"incr_ms"`
	FullRounds int     `json:"full_rounds"` // full pipeline rounds on the mutated graph
	FullMillis float64 `json:"full_ms"`

	RoundsRatio float64 `json:"rounds_ratio"` // incr/full, <1 means incremental wins
	WallRatio   float64 `json:"wall_ratio"`
}

// ChurnFaultRow is one ColorUnderFaults run under a named FaultPlan.
type ChurnFaultRow struct {
	Plan          string  `json:"plan"`
	N             int     `json:"n"`
	Delta         int     `json:"delta"`
	Rounds        int     `json:"rounds"` // pipeline rounds (0 when unrecoverable)
	Conflicts     int     `json:"conflicts"`
	Repaired      int     `json:"repaired"`
	Millis        float64 `json:"ms"`
	Verified      bool    `json:"verified"`
	Unrecoverable bool    `json:"unrecoverable"`
}

// ChurnReport is the full E16 output, serialized to BENCH_churn.json.
type ChurnReport struct {
	Schema       string             `json:"schema"`
	GoMaxProcs   int                `json:"gomaxprocs"`
	Quick        bool               `json:"quick"`
	Seed         int64              `json:"seed"`
	MutationRows []ChurnMutationRow `json:"mutation_rows"`
	FaultRows    []ChurnFaultRow    `json:"fault_rows"`
}

// churnStream pushes ops random mutations through the live network churn
// API, mirroring the arrival/departure mix of a service workload: mostly
// edge inserts (capped so degrees stay <= churnDegCap and Δ stays tame),
// some deletes (only when both endpoints keep degree >= 3, preserving the
// pipelines' minimum-degree precondition), and occasional node arrivals
// wired to three anchors. Returns the op counts; colors gains a -1 entry
// per arrival, per the Recolor contract.
func churnStream(net *local.Network, rng *rand.Rand, colors *[]int, ops int) (ins, del, adds int) {
	const churnDegCap = 8
	g := net.Graph()
	for k := 0; k < ops; k++ {
		switch r := rng.Float64(); {
		case r < 0.80: // insert
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v || g.HasEdge(u, v) || g.Deg(u) >= churnDegCap || g.Deg(v) >= churnDegCap {
				continue
			}
			if err := net.AddEdge(u, v); err != nil {
				panic(fmt.Sprintf("E16 churn insert (%d,%d): %v", u, v, err))
			}
			ins++
		case r < 0.95: // delete, degree-guarded
			u := rng.Intn(g.N())
			if g.Deg(u) < 4 {
				continue
			}
			v := g.Neighbors(u)[rng.Intn(g.Deg(u))]
			if g.Deg(v) < 4 {
				continue
			}
			if err := net.RemoveEdge(u, v); err != nil {
				panic(fmt.Sprintf("E16 churn delete (%d,%d): %v", u, v, err))
			}
			del++
		default: // node arrival wired to three anchors
			nv := net.AddNode()
			wired := 0
			for tries := 0; wired < 3 && tries < 20; tries++ {
				u := rng.Intn(nv)
				if g.HasEdge(nv, u) || g.Deg(u) >= churnDegCap {
					continue
				}
				if err := net.AddEdge(nv, u); err != nil {
					panic(fmt.Sprintf("E16 churn wire (%d,%d): %v", nv, u, err))
				}
				wired++
			}
			*colors = append(*colors, -1)
			adds++
		}
	}
	return ins, del, adds
}

// churnPlans are the representative fault schedules of the fault rows.
// Every plan bounds its burst (ToRound) and carries the RoundLimit
// Validate requires, so runs terminate even when the damage is fatal.
func churnPlans(seed int64) []struct {
	name string
	plan *local.FaultPlan
} {
	return []struct {
		name string
		plan *local.FaultPlan
	}{
		{"drop-2%", &local.FaultPlan{Seed: seed, DropProb: 0.02, FromRound: 1, ToRound: 60, RoundLimit: 50_000}},
		{"dup+delay", &local.FaultPlan{Seed: seed + 1, DupProb: 0.05, DelayProb: 0.05, MaxDelay: 2, FromRound: 1, ToRound: 60, RoundLimit: 50_000}},
		{"crash-burst", &local.FaultPlan{Seed: seed + 2, DropProb: 0.005, FromRound: 1, ToRound: 40, RoundLimit: 50_000,
			Crashes: []local.CrashWindow{{Node: 1, From: 2, To: 12}, {Node: 17, From: 5, To: 9}, {Node: 101, From: 3, To: 30}}}},
	}
}

// ChurnRecovery runs E16: the incremental-vs-full comparison over 1%
// mutation streams, then the fault-recovery rows.
func ChurnRecovery(cfg Config) *ChurnReport {
	cfg.install()
	rep := &ChurnReport{
		Schema:     ChurnSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
	}

	sizes := []int{10_000, 100_000}
	faultN := 4096
	if cfg.Quick {
		sizes = []int{2_000, 10_000}
		faultN = 512
	}
	for _, n := range sizes {
		g := gen.MustRandomRegular(rand.New(rand.NewSource(cfg.Seed)), n, 4)
		res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: cfg.Seed})
		if err != nil {
			panic(fmt.Sprintf("E16 rr4 n=%d initial coloring: %v", n, err))
		}
		colors := res.Colors

		net := local.NewNetwork(g, cfg.Seed)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		ops := n / 100
		ins, del, adds := churnStream(net, rng, &colors, ops)
		delta := g.MaxDegree()
		conflicts := len(deltacolor.ConflictSet(g, colors, delta))

		// Incremental: conflict-set scan + batched Brooks repair.
		incr := append([]int(nil), colors...)
		t0 := time.Now()
		stats, err := deltacolor.Recolor(g, incr, delta, cfg.Seed)
		incrMillis := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			panic(fmt.Sprintf("E16 rr4 n=%d incremental recolor: %v", n, err))
		}

		// Full: rerun the whole pipeline on the mutated graph.
		t1 := time.Now()
		full, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: cfg.Seed})
		fullMillis := float64(time.Since(t1).Microseconds()) / 1000
		if err != nil {
			panic(fmt.Sprintf("E16 rr4 n=%d full recolor: %v", n, err))
		}
		if err := verify.DeltaColoring(g, full.Colors, full.Delta); err != nil {
			panic(fmt.Sprintf("E16 rr4 n=%d full recolor invalid: %v", n, err))
		}

		rep.MutationRows = append(rep.MutationRows, ChurnMutationRow{
			Family: "rr4", N: g.N(), Edges: g.M(), Delta: delta,
			Mutations: ops, Inserts: ins, Deletes: del, NodeAdds: adds,
			Conflicts:  conflicts,
			IncrRounds: stats.RepairRounds, IncrMillis: incrMillis,
			FullRounds: full.Rounds, FullMillis: fullMillis,
			RoundsRatio: ratio(stats.RepairRounds, full.Rounds),
			WallRatio:   incrMillis / fullMillis,
		})
	}

	g := gen.MustRandomRegular(rand.New(rand.NewSource(cfg.Seed+7)), faultN, 4)
	for _, tc := range churnPlans(cfg.Seed) {
		t0 := time.Now()
		res, stats, err := deltacolor.ColorUnderFaults(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: cfg.Seed}, tc.plan)
		millis := float64(time.Since(t0).Microseconds()) / 1000
		row := ChurnFaultRow{Plan: tc.name, N: g.N(), Millis: millis}
		if err != nil {
			if !errors.Is(err, deltacolor.ErrUnrecoverable) {
				panic(fmt.Sprintf("E16 fault plan %s: untyped error: %v", tc.name, err))
			}
			row.Unrecoverable = true
		} else {
			if verr := verify.DeltaColoring(g, res.Colors, res.Delta); verr != nil {
				panic(fmt.Sprintf("E16 fault plan %s: nil error but invalid coloring: %v", tc.name, verr))
			}
			row.Delta = res.Delta
			row.Rounds = res.Rounds
			row.Conflicts = stats.Conflicts
			row.Repaired = stats.Repaired
			row.Verified = true
		}
		rep.FaultRows = append(rep.FaultRows, row)
	}
	return rep
}

// Table renders the report in the E1–E15 table format.
func (rep *ChurnReport) Table() *Table {
	t := &Table{
		ID:     "E16",
		Title:  "Churn & fault recovery: incremental Recolor vs full re-coloring (1% mutation streams), ColorUnderFaults plans",
		Header: []string{"row", "n", "edges", "Δ", "work", "conflicts", "incr rounds", "incr ms", "full rounds", "full ms", "rounds ratio", "wall ratio"},
	}
	for _, r := range rep.MutationRows {
		t.AddRow("churn/"+r.Family, itoa(r.N), itoa(r.Edges), itoa(r.Delta),
			fmt.Sprintf("%d ops (%di/%dd/%da)", r.Mutations, r.Inserts, r.Deletes, r.NodeAdds),
			itoa(r.Conflicts), itoa(r.IncrRounds), f2(r.IncrMillis),
			itoa(r.FullRounds), f2(r.FullMillis), f4(r.RoundsRatio), f4(r.WallRatio))
	}
	for _, r := range rep.FaultRows {
		outcome := "unrecoverable"
		if r.Verified {
			outcome = fmt.Sprintf("healed %d/%d", r.Repaired, r.Conflicts)
		}
		t.AddRow("fault/"+r.Plan, itoa(r.N), "-", itoa(r.Delta), outcome, itoa(r.Conflicts),
			"-", "-", itoa(r.Rounds), f2(r.Millis), "-", "-")
	}
	t.AddNote("GOMAXPROCS=%d, quick=%v. Churn rows: a 1%% mutation stream (80%% degree-capped inserts, 15%% degree-guarded deletes, "+
		"5%% node arrivals) runs through the live network churn API, then the coloring is restored incrementally "+
		"(ConflictSet scan + batched Brooks repair, charged sched+exec rounds) and from scratch (full pipeline). "+
		"Ratios < 1 mean the incremental path wins; the -strict gate requires both at the largest n. Fault rows: "+
		"ColorUnderFaults under bounded fault bursts — every run must heal to a verified coloring or return a typed "+
		"ErrUnrecoverable; the gate requires at least one plan to heal.", rep.GoMaxProcs, rep.Quick)
	return t
}

// WriteJSON serializes the report (BENCH_churn.json).
func (rep *ChurnReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadChurnReport parses a report previously written by WriteJSON.
func ReadChurnReport(r io.Reader) (*ChurnReport, error) {
	var rep ChurnReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("churn report: %w", err)
	}
	if rep.Schema != ChurnSchema {
		return nil, fmt.Errorf("churn report: unknown schema %q", rep.Schema)
	}
	return &rep, nil
}

// ChurnGate checks the report's central claims: at the largest measured n
// the incremental path must beat the full pipeline on charged rounds AND
// wall time, and at least one fault plan must heal to a verified coloring.
func ChurnGate(rep *ChurnReport) error {
	var top *ChurnMutationRow
	for i := range rep.MutationRows {
		r := &rep.MutationRows[i]
		if top == nil || r.N > top.N {
			top = r
		}
	}
	if top == nil {
		return fmt.Errorf("churn gate: report has no mutation rows")
	}
	if top.IncrRounds >= top.FullRounds {
		return fmt.Errorf("churn gate: n=%d incremental rounds %d did not beat full pipeline %d",
			top.N, top.IncrRounds, top.FullRounds)
	}
	if top.IncrMillis >= top.FullMillis {
		return fmt.Errorf("churn gate: n=%d incremental wall %.2fms did not beat full pipeline %.2fms",
			top.N, top.IncrMillis, top.FullMillis)
	}
	healed := 0
	for _, r := range rep.FaultRows {
		if r.Verified {
			healed++
		}
	}
	if len(rep.FaultRows) == 0 || healed == 0 {
		return fmt.Errorf("churn gate: no fault plan healed to a verified coloring (%d rows)", len(rep.FaultRows))
	}
	return nil
}

// E16Churn adapts ChurnRecovery to the experiment-runner signature.
func E16Churn(cfg Config) *Table {
	return ChurnRecovery(cfg).Table()
}
