package exp

// E14: cache-locality relabeling ablation. E12 showed rr4 delivery is
// cache-miss bound: with random node labels every delivered message
// lands in a cold cache line. NewNetwork now relabels nodes internally
// (reverse Cuthill–McKee, graph.LocalityOrder) so the engine tables are
// walked near-sequentially; E14 measures exactly that effect by running
// the E12 heartbeat workload with relabeling on and off (the
// local.SetRelabel ablation hook) across graph families whose external
// labelings range from already-sequential (path, grid) to fully random
// (rr4). cmd/benchsuite serializes the report (BENCH_locality.json) and
// LocalityGate turns it into a CI check: relabeling must never lose to
// the ablation on rr4 at the largest measured scale.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

// LocalitySchema identifies the BENCH_locality.json layout.
const LocalitySchema = "deltacolor/bench-locality/v1"

// LocalityRow is one (family, n, relabel) measurement.
type LocalityRow struct {
	Family         string  `json:"family"`
	N              int     `json:"n"`
	Edges          int     `json:"edges"`
	Delta          int     `json:"delta"`
	Relabel        bool    `json:"relabel"`
	Rounds         int     `json:"rounds"`
	BuildMillis    float64 `json:"build_ms"` // NewNetwork incl. the order pass
	RunMillis      float64 `json:"run_ms"`   // full Run wall time, 1 worker
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// LocalityReport is the full E14 output, serialized to BENCH_locality.json.
type LocalityReport struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Seed       int64         `json:"seed"`
	Rows       []LocalityRow `json:"rows"`
}

// localityCase builds one E14 graph instance. The rr4 labels are random
// by construction; path and grid are generated with sequential/row-major
// labels, so they measure the relabeling pass's overhead on inputs that
// are already local. A grid case rounds n to the nearest square.
func localityCase(family string, n int, seed int64) *graph.G {
	switch family {
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side)
	default:
		return runtimeCase(family, n, seed)
	}
}

// LocalityAblation measures heartbeat throughput with relabeling off and
// on for every (family, n) case, single-worker for host comparability.
// The package-wide relabel default is restored before returning.
func LocalityAblation(cfg Config) *LocalityReport {
	cfg.install()
	prev := local.RelabelEnabled()
	defer local.SetRelabel(prev)
	rep := &LocalityReport{
		Schema:     LocalitySchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
	}
	type c struct {
		family string
		n      int
	}
	var cases []c
	rounds := 16
	sizes := []int{10_000, 100_000, 1_000_000}
	if cfg.Quick {
		// Quick mode still reaches n = 100k: below that the whole working
		// set fits in cache, relabeling measures as noise, and the gate
		// would flake. At 100k the rr4 effect is reliably >1.1x.
		rounds = 8
		sizes = []int{10_000, 100_000}
	}
	for _, n := range sizes {
		cases = append(cases, c{"path", n}, c{"rr4", n}, c{"grid", n})
	}
	for _, tc := range cases {
		g := localityCase(tc.family, tc.n, cfg.Seed)
		for _, rl := range []bool{false, true} {
			local.SetRelabel(rl)
			t0 := time.Now()
			net := local.NewNetwork(g, cfg.Seed)
			build := time.Since(t0)
			net.SetWorkers(1)

			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			local.RunStepped(net, heartbeat(rounds))
			runtime.ReadMemStats(&after)

			st := net.LastRunStats()
			row := LocalityRow{
				Family:       tc.family,
				N:            g.N(), // actual size (grid rounds n to a square)
				Edges:        g.M(),
				Delta:        g.MaxDegree(),
				Relabel:      rl,
				Rounds:       st.Rounds,
				BuildMillis:  float64(build.Microseconds()) / 1000,
				RunMillis:    float64(st.WallTime.Microseconds()) / 1000,
				RoundsPerSec: st.RoundsPerSec,
			}
			if st.Rounds > 0 {
				row.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / float64(st.Rounds)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// Table renders the report in the E1–E13 table format, pairing each
// relabel-on row with its ablation to show the speedup.
func (rep *LocalityReport) Table() *Table {
	t := &Table{
		ID:     "E14",
		Title:  "Cache-locality relabeling ablation (E12 heartbeat workload, relabel off vs on)",
		Header: []string{"family", "n", "edges", "relabel", "build ms", "run ms", "rounds/s", "allocs/round", "speedup"},
	}
	off := map[string]LocalityRow{}
	for _, r := range rep.Rows {
		key := fmt.Sprintf("%s/%d", r.Family, r.N)
		if !r.Relabel {
			off[key] = r
		}
		speed := "-"
		if r.Relabel {
			if o, ok := off[key]; ok && o.RoundsPerSec > 0 {
				speed = fmt.Sprintf("%.2fx", r.RoundsPerSec/o.RoundsPerSec)
			}
		}
		t.AddRow(r.Family, itoa(r.N), itoa(r.Edges), fmt.Sprintf("%v", r.Relabel),
			f2(r.BuildMillis), f2(r.RunMillis), f2(r.RoundsPerSec),
			fmt.Sprintf("%.0f", r.AllocsPerRound), speed)
	}
	t.AddNote("GOMAXPROCS=%d, quick=%v; one worker throughout. relabel=false ablates the reverse Cuthill–McKee "+
		"internal ordering (local.SetRelabel), so the off/on pairs isolate the cache-locality effect: rr4's external "+
		"labels are random (every delivery a cold line without relabeling), path/grid are already near-sequential "+
		"and bound the pass's overhead.", rep.GoMaxProcs, rep.Quick)
	return t
}

// WriteJSON serializes the report (BENCH_locality.json).
func (rep *LocalityReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadLocalityReport parses a report previously written by WriteJSON.
func ReadLocalityReport(r io.Reader) (*LocalityReport, error) {
	var rep LocalityReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("locality report: %w", err)
	}
	if rep.Schema != LocalitySchema {
		return nil, fmt.Errorf("locality report: unknown schema %q", rep.Schema)
	}
	return &rep, nil
}

// localityGateTolerance absorbs run-to-run noise in the gate: at quick
// scale the whole working set can fit in cache, so "must not regress" is
// enforced with a 10% measurement margin rather than a strict >=.
const localityGateTolerance = 0.10

// LocalityGate checks the report's central claim: on the rr4 family at
// the largest measured n, relabeling on must not deliver fewer rounds/s
// than the ablation (modulo the noise tolerance). It returns an error
// describing the regression, or when the report carries no rr4 pair at
// all — a vacuous gate would defeat the CI step.
func LocalityGate(rep *LocalityReport) error {
	var on, off *LocalityRow
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if r.Family != "rr4" {
			continue
		}
		if r.Relabel {
			if on == nil || r.N > on.N {
				on = r
			}
		} else {
			if off == nil || r.N > off.N {
				off = r
			}
		}
	}
	if on == nil || off == nil || on.N != off.N {
		return fmt.Errorf("locality gate: report has no rr4 relabel-on/off pair at a common n")
	}
	floor := off.RoundsPerSec * (1 - localityGateTolerance)
	if on.RoundsPerSec < floor {
		return fmt.Errorf("locality gate: rr4 n=%d relabel-on %.2f rounds/s regressed vs relabel-off %.2f (floor %.2f at -%.0f%%)",
			on.N, on.RoundsPerSec, off.RoundsPerSec, floor, localityGateTolerance*100)
	}
	return nil
}

// E14Locality adapts LocalityAblation to the experiment-runner signature.
func E14Locality(cfg Config) *Table {
	return LocalityAblation(cfg).Table()
}
