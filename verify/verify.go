// Package verify bundles the output checkers shared by tests, examples and
// the experiment harness.
package verify

import (
	"fmt"

	"deltacolor/graph"
)

// DeltaColoring checks that colors is a total proper coloring of g using
// only colors in [0, delta).
func DeltaColoring(g *graph.G, colors []int, delta int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("delta coloring: %d colors for %d nodes", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		c := colors[v]
		if c < 0 || c >= delta {
			return fmt.Errorf("delta coloring: node %d has color %d outside [0,%d)", v, c, delta)
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] == c {
				return fmt.Errorf("delta coloring: edge (%d,%d) monochromatic (%d)", v, u, c)
			}
		}
	}
	return nil
}

// PartialColoring checks properness of a partial coloring (entries < 0
// mean uncolored) with colors in [0, delta).
func PartialColoring(g *graph.G, colors []int, delta int) error {
	for v := 0; v < g.N(); v++ {
		c := colors[v]
		if c < 0 {
			continue
		}
		if c >= delta {
			return fmt.Errorf("partial coloring: node %d has color %d >= %d", v, c, delta)
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] == c {
				return fmt.Errorf("partial coloring: edge (%d,%d) monochromatic (%d)", v, u, c)
			}
		}
	}
	return nil
}

// CountColors returns the number of distinct colors used (ignoring
// uncolored entries).
func CountColors(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}
