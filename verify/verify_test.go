package verify

import (
	"testing"

	"deltacolor/graph"
)

func triangleWithTail() *graph.G {
	// 0-1-2 triangle, 2-3 tail. Δ = 3.
	g := graph.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(0, 2)
	g.MustEdge(2, 3)
	return g
}

func TestDeltaColoringAccepts(t *testing.T) {
	g := triangleWithTail()
	if err := DeltaColoring(g, []int{0, 1, 2, 0}, 3); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
}

func TestDeltaColoringRejectsMonochromaticEdge(t *testing.T) {
	g := triangleWithTail()
	if err := DeltaColoring(g, []int{0, 1, 2, 2}, 3); err == nil {
		t.Fatal("monochromatic edge 2-3 accepted")
	}
}

func TestDeltaColoringRejectsOutOfRange(t *testing.T) {
	g := triangleWithTail()
	if err := DeltaColoring(g, []int{0, 1, 3, 0}, 3); err == nil {
		t.Fatal("color 3 accepted with delta=3")
	}
	if err := DeltaColoring(g, []int{0, 1, -1, 0}, 3); err == nil {
		t.Fatal("uncolored node accepted by total checker")
	}
}

func TestDeltaColoringRejectsWrongLength(t *testing.T) {
	g := triangleWithTail()
	if err := DeltaColoring(g, []int{0, 1, 2}, 3); err == nil {
		t.Fatal("short color slice accepted")
	}
}

func TestPartialColoringAllowsUncolored(t *testing.T) {
	g := triangleWithTail()
	if err := PartialColoring(g, []int{0, -1, 2, -1}, 3); err != nil {
		t.Fatalf("valid partial coloring rejected: %v", err)
	}
	// Conflicts between colored nodes are still caught.
	if err := PartialColoring(g, []int{0, -1, 0, -1}, 3); err == nil {
		t.Fatal("monochromatic edge 0-2 accepted by partial checker")
	}
	// Out-of-range colors are still caught.
	if err := PartialColoring(g, []int{5, -1, -1, -1}, 3); err == nil {
		t.Fatal("color 5 accepted with delta=3")
	}
}

func TestCountColors(t *testing.T) {
	tests := []struct {
		colors []int
		want   int
	}{
		{nil, 0},
		{[]int{-1, -1}, 0},
		{[]int{0, 0, 0}, 1},
		{[]int{0, 1, 2, 1, -1}, 3},
	}
	for _, tc := range tests {
		if got := CountColors(tc.colors); got != tc.want {
			t.Fatalf("CountColors(%v) = %d, want %d", tc.colors, got, tc.want)
		}
	}
}
