package deltacolor_test

import (
	"errors"
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

func TestColorRandomizedRegular(t *testing.T) {
	for _, d := range []int{3, 4, 6} {
		rng := rand.New(rand.NewSource(int64(d)))
		g := gen.MustRandomRegular(rng, 256, d)
		res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: int64(d)})
		if err != nil {
			t.Fatalf("Δ=%d: %v", d, err)
		}
		if err := verify.DeltaColoring(g, res.Colors, d); err != nil {
			t.Fatalf("Δ=%d: %v", d, err)
		}
		if res.Rounds <= 0 {
			t.Fatalf("Δ=%d: non-positive rounds %d", d, res.Rounds)
		}
		t.Logf("Δ=%d rounds=%d repairs=%d", d, res.Rounds, res.Repairs)
	}
}

func TestColorDeterministicRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.MustRandomRegular(rng, 128, 4)
	res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgDeterministic, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, res.Colors, 4); err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds=%d repairs=%d", res.Rounds, res.Repairs)
}

func TestColorBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.MustRandomRegular(rng, 128, 4)
	res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgBaseline, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, res.Colors, 4); err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds=%d", res.Rounds)
}

func TestColorRejectsClique(t *testing.T) {
	g := gen.Complete(5)
	_, err := deltacolor.Color(g, deltacolor.Options{})
	if !errors.Is(err, deltacolor.ErrComplete) {
		t.Fatalf("want ErrComplete, got %v", err)
	}
}

func TestColorRejectsOddCycle(t *testing.T) {
	g := gen.Cycle(7)
	_, err := deltacolor.Color(g, deltacolor.Options{})
	if !errors.Is(err, deltacolor.ErrDegreeTooSmall) {
		t.Fatalf("want ErrDegreeTooSmall, got %v", err)
	}
}
