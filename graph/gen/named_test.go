package gen

import (
	"math/rand"
	"testing"
)

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("n=%d m=%d, want 10, 15", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 3 {
			t.Fatalf("node %d has degree %d, want 3", v, g.Deg(v))
		}
	}
	if gi := g.Girth(); gi != 5 {
		t.Fatalf("girth = %d, want 5", gi)
	}
	if !g.IsConnected() {
		t.Fatal("not connected")
	}
}

func TestCirculant(t *testing.T) {
	g := MustCirculant(12, []int{1, 3})
	if g.N() != 12 {
		t.Fatalf("n = %d, want 12", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatalf("node %d has degree %d, want 4", v, g.Deg(v))
		}
	}
	// Jump n/2 halves the degree contribution.
	h := MustCirculant(8, []int{4})
	for v := 0; v < h.N(); v++ {
		if h.Deg(v) != 1 {
			t.Fatalf("C_8(4): node %d degree %d, want 1 (perfect matching)", v, h.Deg(v))
		}
	}
}

func TestCirculantErrors(t *testing.T) {
	if _, err := Circulant(2, []int{1}); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := Circulant(10, []int{0}); err == nil {
		t.Fatal("jump 0 accepted")
	}
	if _, err := Circulant(10, []int{6}); err == nil {
		t.Fatal("jump > n/2 accepted")
	}
}

func TestRandomBipartiteRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 3, 5} {
		g, err := RandomBipartiteRegular(rng, 32, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Deg(v) != d {
				t.Fatalf("d=%d: node %d degree %d", d, v, g.Deg(v))
			}
		}
		// Bipartite: no edge within a side.
		n := g.N() / 2
		for _, e := range g.Edges() {
			if (e[0] < n) == (e[1] < n) {
				t.Fatalf("d=%d: edge %v within one side", d, e)
			}
		}
	}
}

func TestHighGirthRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := HighGirthRegular(rng, 128, 3, 5)
	if err != nil {
		t.Fatalf("generation failed: %v", err)
	}
	if gi := g.Girth(); gi >= 3 && gi <= 5 {
		t.Fatalf("girth = %d, want > 5", gi)
	}
	// Degrees preserved by the swaps.
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 3 {
			t.Fatalf("node %d degree %d, want 3", v, g.Deg(v))
		}
	}
}

func TestHighGirthPreservesSimplicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := HighGirthRegular(rng, 64, 4, 4)
	if err != nil {
		t.Skipf("girth target infeasible at this size: %v", err)
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		if e[0] == e[1] {
			t.Fatalf("self loop %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}
