package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCycle(t *testing.T) {
	g := Cycle(5)
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.IsOddCycle() {
		t.Fatal("C5 should be odd cycle")
	}
}

func TestPathGen(t *testing.T) {
	g := Path(6)
	if g.M() != 5 || !g.IsPath() {
		t.Fatal("path wrong")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 || !g.IsClique() {
		t.Fatal("K6 wrong")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K3,4: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Fatal("bipartition broken")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid maxdeg %d", g.MaxDegree())
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatalf("torus node %d degree %d", v, g.Deg(v))
		}
	}
	g2 := Torus(2, 3)
	if g2.N() != 6 {
		t.Fatal("2x3 torus size")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatal("Q4 is 4-regular")
		}
	}
	if g.Girth() != 4 {
		t.Fatalf("Q4 girth %d", g.Girth())
	}
}

func TestCompleteTree(t *testing.T) {
	g := CompleteTree(3, 2) // 1 + 3 + 9 nodes
	if g.N() != 13 || g.M() != 12 {
		t.Fatalf("tree n=%d m=%d", g.N(), g.M())
	}
	if g.Deg(0) != 3 {
		t.Fatal("root degree")
	}
	if !g.IsConnected() {
		t.Fatal("tree connected")
	}
}

func TestRandomTree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := RandomTree(rng, n)
		if g.N() != n || g.M() != n-1 {
			t.Fatalf("seed=%d: n=%d m=%d", seed, g.N(), g.M())
		}
		if !g.IsConnected() {
			t.Fatalf("seed=%d: tree disconnected", seed)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{16, 3}, {64, 4}, {64, 6}, {100, 8}, {32, 5}} {
		rng := rand.New(rand.NewSource(int64(tc.n*100 + tc.d)))
		g, err := RandomRegular(rng, tc.n, tc.d)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Deg(v) != tc.d {
				t.Fatalf("n=%d d=%d: node %d has degree %d", tc.n, tc.d, v, g.Deg(v))
			}
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRegular(rng, 5, 3); err == nil {
		t.Fatal("odd n*d should error")
	}
	if _, err := RandomRegular(rng, 4, 4); err == nil {
		t.Fatal("d >= n should error")
	}
	g, err := RandomRegular(rng, 4, 0)
	if err != nil || g.M() != 0 {
		t.Fatal("0-regular should be empty")
	}
}

// Property: random regular graphs are simple and exactly d-regular.
func TestRandomRegularProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + 2*rng.Intn(40)
		d := 3 + rng.Intn(5)
		if n*d%2 == 1 {
			n++
		}
		g, err := RandomRegular(rng, n, d)
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if g.Deg(v) != d {
				return false
			}
			seen := map[int]bool{}
			for _, u := range g.Neighbors(v) {
				if u == v || seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGNPMaxDeg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GNPMaxDeg(rng, 200, 0.05, 6)
	if g.MaxDegree() > 6 {
		t.Fatalf("max degree %d > cap", g.MaxDegree())
	}
	if g.M() == 0 {
		t.Fatal("expected some edges")
	}
}

func TestGallaiTreeGenerator(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := GallaiTree(rng, 6, 4)
		if !g.IsConnected() {
			t.Fatalf("seed=%d: disconnected", seed)
		}
		blocks, _ := g.BiconnectedComponents()
		for _, b := range blocks {
			if len(b.Nodes) <= 2 {
				continue
			}
			isClique := g.IsCliqueSet(b.Nodes)
			isCyc, odd := g.IsInducedCycleSet(b.Nodes)
			if !isClique && !(isCyc && odd) {
				t.Fatalf("seed=%d: block %v is neither clique nor odd cycle", seed, b.Nodes)
			}
		}
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(4, 3)
	if g.N() != 10 {
		t.Fatalf("n=%d", g.N())
	}
	// shared nodes have degree 2(k-1)=6, others k-1=3
	if g.MaxDegree() != 6 || g.MinDegree() != 3 {
		t.Fatalf("degrees %d/%d", g.MaxDegree(), g.MinDegree())
	}
	blocks, _ := g.BiconnectedComponents()
	if len(blocks) != 3 {
		t.Fatalf("blocks=%d", len(blocks))
	}
}

func TestNearRegularWithDCC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := NearRegularWithDCC(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 36 {
		t.Fatalf("n=%d", g.N())
	}
	// the appended diamond must exist
	if !g.HasEdge(32, 34) {
		t.Fatal("chord missing")
	}
}
