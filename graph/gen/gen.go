// Package gen builds the synthetic graph families used as workloads in the
// experiments: regular random graphs (the main workload for all round-count
// experiments), classic named families (cycles, cliques, grids, hypercubes,
// trees), and adversarial families (Gallai trees, near-regular gadgets)
// exercising the structural lemmas.
package gen

import (
	"fmt"
	"math/rand"

	"deltacolor/graph"
)

// Cycle returns the cycle C_n (n >= 3).
func Cycle(n int) *graph.G {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the path P_n on n nodes.
func Path(n int) *graph.G {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(i, i+1)
	}
	return g
}

// Complete returns the clique K_n.
func Complete(n int) *graph.G {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: left nodes 0..a-1, right a..a+b-1.
func CompleteBipartite(a, b int) *graph.G {
	g := graph.New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.MustEdge(i, a+j)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.G {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols toroidal grid (4-regular when both >= 3).
func Torus(rows, cols int) *graph.G {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 2 || (cols == 2 && c == 0) {
				g.MustEdge(id(r, c), id(r, (c+1)%cols))
			}
			if rows > 2 || (rows == 2 && r == 0) {
				g.MustEdge(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes.
func Hypercube(d int) *graph.G {
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				g.MustEdge(v, w)
			}
		}
	}
	return g
}

// CompleteTree returns the complete rooted tree with branching factor b and
// given depth (depth 0 = single node). Internal nodes have degree b+1
// (except the root, with degree b).
func CompleteTree(b, depth int) *graph.G {
	// Count nodes.
	n, layer := 1, 1
	for d := 0; d < depth; d++ {
		layer *= b
		n += layer
	}
	g := graph.New(n)
	// BFS-number the tree: children of node i are consecutive.
	next := 1
	queue := []struct{ id, d int }{{0, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d == depth {
			continue
		}
		for c := 0; c < b; c++ {
			g.MustEdge(cur.id, next)
			queue = append(queue, struct{ id, d int }{next, cur.d + 1})
			next++
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// random Prüfer sequence.
func RandomTree(rng *rand.Rand, n int) *graph.G {
	g := graph.New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.MustEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = rng.Intn(n)
		deg[prufer[i]]++
	}
	// Standard decoding.
	leafPtr := 0
	for deg[leafPtr] != 1 {
		leafPtr++
	}
	leaf := leafPtr
	for _, v := range prufer {
		g.MustEdge(leaf, v)
		deg[v]--
		if deg[v] == 1 && v < leafPtr {
			leaf = v
		} else {
			leafPtr++
			for deg[leafPtr] != 1 {
				leafPtr++
			}
			leaf = leafPtr
		}
	}
	// Remaining two nodes of degree 1: leaf and n-1.
	g.MustEdge(leaf, n-1)
	return g
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// configuration model with edge-swap repair: a random stub matching is
// drawn, then self-loops and parallel edges are removed by swapping them
// against random good edges (double edge swaps preserve the degree
// sequence). Requires n*d even, d < n.
func RandomRegular(rng *rand.Rand, n, d int) (*graph.G, error) {
	if d >= n {
		return nil, fmt.Errorf("random regular: need d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("random regular: n*d must be even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return graph.New(n), nil
	}
	const maxRestarts = 50
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := configurationWithRepair(rng, n, d); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("random regular: repair failed after %d restarts (n=%d d=%d)", maxRestarts, n, d)
}

func configurationWithRepair(rng *rand.Rand, n, d int) (*graph.G, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// Multigraph as an edge list with an O(1) multiplicity index.
	m := len(stubs) / 2
	edges := make([][2]int, m)
	cnt := make(map[[2]int]int, m)
	norm := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i := 0; i < m; i++ {
		edges[i] = [2]int{stubs[2*i], stubs[2*i+1]}
		cnt[norm(edges[i][0], edges[i][1])]++
	}
	isBad := func(e [2]int) bool { return e[0] == e[1] || cnt[norm(e[0], e[1])] > 1 }
	// Repair loop: pick a bad edge (a,b) and a random edge (x,y); the
	// degree-preserving swap (a,b),(x,y) -> (a,x),(b,y) is accepted when
	// the two new edges are simple and fresh.
	bad := make([]int, 0, m)
	for i, e := range edges {
		if isBad(e) {
			bad = append(bad, i)
		}
	}
	budget := 400 * (len(bad) + 16)
	for len(bad) > 0 && budget > 0 {
		badIdx := bad[len(bad)-1]
		if !isBad(edges[badIdx]) {
			bad = bad[:len(bad)-1]
			continue
		}
		swapped := false
		for tries := 0; tries < 100 && budget > 0; tries++ {
			budget--
			j := rng.Intn(m)
			if j == badIdx {
				continue
			}
			a, b := edges[badIdx][0], edges[badIdx][1]
			x, y := edges[j][0], edges[j][1]
			if rng.Intn(2) == 0 {
				x, y = y, x
			}
			if a == x || b == y || cnt[norm(a, x)] > 0 || cnt[norm(b, y)] > 0 {
				continue
			}
			cnt[norm(a, b)]--
			cnt[norm(x, y)]--
			edges[badIdx] = [2]int{a, x}
			edges[j] = [2]int{b, y}
			cnt[norm(a, x)]++
			cnt[norm(b, y)]++
			swapped = true
			break
		}
		if !swapped {
			return nil, false
		}
		if !isBad(edges[badIdx]) {
			bad = bad[:len(bad)-1]
		}
	}
	if len(bad) > 0 {
		return nil, false
	}
	g := graph.New(n)
	for _, e := range edges {
		g.MustEdge(e[0], e[1])
	}
	return g, true
}

// MustRandomRegular is RandomRegular that panics on error; for tests and
// generators where parameters are statically valid.
func MustRandomRegular(rng *rand.Rand, n, d int) *graph.G {
	g, err := RandomRegular(rng, n, d)
	if err != nil {
		panic(err)
	}
	return g
}

// GNPMaxDeg samples G(n, p) and then deletes edges at random from any node
// exceeding maxDeg, yielding a graph with maximum degree <= maxDeg.
func GNPMaxDeg(rng *rand.Rand, n int, p float64, maxDeg int) *graph.G {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p && g.Deg(u) < maxDeg && g.Deg(v) < maxDeg {
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

// GallaiTree builds a random Gallai tree: a connected graph whose blocks
// are all cliques or odd cycles. blocks is the number of blocks to chain;
// each block is a K_k (k in [2, maxClique]) or an odd cycle (length in
// {3,5,7}), attached at a random existing node.
func GallaiTree(rng *rand.Rand, blocks, maxClique int) *graph.G {
	if maxClique < 2 {
		maxClique = 2
	}
	type blockSpec struct {
		clique bool
		size   int
	}
	specs := make([]blockSpec, blocks)
	total := 1
	for i := range specs {
		if rng.Intn(2) == 0 {
			k := 2 + rng.Intn(maxClique-1)
			specs[i] = blockSpec{clique: true, size: k}
		} else {
			l := 3 + 2*rng.Intn(3)
			specs[i] = blockSpec{clique: false, size: l}
		}
		total += specs[i].size - 1
	}
	g := graph.New(total)
	used := 1
	attach := []int{0}
	for _, s := range specs {
		at := attach[rng.Intn(len(attach))]
		ids := make([]int, s.size)
		ids[0] = at
		for j := 1; j < s.size; j++ {
			ids[j] = used
			used++
			attach = append(attach, ids[j])
		}
		if s.clique {
			for a := 0; a < s.size; a++ {
				for b := a + 1; b < s.size; b++ {
					g.MustEdge(ids[a], ids[b])
				}
			}
		} else {
			for a := 0; a < s.size; a++ {
				g.MustEdge(ids[a], ids[(a+1)%s.size])
			}
		}
	}
	return g
}

// CliqueChain returns a "chain of cliques": c copies of K_k where
// consecutive cliques share exactly one node. A canonical Gallai tree with
// Δ = 2(k-1) at shared nodes.
func CliqueChain(k, c int) *graph.G {
	if c < 1 {
		return graph.New(0)
	}
	n := c*(k-1) + 1
	g := graph.New(n)
	for b := 0; b < c; b++ {
		base := b * (k - 1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.MustEdge(base+i, base+j)
			}
		}
	}
	return g
}

// NearRegularWithDCC glues an even cycle with a chord (a canonical small
// degree-choosable component) onto a random d-regular graph, so that DCC
// detection has something to find.
func NearRegularWithDCC(rng *rand.Rand, n, d int) (*graph.G, error) {
	base, err := RandomRegular(rng, n, d)
	if err != nil {
		return nil, err
	}
	// Append a 4-cycle with a chord (K_4 minus an edge), attached by one edge.
	g := graph.New(n + 4)
	for _, e := range base.Edges() {
		g.MustEdge(e[0], e[1])
	}
	a, b, c, dd := n, n+1, n+2, n+3
	g.MustEdge(a, b)
	g.MustEdge(b, c)
	g.MustEdge(c, dd)
	g.MustEdge(dd, a)
	g.MustEdge(a, c)
	g.MustEdge(b, rng.Intn(n))
	return g, nil
}
