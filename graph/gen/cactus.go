package gen

import "deltacolor/graph"

// CliqueCactus returns a depth-layered tree of K_k cliques in which every
// node of a clique at depth < depth spawns exactly one child clique
// through itself. Interior nodes therefore lie in exactly two k-cliques
// and have degree Δ = 2(k-1); only the deepest layer's nodes have degree
// k-1.
//
// This family is the canonical positive instance for the expansion lemmas
// (E5): it is a Gallai tree, hence free of degree-choosable components at
// every radius, while interior balls are Δ-regular — precisely the
// precondition of Lemma 15 — and its spheres grow like (k-1)^t, beating
// the (Δ-1)^(t/2) bound non-trivially.
func CliqueCactus(k, depth int) *graph.G {
	if k < 2 {
		return graph.New(0)
	}
	// Count nodes: root clique has k nodes; every node of depth < depth
	// spawns k-1 fresh nodes.
	type frontierNode struct{ id int }
	total := k
	layer := k
	for d := 0; d < depth; d++ {
		grown := layer * (k - 1)
		total += grown
		layer = grown
	}
	g := graph.New(total)
	next := 0
	alloc := func(c int) []int {
		out := make([]int, c)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	addClique := func(nodes []int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				g.MustEdge(nodes[i], nodes[j])
			}
		}
	}
	root := alloc(k)
	addClique(root)
	frontier := root
	for d := 0; d < depth; d++ {
		var nextFrontier []int
		for _, v := range frontier {
			fresh := alloc(k - 1)
			addClique(append([]int{v}, fresh...))
			nextFrontier = append(nextFrontier, fresh...)
		}
		frontier = nextFrontier
	}
	return g
}
