package gen

import (
	"testing"
)

// TestCatalogInvariants checks every named graph against its published
// node count, edge count, regularity, girth and diameter — ground truth
// for the graph algorithms (Girth, Diameter) at the same time.
func TestCatalogInvariants(t *testing.T) {
	for _, ng := range Catalog() {
		t.Run(ng.Name, func(t *testing.T) {
			g := ng.Build()
			if g.N() != ng.N {
				t.Fatalf("n = %d, want %d", g.N(), ng.N)
			}
			if g.M() != ng.M {
				t.Fatalf("m = %d, want %d", g.M(), ng.M)
			}
			if ng.Degree >= 0 {
				for v := 0; v < g.N(); v++ {
					if g.Deg(v) != ng.Degree {
						t.Fatalf("node %d degree %d, want %d-regular", v, g.Deg(v), ng.Degree)
					}
				}
			}
			if !g.IsConnected() {
				t.Fatal("not connected")
			}
			if got := g.Girth(); got != ng.Girth {
				t.Fatalf("girth = %d, want %d", got, ng.Girth)
			}
			if got := g.Diameter(); got != ng.Diameter {
				t.Fatalf("diameter = %d, want %d", got, ng.Diameter)
			}
		})
	}
}

// TestCatalogBipartiteness: girth-6+ LCF graphs in the catalog with
// chromatic number 2 must actually be bipartite, and the chromatic-3
// graphs must contain an odd cycle.
func TestCatalogBipartiteness(t *testing.T) {
	for _, ng := range Catalog() {
		t.Run(ng.Name, func(t *testing.T) {
			g := ng.Build()
			bip := isBipartite(g)
			if want := ng.Chromatic == 2; bip != want {
				t.Fatalf("bipartite = %v, want %v (chromatic %d)", bip, want, ng.Chromatic)
			}
		})
	}
}

func isBipartite(g interface {
	N() int
	Neighbors(int) []int
}) bool {
	side := make([]int, g.N())
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < g.N(); s++ {
		if side[s] >= 0 {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if side[u] < 0 {
					side[u] = 1 - side[v]
					queue = append(queue, u)
				} else if side[u] == side[v] {
					return false
				}
			}
		}
	}
	return true
}
