package gen

import "testing"

func TestCliqueCactusDegrees(t *testing.T) {
	for _, k := range []int{3, 4} {
		g := CliqueCactus(k, 3)
		delta := 2 * (k - 1)
		if got := g.MaxDegree(); got != delta {
			t.Fatalf("k=%d: Δ=%d, want %d", k, got, delta)
		}
		interior, leaves := 0, 0
		for v := 0; v < g.N(); v++ {
			switch g.Deg(v) {
			case delta:
				interior++
			case k - 1:
				leaves++
			default:
				t.Fatalf("k=%d: node %d has degree %d, want %d or %d", k, v, g.Deg(v), delta, k-1)
			}
		}
		if interior == 0 || leaves == 0 {
			t.Fatalf("k=%d: interior=%d leaves=%d, want both > 0", k, interior, leaves)
		}
		if !g.IsConnected() {
			t.Fatalf("k=%d: not connected", k)
		}
	}
}

func TestCliqueCactusSize(t *testing.T) {
	// k=3, depth=2: 3 + 3·2 + 6·2 = 21 nodes.
	g := CliqueCactus(3, 2)
	if g.N() != 21 {
		t.Fatalf("n=%d, want 21", g.N())
	}
	// Degenerate parameters.
	if CliqueCactus(1, 3).N() != 0 {
		t.Fatal("k=1 should produce the empty graph")
	}
	if g := CliqueCactus(3, 0); g.N() != 3 || g.M() != 3 {
		t.Fatalf("depth=0: n=%d m=%d, want 3, 3 (one triangle)", g.N(), g.M())
	}
}

func TestCliqueCactusIsGallaiLike(t *testing.T) {
	// Every block is a clique: biconnected components must all be cliques.
	g := CliqueCactus(3, 3)
	blocks, _ := g.BiconnectedComponents()
	for _, b := range blocks {
		if !g.IsCliqueSet(b.Nodes) {
			t.Fatalf("block %v is not a clique", b.Nodes)
		}
	}
}
