package gen

import (
	"fmt"
	"math/rand"

	"deltacolor/graph"
)

// Petersen returns the Petersen graph: 3-regular, girth 5, the classic
// non-trivial Δ = 3 coloring instance (it is 3-chromatic but not
// bipartite, and contains no small degree-choosable-free shortcuts).
func Petersen() *graph.G {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.MustEdge(i, (i+1)%5)     // outer cycle
		g.MustEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.MustEdge(i, 5+i)         // spokes
	}
	return g
}

// Circulant returns the circulant graph C_n(jumps): node i is adjacent to
// i±j (mod n) for each jump j. Regular of degree 2·|jumps| (or less when a
// jump equals n/2). Girth and local structure are controlled by the jump
// set, making circulants a tunable family for the structural experiments.
func Circulant(n int, jumps []int) (*graph.G, error) {
	if n < 3 {
		return nil, fmt.Errorf("circulant: n=%d < 3", n)
	}
	g := graph.New(n)
	for _, j := range jumps {
		if j <= 0 || j > n/2 {
			return nil, fmt.Errorf("circulant: jump %d outside [1, n/2]", j)
		}
		for i := 0; i < n; i++ {
			u, v := i, (i+j)%n
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustEdge(u, v)
		}
	}
	return g, nil
}

// MustCirculant is Circulant for statically valid parameters.
func MustCirculant(n int, jumps []int) *graph.G {
	g, err := Circulant(n, jumps)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomBipartiteRegular returns a bipartite d-regular graph on 2n nodes
// (left 0..n-1, right n..2n-1) built from d random perfect matchings with
// collision retries. Bipartite regular graphs are the easy side of
// Δ-coloring (χ = 2) and make good sanity workloads: every algorithm must
// still use only Δ colors, but no hard structure exists.
func RandomBipartiteRegular(rng *rand.Rand, n, d int) (*graph.G, error) {
	if d < 1 || d > n {
		return nil, fmt.Errorf("bipartite regular: d=%d outside [1, %d]", d, n)
	}
	const attempts = 400
	g := graph.New(2 * n)
	for m := 0; m < d; m++ {
		placed := false
		for a := 0; a < attempts && !placed; a++ {
			perm := rng.Perm(n)
			collision := false
			for i := 0; i < n; i++ {
				if g.HasEdge(i, n+perm[i]) {
					collision = true
					break
				}
			}
			if collision {
				continue
			}
			for i := 0; i < n; i++ {
				g.MustEdge(i, n+perm[i])
			}
			placed = true
		}
		if !placed {
			return nil, fmt.Errorf("bipartite regular: no collision-free matching %d after %d attempts (n=%d, d=%d)", m, attempts, n, d)
		}
	}
	return g, nil
}

// MustRandomBipartiteRegular panics on generation failure.
func MustRandomBipartiteRegular(rng *rand.Rand, n, d int) *graph.G {
	g, err := RandomBipartiteRegular(rng, n, d)
	if err != nil {
		panic(err)
	}
	return g
}

// HighGirthRegular returns a d-regular-ish graph with girth > girthMin,
// built by rejection: random regular graphs are generated and short cycles
// broken by local edge swaps; generation fails if the girth target is
// infeasible at this size. High-girth graphs have no small even cycles —
// hence no small DCCs — and are the cleanest inputs for the expansion
// lemmas (E5).
func HighGirthRegular(rng *rand.Rand, n, d, girthMin int) (*graph.G, error) {
	const attempts = 60
	for a := 0; a < attempts; a++ {
		g, err := RandomRegular(rng, n, d)
		if err != nil {
			continue
		}
		if improveGirth(rng, g, girthMin) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("high girth: could not reach girth > %d at n=%d d=%d", girthMin, n, d)
}

// improveGirth tries to remove all cycles of length <= girthMin by edge
// swaps: pick an edge on a short cycle and a random far-away edge, swap
// endpoints (a degree-preserving double swap). Returns success.
func improveGirth(rng *rand.Rand, g *graph.G, girthMin int) bool {
	for round := 0; round < 4*g.N(); round++ {
		u, v, found := findShortCycleEdge(g, girthMin)
		if !found {
			return true
		}
		swapped := false
		es := g.Edges()
		for try := 0; try < 32; try++ {
			// Random partner edge {x, y} disjoint from {u, v}.
			e := es[rng.Intn(len(es))]
			x, y := e[0], e[1]
			if x == u || x == v || y == u || y == v {
				continue
			}
			// Swap to {u, x}, {v, y} when both are fresh.
			if g.HasEdge(u, x) || g.HasEdge(v, y) {
				continue
			}
			rebuildWithSwap(g, [2]int{u, v}, [2]int{x, y}, [2]int{u, x}, [2]int{v, y})
			swapped = true
			break
		}
		if !swapped {
			return false
		}
	}
	_, _, found := findShortCycleEdge(g, girthMin)
	return !found
}

// findShortCycleEdge returns an edge lying on a cycle of length <=
// girthMin, if any. An edge {u, v} lies on such a cycle iff removing it
// leaves a u-v path of length <= girthMin-1; we test with a truncated BFS
// that ignores the direct edge.
func findShortCycleEdge(g *graph.G, girthMin int) (int, int, bool) {
	for _, e := range g.Edges() {
		if pathWithoutEdge(g, e[0], e[1], girthMin-1) {
			return e[0], e[1], true
		}
	}
	return 0, 0, false
}

// pathWithoutEdge reports whether a u-v path of length <= limit exists
// that does not use the edge {u, v} itself.
func pathWithoutEdge(g *graph.G, u, v, limit int) bool {
	dist := map[int]int{u: 0}
	frontier := []int{u}
	for depth := 0; depth < limit && len(frontier) > 0; depth++ {
		var next []int
		for _, x := range frontier {
			for _, y := range g.Neighbors(x) {
				if x == u && y == v {
					continue // skip the direct edge
				}
				if _, seen := dist[y]; seen {
					continue
				}
				if y == v {
					return true
				}
				dist[y] = depth + 1
				next = append(next, y)
			}
		}
		frontier = next
	}
	return false
}

// rebuildWithSwap replaces edges drop1, drop2 with add1, add2 in place by
// rebuilding the adjacency structure.
func rebuildWithSwap(g *graph.G, drop1, drop2, add1, add2 [2]int) {
	edges := g.Edges()
	*g = *graph.New(g.N())
	match := func(e, d [2]int) bool {
		return (e[0] == d[0] && e[1] == d[1]) || (e[0] == d[1] && e[1] == d[0])
	}
	for _, e := range edges {
		if match(e, drop1) || match(e, drop2) {
			continue
		}
		g.MustEdge(e[0], e[1])
	}
	g.MustEdge(add1[0], add1[1])
	g.MustEdge(add2[0], add2[1])
}
