package gen

import "deltacolor/graph"

// Named-graph catalog: classic small graphs with known invariants, used
// as ground truth for the graph algorithms and as hard Δ = 3 coloring
// fixtures (cubic graphs of high girth are exactly the "locally tree-like
// but globally cyclic" inputs the paper's structural section reasons
// about).

// NamedGraph couples a generator with its published invariants.
type NamedGraph struct {
	Name     string
	Build    func() *graph.G
	N, M     int
	Degree   int // -1 if not regular
	Girth    int
	Diameter int
	// Chromatic is the chromatic number; all catalog cubic graphs are
	// 3-colorable (class considerations aside, none is K4 or an odd cycle).
	Chromatic int
}

// Catalog returns the named graphs with their invariants.
func Catalog() []NamedGraph {
	return []NamedGraph{
		{"petersen", Petersen, 10, 15, 3, 5, 2, 3},
		{"heawood", Heawood, 14, 21, 3, 6, 3, 2},
		{"pappus", Pappus, 18, 27, 3, 6, 4, 2},
		{"desargues", Desargues, 20, 30, 3, 6, 5, 2},
		{"moebius-kantor", MoebiusKantor, 16, 24, 3, 6, 4, 2},
		{"dodecahedron", Dodecahedron, 20, 30, 3, 5, 5, 3},
		{"mcgee", McGee, 24, 36, 3, 7, 4, 3},
		{"tutte-coxeter", TutteCoxeter, 30, 45, 3, 8, 4, 2},
	}
}

// generalizedPetersen returns GP(n, k): outer cycle u_0..u_{n-1}, inner
// nodes v_i with spokes u_i-v_i and inner edges v_i-v_{i+k}.
func generalizedPetersen(n, k int) *graph.G {
	g := graph.New(2 * n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)     // outer cycle
		g.MustEdge(i, n+i)         // spoke
		g.MustEdge(n+i, n+(i+k)%n) // inner jumps; duplicates impossible for k < n/2
	}
	return g
}

// Heawood returns the Heawood graph (point-line incidence graph of the
// Fano plane): 3-regular, girth 6.
func Heawood() *graph.G {
	// Standard construction: C14 plus chords i -> i+5 for odd i.
	g := graph.New(14)
	for i := 0; i < 14; i++ {
		g.MustEdge(i, (i+1)%14)
	}
	for i := 1; i < 14; i += 2 {
		g.MustEdge(i, (i+5)%14)
	}
	return g
}

// Pappus returns the Pappus graph: 3-regular, girth 6, the incidence
// graph of the Pappus configuration. LCF notation [5,7,-7,7,-7,-5]^3.
func Pappus() *graph.G {
	return lcf(18, []int{5, 7, -7, 7, -7, -5})
}

// Desargues returns the Desargues graph GP(10, 3).
func Desargues() *graph.G { return generalizedPetersen(10, 3) }

// MoebiusKantor returns the Möbius–Kantor graph GP(8, 3).
func MoebiusKantor() *graph.G { return generalizedPetersen(8, 3) }

// Dodecahedron returns the dodecahedral graph GP(10, 2).
func Dodecahedron() *graph.G { return generalizedPetersen(10, 2) }

// McGee returns the McGee graph: the (3,7)-cage. LCF [12,7,-7]^8.
func McGee() *graph.G {
	return lcf(24, []int{12, 7, -7})
}

// TutteCoxeter returns the Tutte–Coxeter graph (Levi graph of the Cremona–
// Richmond configuration): the (3,8)-cage. LCF [-13,-9,7,-7,9,13]^5.
func TutteCoxeter() *graph.G {
	return lcf(30, []int{-13, -9, 7, -7, 9, 13})
}

// lcf builds a cubic Hamiltonian graph from LCF notation: a Hamiltonian
// cycle on n nodes plus chords i -> i + jumps[i mod len] (mod n).
func lcf(n int, jumps []int) *graph.G {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		j := jumps[i%len(jumps)]
		u, v := i, ((i+j)%n+n)%n
		if !g.HasEdge(u, v) {
			g.MustEdge(u, v)
		}
	}
	return g
}
