package graph

import (
	"fmt"
	"strings"
)

// Graph6 support: the compact ASCII format of nauty/geng, enabling
// interchange with the standard combinatorics toolchain (e.g. validating
// against geng's exhaustive graph catalogs). Only the short form (n <= 62)
// and the 4-byte form (n <= 258047) are implemented; directed and sparse6
// variants are not.

// ToGraph6 encodes g in graph6 format.
func ToGraph6(g *G) (string, error) {
	n := g.N()
	var sb strings.Builder
	switch {
	case n <= 62:
		sb.WriteByte(byte(n + 63))
	case n <= 258047:
		sb.WriteByte(126)
		sb.WriteByte(byte((n>>12)&63 + 63))
		sb.WriteByte(byte((n>>6)&63 + 63))
		sb.WriteByte(byte(n&63 + 63))
	default:
		return "", fmt.Errorf("graph6: n=%d too large for this encoder", n)
	}
	// Upper-triangle bits x(u,v) for v = 1..n-1, u = 0..v-1, packed into
	// 6-bit groups, MSB first, each group offset by 63.
	var bits []bool
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			bits = append(bits, g.HasEdge(u, v))
		}
	}
	for len(bits)%6 != 0 {
		bits = append(bits, false)
	}
	for i := 0; i < len(bits); i += 6 {
		b := 0
		for j := 0; j < 6; j++ {
			b <<= 1
			if bits[i+j] {
				b |= 1
			}
		}
		sb.WriteByte(byte(b + 63))
	}
	return sb.String(), nil
}

// FromGraph6 decodes a graph6 string. Malformed input — empty or
// whitespace-only strings, bytes outside the graph6 alphabet, truncated
// or oversized payloads, unsupported headers, and non-canonical padding
// (set bits past the n(n-1)/2 edge bits, which nauty never emits) — is
// reported as an error, never a panic.
func FromGraph6(s string) (*G, error) {
	data := []byte(strings.TrimSpace(s))
	if len(data) == 0 {
		return nil, fmt.Errorf("graph6: empty input")
	}
	for _, b := range data {
		if b < 63 || b > 126 {
			return nil, fmt.Errorf("graph6: byte %q out of range", b)
		}
	}
	var n, off int
	switch {
	case data[0] != 126:
		n = int(data[0] - 63)
		off = 1
	case len(data) >= 4 && data[1] != 126:
		n = int(data[1]-63)<<12 | int(data[2]-63)<<6 | int(data[3]-63)
		off = 4
	default:
		return nil, fmt.Errorf("graph6: unsupported large-n header")
	}
	// n <= 258047 here, so the bit count fits comfortably in int64; the
	// comparison stays in int64 throughout because the byte count itself
	// can exceed a 32-bit int.
	bits64 := int64(n) * int64(n-1) / 2
	need64 := (bits64 + 5) / 6
	if int64(len(data)-off) != need64 {
		return nil, fmt.Errorf("graph6: n=%d needs %d payload bytes, got %d", n, need64, len(data)-off)
	}
	need := int(need64) // == len(data)-off, so it fits int on every platform
	g := New(n)
	bit := 0
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			byteIdx := off + bit/6
			shift := 5 - bit%6
			if (data[byteIdx]-63)>>shift&1 == 1 {
				if err := g.AddEdge(u, v); err != nil {
					return nil, fmt.Errorf("graph6: %w", err)
				}
			}
			bit++
		}
	}
	// Canonical form zero-pads the final 6-bit group; a set padding bit
	// means the input is corrupt (or not graph6 at all).
	for ; bit < 6*need; bit++ {
		byteIdx := off + bit/6
		shift := 5 - bit%6
		if (data[byteIdx]-63)>>shift&1 == 1 {
			return nil, fmt.Errorf("graph6: non-canonical padding bit %d set", bit)
		}
	}
	return g, nil
}
