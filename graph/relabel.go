package graph

// Node relabeling for cache locality. The LOCAL runtime lays every
// per-node and per-edge table out by node ID, so the memory distance
// between two adjacent nodes' slots is exactly the difference of their
// IDs. A labeling with small bandwidth (max |u - v| over edges {u, v})
// therefore makes both stepping and message delivery walk near-sequential
// memory; a random labeling makes every delivered message a cold cache
// line. The orders below are consumed by local.NewNetwork, which keeps
// the external IDs observable and uses the computed order only for its
// internal table layout.

// rcmDegreeCap is the maximum degree up to which LocalityOrder pays for
// the per-node neighbor sort of reverse Cuthill–McKee. Beyond it (dense
// graphs, cliques) the sort costs Θ(Σ deg·log Δ) for little locality
// gain — any order of a near-complete graph touches almost every cache
// line — so LocalityOrder falls back to the plain BFS order.
const rcmDegreeCap = 512

// LocalityOrder returns a cache-friendly node order for g: reverse
// Cuthill–McKee for graphs of bounded degree, plain BFS order (the RCM
// skeleton without the neighbor sort) when Δ exceeds rcmDegreeCap. The
// returned slice ord is a permutation of [0, n): ord[i] is the node
// placed at position i.
func LocalityOrder(g *G) []int {
	if g.MaxDegree() > rcmDegreeCap {
		return BFSOrder(g)
	}
	return RCMOrder(g)
}

// RCMOrder returns the reverse Cuthill–McKee order of g: each component
// is traversed breadth-first from a minimum-degree node, enqueueing
// unvisited neighbors in ascending degree (ties by ID), and the
// concatenated visit order is reversed. Components are seeded in
// ascending (degree, ID) order, so the result is deterministic.
func RCMOrder(g *G) []int {
	ord := traversalOrder(g, true)
	for i, j := 0, len(ord)-1; i < j; i, j = i+1, j-1 {
		ord[i], ord[j] = ord[j], ord[i]
	}
	return ord
}

// BFSOrder returns the plain BFS visit order of g, each component seeded
// from a minimum-degree node (ties by ID) and neighbors visited in
// adjacency-list order. It is the cheap fallback for graphs too dense
// for RCM's neighbor sort to pay off.
func BFSOrder(g *G) []int {
	return traversalOrder(g, false)
}

// traversalOrder is the shared BFS skeleton of RCMOrder and BFSOrder:
// components are discovered in ascending (degree, ID) order of their
// seeds — a counting sort over degrees, so seeding costs O(n + Δ) — and
// sortNbrs selects the Cuthill–McKee neighbor ordering.
func traversalOrder(g *G, sortNbrs bool) []int {
	n := g.N()
	// Counting-sort the nodes by degree; scanning v ascending keeps the
	// sort stable, so ties break by ID.
	count := make([]int, g.MaxDegree()+1)
	for v := 0; v < n; v++ {
		count[g.Deg(v)]++
	}
	pos := make([]int, len(count))
	for d := 1; d < len(count); d++ {
		pos[d] = pos[d-1] + count[d-1]
	}
	byDeg := make([]int, n)
	for v := 0; v < n; v++ {
		byDeg[pos[g.Deg(v)]] = v
		pos[g.Deg(v)]++
	}

	order := make([]int, 0, n)
	seen := make([]bool, n)
	var nbuf []int
	for _, s := range byDeg {
		if seen[s] {
			continue
		}
		seen[s] = true
		head := len(order)
		order = append(order, s)
		for head < len(order) {
			v := order[head]
			head++
			nbuf = nbuf[:0]
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					nbuf = append(nbuf, u)
				}
			}
			if sortNbrs {
				// Insertion sort on (degree, ID): the lists are at most
				// rcmDegreeCap long and typically tiny, and an inline
				// sort avoids a sort.Slice closure allocation per
				// visited node.
				for i := 1; i < len(nbuf); i++ {
					x := nbuf[i]
					dx := g.Deg(x)
					j := i - 1
					for j >= 0 && (g.Deg(nbuf[j]) > dx || (g.Deg(nbuf[j]) == dx && nbuf[j] > x)) {
						nbuf[j+1] = nbuf[j]
						j--
					}
					nbuf[j+1] = x
				}
			}
			order = append(order, nbuf...)
		}
	}
	return order
}

// Bandwidth returns the labeling bandwidth of g under the given order
// (max over edges of the distance between the endpoints' positions), the
// quantity RCM minimizes heuristically; 0 for edgeless graphs. order
// follows the LocalityOrder convention (order[i] = node at position i);
// a nil order means the identity labeling.
func Bandwidth(g *G, order []int) int {
	posOf := make([]int, g.N())
	if order == nil {
		for v := range posOf {
			posOf[v] = v
		}
	} else {
		for i, v := range order {
			posOf[v] = i
		}
	}
	bw := 0
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			d := posOf[v] - posOf[u]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
