package graph

// Block is a maximal 2-connected component (a "block" in the block-cut
// tree sense): either a biconnected subgraph with >= 3 nodes, or a bridge
// edge (2 nodes), or an isolated node.
type Block struct {
	Nodes []int
	Edges [][2]int
}

// BiconnectedComponents computes the blocks of g using the iterative
// Hopcroft–Tarjan lowpoint algorithm, plus the set of cut vertices.
//
// Every edge belongs to exactly one block; a node belongs to every block
// containing one of its edges (isolated nodes form singleton blocks).
func (g *G) BiconnectedComponents() (blocks []Block, cutVertex []bool) {
	n := g.N()
	cutVertex = make([]bool, n)
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var edgeStack [][2]int
	timer := 0

	type frame struct {
		v, parent, ni int
		children      int
	}

	popBlock := func(u, v int) {
		var es [][2]int
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			es = append(es, e)
			if (e[0] == u && e[1] == v) || (e[0] == v && e[1] == u) {
				break
			}
		}
		if len(es) == 0 {
			return
		}
		seen := map[int]bool{}
		var nodes []int
		for _, e := range es {
			for _, x := range e[:] {
				if !seen[x] {
					seen[x] = true
					nodes = append(nodes, x)
				}
			}
		}
		blocks = append(blocks, Block{Nodes: nodes, Edges: es})
	}

	for root := 0; root < n; root++ {
		if disc[root] >= 0 {
			continue
		}
		if g.Deg(root) == 0 {
			disc[root] = timer
			timer++
			blocks = append(blocks, Block{Nodes: []int{root}})
			continue
		}
		stack := []frame{{v: root, parent: -1}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.ni < len(g.adj[v]) {
				w := g.adj[v][f.ni]
				f.ni++
				if w == f.parent {
					continue
				}
				if disc[w] < 0 {
					edgeStack = append(edgeStack, [2]int{v, w})
					f.children++
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{v: w, parent: v})
				} else if disc[w] < disc[v] {
					// Back edge.
					edgeStack = append(edgeStack, [2]int{v, w})
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) == 0 {
					continue
				}
				p := &stack[len(stack)-1]
				u := p.v
				if low[v] < low[u] {
					low[u] = low[v]
				}
				if low[v] >= disc[u] {
					// u separates v's subtree: pop one block.
					if p.parent != -1 || p.children > 1 {
						cutVertex[u] = true
					}
					popBlock(u, v)
				}
			}
		}
	}
	return blocks, cutVertex
}

// IsCliqueSet reports whether the given node set induces a clique in g.
func (g *G) IsCliqueSet(nodes []int) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

// IsInducedCycleSet reports whether the node set induces a (chordless)
// cycle in g, and if so whether its length is odd.
func (g *G) IsInducedCycleSet(nodes []int) (isCycle, odd bool) {
	k := len(nodes)
	if k < 3 {
		return false, false
	}
	inSet := make(map[int]bool, k)
	for _, v := range nodes {
		inSet[v] = true
	}
	for _, v := range nodes {
		deg := 0
		for _, w := range g.adj[v] {
			if inSet[w] {
				deg++
			}
		}
		if deg != 2 {
			return false, false
		}
	}
	// All internal degrees 2: the induced subgraph is a disjoint union of
	// cycles; it is a single cycle iff it is connected.
	sub, _, err := g.InducedSubgraph(nodes)
	if err != nil || !sub.IsConnected() {
		return false, false
	}
	return true, k%2 == 1
}

// IsClique reports whether the whole graph is a complete graph K_n
// (true for n <= 1).
func (g *G) IsClique() bool {
	n := g.N()
	return g.m == n*(n-1)/2 && g.MinDegree() == n-1 || n <= 1
}

// IsOddCycle reports whether the whole graph is a single odd cycle.
func (g *G) IsOddCycle() bool {
	n := g.N()
	if n < 3 || n%2 == 0 || g.m != n {
		return false
	}
	for v := 0; v < n; v++ {
		if g.Deg(v) != 2 {
			return false
		}
	}
	return g.IsConnected()
}

// IsPath reports whether the graph is a simple path (n >= 1).
func (g *G) IsPath() bool {
	n := g.N()
	if n == 0 {
		return false
	}
	if n == 1 {
		return g.m == 0
	}
	if g.m != n-1 || !g.IsConnected() {
		return false
	}
	ones := 0
	for v := 0; v < n; v++ {
		switch g.Deg(v) {
		case 1:
			ones++
		case 2:
		default:
			return false
		}
	}
	return ones == 2
}

// IsCycle reports whether the graph is a single cycle of any parity.
func (g *G) IsCycle() bool {
	n := g.N()
	if n < 3 || g.m != n {
		return false
	}
	for v := 0; v < n; v++ {
		if g.Deg(v) != 2 {
			return false
		}
	}
	return g.IsConnected()
}

// IsNice reports whether the connected graph is a "nice graph" in the
// paper's sense: neither a path, nor a cycle, nor a clique. All nice
// graphs are Δ-colorable (Brooks).
func (g *G) IsNice() bool {
	return !g.IsPath() && !g.IsCycle() && !g.IsClique()
}
