package graph

import (
	"math/rand"
	"testing"
)

// checkPerm asserts ord is a permutation of [0, n).
func checkPerm(t *testing.T, ord []int, n int) {
	t.Helper()
	if len(ord) != n {
		t.Fatalf("order has %d entries, want %d", len(ord), n)
	}
	seen := make([]bool, n)
	for _, v := range ord {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("order %v is not a permutation of [0,%d)", ord, n)
		}
		seen[v] = true
	}
}

// shuffledPath returns a path whose nodes carry random labels, plus the
// underlying Hamiltonian order.
func shuffledPath(n int, seed int64) *G {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(perm[i], perm[i+1])
	}
	return g
}

func TestOrdersArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := map[string]*G{
		"empty":    New(0),
		"single":   New(1),
		"isolated": New(5),
		"path":     shuffledPath(40, 1),
		"random":   randomSimple(rng, 60, 0.1),
		"dense":    randomSimple(rng, 30, 0.8),
	}
	for name, g := range graphs {
		checkPerm(t, RCMOrder(g), g.N())
		checkPerm(t, BFSOrder(g), g.N())
		checkPerm(t, LocalityOrder(g), g.N())
		if name == "path" || name == "random" {
			// Deterministic: same graph, same order.
			a, b := RCMOrder(g), RCMOrder(g)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: RCMOrder not deterministic at %d", name, i)
				}
			}
		}
	}
}

func randomSimple(rng *rand.Rand, n int, p float64) *G {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

// TestRCMPathBandwidth: on any path, RCM must recover the Hamiltonian
// order exactly — bandwidth 1 — no matter how scrambled the labels are.
func TestRCMPathBandwidth(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := shuffledPath(200, seed)
		if bw := Bandwidth(g, RCMOrder(g)); bw != 1 {
			t.Fatalf("seed %d: RCM bandwidth on a path = %d, want 1", seed, bw)
		}
	}
}

// TestRCMReducesBandwidth: on a randomly-labeled sparse graph the RCM
// order must not be worse than the identity labeling (it is the whole
// point of the pass).
func TestRCMReducesBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomSimple(rng, 300, 0.01)
	id := Bandwidth(g, nil)
	rcm := Bandwidth(g, RCMOrder(g))
	if rcm > id {
		t.Fatalf("RCM bandwidth %d worse than identity %d", rcm, id)
	}
}

// TestComponentSeedsAreMinDegree: the first node of each component's BFS
// must have the component's minimum degree.
func TestComponentSeedsAreMinDegree(t *testing.T) {
	// Two components: a star (min degree 1 at the leaves) and a triangle.
	g := New(7)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(0, 3)
	g.MustEdge(4, 5)
	g.MustEdge(5, 6)
	g.MustEdge(6, 4)
	ord := BFSOrder(g)
	comp, _ := g.ConnectedComponents()
	seenComp := map[int]bool{}
	for _, v := range ord {
		c := comp[v]
		if seenComp[c] {
			continue
		}
		seenComp[c] = true
		// v is this component's seed: no member may have smaller degree.
		for u := 0; u < g.N(); u++ {
			if comp[u] == c && g.Deg(u) < g.Deg(v) {
				t.Fatalf("component %d seeded at %d (deg %d) but %d has deg %d", c, v, g.Deg(v), u, g.Deg(u))
			}
		}
	}
}

// TestLocalityOrderDenseFallback: above the degree cap LocalityOrder must
// agree with BFSOrder (the RCM neighbor sort is skipped).
func TestLocalityOrderDenseFallback(t *testing.T) {
	g := New(600)
	for v := 1; v < 600; v++ {
		g.MustEdge(0, v) // star with Δ = 599 > rcmDegreeCap
	}
	lo, bfs := LocalityOrder(g), BFSOrder(g)
	for i := range lo {
		if lo[i] != bfs[i] {
			t.Fatalf("dense fallback diverges from BFSOrder at %d", i)
		}
	}
}
