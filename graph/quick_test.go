package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickGraph builds a random simple graph from the quick-check RNG.
func quickGraph(rng *rand.Rand, maxN int) *G {
	n := 2 + rng.Intn(maxN-1)
	g := New(n)
	// Edge probability tuned so both sparse and dense-ish graphs appear.
	p := rng.Float64() * 0.6
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

// Property: the degree sum equals twice the edge count (handshake lemma),
// and HasEdge agrees with the adjacency lists in both directions.
func TestQuickHandshakeAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 24)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Deg(v)
			for _, u := range g.Neighbors(v) {
				if !g.HasEdge(u, v) || !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: edge-list write/read is the identity on graphs.
func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 24)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		h, err := ReadEdgeList(&buf)
		if err != nil || h.N() != g.N() || h.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: InducedSubgraph preserves exactly the edges among the kept
// nodes.
func TestQuickInducedSubgraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 20)
		var nodes []int
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.5 {
				nodes = append(nodes, v)
			}
		}
		sub, orig, err := g.InducedSubgraph(nodes)
		if err != nil {
			return false
		}
		for i := 0; i < sub.N(); i++ {
			for j := i + 1; j < sub.N(); j++ {
				if sub.HasEdge(i, j) != g.HasEdge(orig[i], orig[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: in G^k, u ~ v iff 1 <= dist_G(u, v) <= k.
func TestQuickPowerGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 14)
		k := 1 + rng.Intn(3)
		p := g.Power(k)
		for v := 0; v < g.N(); v++ {
			dist, _ := g.MultiSourceDist([]int{v})
			for u := 0; u < g.N(); u++ {
				want := u != v && dist[u] >= 1 && dist[u] <= k
				if p.HasEdge(v, u) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveNodes leaves removed nodes isolated and never creates
// edges.
func TestQuickRemoveNodes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 20)
		var drop []int
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.3 {
				drop = append(drop, v)
			}
		}
		h, removed := g.RemoveNodes(drop)
		for v := 0; v < h.N(); v++ {
			if removed[v] && h.Deg(v) != 0 {
				return false
			}
			for _, u := range h.Neighbors(v) {
				if !g.HasEdge(v, u) || removed[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle-ish property along edges —
// adjacent nodes' distances from any root differ by at most 1 — and every
// reachable node except the root has a parent at distance-1.
func TestQuickBFSDistances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 20)
		root := rng.Intn(g.N())
		res := g.BFS(root)
		for _, e := range g.Edges() {
			du, dv := res.Dist[e[0]], res.Dist[e[1]]
			if du < 0 != (dv < 0) {
				return false // one reachable, the other not, yet adjacent
			}
			if du >= 0 && dv >= 0 && (du-dv > 1 || dv-du > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConnectedComponents labels agree with BFS reachability.
func TestQuickComponentsMatchBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 18)
		comp, _ := g.ConnectedComponents()
		for v := 0; v < g.N(); v++ {
			res := g.BFS(v)
			for u := 0; u < g.N(); u++ {
				if (res.Dist[u] >= 0) != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
