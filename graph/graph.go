// Package graph provides the undirected-graph substrate used by every
// algorithm in this repository: adjacency storage, traversal, biconnected
// components, graph powers, and the structural predicates (clique, odd
// cycle, nice graph) that the Δ-coloring theorems are stated in terms of.
//
// Nodes are identified by dense integer IDs in [0, N). Graphs are simple
// (no self-loops, no parallel edges) and undirected.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrEdgeExists is returned by AddEdge when the edge is already present.
var ErrEdgeExists = errors.New("edge already exists")

// ErrSelfLoop is returned by AddEdge for a self-loop.
var ErrSelfLoop = errors.New("self-loops are not allowed")

// ErrNoEdge is returned by RemoveEdge when the edge is absent.
var ErrNoEdge = errors.New("edge does not exist")

// G is a simple undirected graph with dense node IDs.
//
// The zero value is an empty graph with no nodes; use New to pre-allocate.
type G struct {
	adj [][]int
	m   int
}

// New returns an empty graph on n isolated nodes.
func New(n int) *G {
	return &G{adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *G) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *G) M() int { return g.m }

// Deg returns the degree of node v.
func (g *G) Deg(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency slice of v. Callers must not mutate it.
func (g *G) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *G) HasEdge(u, v int) bool {
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge {u, v}.
func (g *G) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("add edge (%d,%d): %w", u, v, ErrSelfLoop)
	}
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return fmt.Errorf("add edge (%d,%d): node out of range [0,%d)", u, v, g.N())
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("add edge (%d,%d): %w", u, v, ErrEdgeExists)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	return nil
}

// MustEdge is AddEdge for construction code with statically valid inputs;
// it panics on error. Intended for tests and generators.
func (g *G) MustEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u, v}, preserving the relative
// order of the remaining entries in both adjacency lists (the LOCAL
// runtime's port numbering is defined by adjacency order, so removal must
// not permute surviving ports).
func (g *G) RemoveEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return fmt.Errorf("remove edge (%d,%d): node out of range [0,%d)", u, v, g.N())
	}
	pu, pv := -1, -1
	for p, w := range g.adj[u] {
		if w == v {
			pu = p
			break
		}
	}
	if pu < 0 {
		return fmt.Errorf("remove edge (%d,%d): %w", u, v, ErrNoEdge)
	}
	for p, w := range g.adj[v] {
		if w == u {
			pv = p
			break
		}
	}
	g.adj[u] = append(g.adj[u][:pu], g.adj[u][pu+1:]...)
	g.adj[v] = append(g.adj[v][:pv], g.adj[v][pv+1:]...)
	g.m--
	return nil
}

// AddNode appends a new isolated node and returns its ID (the new N-1).
func (g *G) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// FromAdjacency adopts a prebuilt adjacency structure in O(n + Σ deg),
// bypassing the per-edge duplicate scan of AddEdge. The caller guarantees
// the lists describe a simple undirected graph (symmetric, no duplicate
// entries); only node ranges, self-loops and degree-sum parity are
// verified. Intended for bulk constructions that already deduplicate,
// such as quotient networks built from port tables.
func FromAdjacency(adj [][]int) (*G, error) {
	n := len(adj)
	sum := 0
	for v, nbrs := range adj {
		for _, u := range nbrs {
			if u == v {
				return nil, fmt.Errorf("from adjacency: node %d: %w", v, ErrSelfLoop)
			}
			if u < 0 || u >= n {
				return nil, fmt.Errorf("from adjacency: node %d lists neighbor %d outside [0,%d)", v, u, n)
			}
		}
		sum += len(nbrs)
	}
	if sum%2 != 0 {
		return nil, fmt.Errorf("from adjacency: directed degree sum %d is odd (lists not symmetric)", sum)
	}
	return &G{adj: adj, m: sum / 2}, nil
}

// MaxDegree returns Δ(G), the maximum degree (0 for an empty graph).
func (g *G) MaxDegree() int {
	d := 0
	for v := range g.adj {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// MinDegree returns the minimum degree (0 for an empty graph).
func (g *G) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	d := len(g.adj[0])
	for v := range g.adj {
		if len(g.adj[v]) < d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Clone returns a deep copy of g.
func (g *G) Clone() *G {
	c := &G{adj: make([][]int, len(g.adj)), m: g.m}
	for v, nbrs := range g.adj {
		c.adj[v] = append([]int(nil), nbrs...)
	}
	return c
}

// Edges returns all edges as (u, v) pairs with u < v, sorted.
func (g *G) Edges() [][2]int {
	es := make([][2]int, 0, g.m)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// SortAdjacency sorts every adjacency list ascending; useful for
// deterministic iteration in tests and algorithms.
func (g *G) SortAdjacency() {
	for v := range g.adj {
		sort.Ints(g.adj[v])
	}
}

// InducedSubgraph returns the node-induced subgraph on nodes (in the given
// order) plus the mapping from new IDs to original IDs. Duplicate nodes in
// the input are an error.
func (g *G) InducedSubgraph(nodes []int) (*G, []int, error) {
	idx := make(map[int]int, len(nodes))
	for i, v := range nodes {
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("induced subgraph: duplicate node %d", v)
		}
		idx[v] = i
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && i < j {
				if err := sub.AddEdge(i, j); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	orig := append([]int(nil), nodes...)
	return sub, orig, nil
}

// RemoveNodes returns a copy of g with the given nodes deleted (their
// incident edges removed), keeping the original node IDs; deleted nodes
// become isolated and are flagged in the returned removed set.
func (g *G) RemoveNodes(nodes []int) (*G, map[int]bool) {
	removed := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		removed[v] = true
	}
	c := New(g.N())
	for u, nbrs := range g.adj {
		if removed[u] {
			continue
		}
		for _, v := range nbrs {
			if u < v && !removed[v] {
				c.MustEdge(u, v)
			}
		}
	}
	return c, removed
}
