package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the plain edge-list format:
//
//	n <numNodes>
//	<u> <v>        (one line per edge, u < v)
//
// Lines starting with '#' are comments on read. This is the interchange
// format of cmd/deltacolor.
func WriteEdgeList(w io.Writer, g *G) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. The "n" header
// is optional; without it the node count is 1 + the largest ID seen.
func ReadEdgeList(r io.Reader) (*G, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var edges [][2]int
	n := -1
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("edge list line %d: malformed header %q", lineNo, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("edge list line %d: bad node count %q", lineNo, fields[1])
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("edge list line %d: want two node IDs, got %q", lineNo, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("edge list line %d: bad node IDs %q", lineNo, line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return nil, fmt.Errorf("edge list: node ID %d >= declared n=%d", maxID, n)
	}
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}
