package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []int{0, 1, -1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "0 -- 1;", "1 -- 2;", `"tomato"`, `"steelblue"`, `"white"`, "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTNilColors(t *testing.T) {
	g := New(2)
	g.MustEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"white"`) {
		t.Fatal("uncolored nodes should be white")
	}
}

func TestWriteDOTPaletteWraps(t *testing.T) {
	g := New(1)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []int{len(dotPalette) + 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), dotPalette[2]) {
		t.Fatalf("palette should wrap: %s", buf.String())
	}
}
