package graph

// Power returns G^k: same node set, an edge between u and v iff their
// distance in g is between 1 and k. Power(1) is a copy of g.
func (g *G) Power(k int) *G {
	p := New(g.N())
	if k <= 0 {
		return p
	}
	for v := 0; v < g.N(); v++ {
		res := g.BFSLimited(v, k)
		for _, u := range res.Order {
			if u > v && res.Dist[u] >= 1 {
				p.MustEdge(v, u)
			}
		}
	}
	return p
}

// DistanceRangeGraph returns the graph H[lo, hi] of the shattering lemma:
// same node set, an edge between u and v iff lo <= dist_g(u, v) <= hi.
func (g *G) DistanceRangeGraph(lo, hi int) *G {
	p := New(g.N())
	if hi < lo || hi <= 0 {
		return p
	}
	for v := 0; v < g.N(); v++ {
		res := g.BFSLimited(v, hi)
		for _, u := range res.Order {
			if u > v && res.Dist[u] >= lo {
				p.MustEdge(v, u)
			}
		}
	}
	return p
}

// Quotient builds a "virtual" graph over groups of nodes: one virtual node
// per group; two groups are adjacent iff they share a node of g or are
// joined by an edge of g. This is exactly the construction of the virtual
// graph G_DCC in phase (1) of the randomized algorithm, and of cluster
// graphs in network decompositions.
//
// groups may overlap. The returned graph has len(groups) nodes.
func Quotient(g *G, groups [][]int) *G {
	q := New(len(groups))
	owner := make(map[int][]int) // node -> group indices containing it
	for gi, grp := range groups {
		for _, v := range grp {
			owner[v] = append(owner[v], gi)
		}
	}
	addEdge := func(a, b int) {
		if a != b && !q.HasEdge(a, b) {
			q.MustEdge(a, b)
		}
	}
	// Shared nodes.
	for _, gis := range owner {
		for i := 0; i < len(gis); i++ {
			for j := i + 1; j < len(gis); j++ {
				addEdge(gis[i], gis[j])
			}
		}
	}
	// Edges of g between groups.
	for _, e := range g.Edges() {
		for _, a := range owner[e[0]] {
			for _, b := range owner[e[1]] {
				addEdge(a, b)
			}
		}
	}
	return q
}
