package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n int, p float64) *G {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

func BenchmarkBFSFull(b *testing.B) {
	g := benchGraph(b, 2048, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkBFSLimited4(b *testing.B) {
	g := benchGraph(b, 2048, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSLimited(i%g.N(), 4)
	}
}

func BenchmarkMultiSourceDist(b *testing.B) {
	g := benchGraph(b, 2048, 0.004)
	sources := []int{0, 512, 1024, 1536}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MultiSourceDist(sources)
	}
}

func BenchmarkBiconnectedComponents(b *testing.B) {
	g := benchGraph(b, 1024, 0.008)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BiconnectedComponents()
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 1024, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(i%g.N(), (i*7)%g.N())
	}
}

func BenchmarkPower2(b *testing.B) {
	g := benchGraph(b, 512, 0.008)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Power(2)
	}
}

func BenchmarkEdgeListRoundTrip(b *testing.B) {
	g := benchGraph(b, 1024, 0.008)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := WriteEdgeList(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
