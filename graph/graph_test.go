package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle() *G {
	g := New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 0)
	return g
}

func cycle(n int) *G {
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)
	}
	return g
}

func complete(n int) *G {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustEdge(i, j)
		}
	}
	return g
}

func path(n int) *G {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(i, i+1)
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64) *G {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.M() != 1 {
		t.Fatalf("M=%d", g.M())
	}
	if err := g.AddEdge(0, 1); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("want ErrEdgeExists, got %v", err)
	}
	if err := g.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("want ErrSelfLoop, got %v", err)
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestDegrees(t *testing.T) {
	g := triangle()
	if g.MaxDegree() != 2 || g.MinDegree() != 2 {
		t.Fatalf("max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	g2 := path(4)
	if g2.MaxDegree() != 2 || g2.MinDegree() != 1 {
		t.Fatalf("path degrees wrong")
	}
	var empty G
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 {
		t.Fatal("empty graph degrees")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(4)
	g.MustEdge(0, 1)
	c := g.Clone()
	c.MustEdge(2, 3)
	if g.HasEdge(2, 3) {
		t.Fatal("clone shares storage with original")
	}
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("edge counts: g=%d c=%d", g.M(), c.M())
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.MustEdge(3, 1)
	g.MustEdge(2, 0)
	g.MustEdge(0, 1)
	es := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("len=%d", len(es))
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := complete(5)
	sub, orig, err := g.InducedSubgraph([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3 wrong: n=%d m=%d", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 4 {
		t.Fatalf("orig mapping %v", orig)
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Fatal("duplicate nodes should error")
	}
}

func TestRemoveNodes(t *testing.T) {
	g := cycle(6)
	h, removed := g.RemoveNodes([]int{0, 3})
	if !removed[0] || !removed[3] || removed[1] {
		t.Fatal("removed set wrong")
	}
	if h.M() != 2 { // edges 1-2 and 4-5 remain
		t.Fatalf("M=%d", h.M())
	}
	if h.Deg(0) != 0 {
		t.Fatal("removed node should be isolated")
	}
}

func TestBFSDistances(t *testing.T) {
	g := cycle(8)
	res := g.BFS(0)
	if res.Dist[4] != 4 {
		t.Fatalf("antipodal dist = %d", res.Dist[4])
	}
	if res.Dist[1] != 1 || res.Dist[7] != 1 {
		t.Fatal("neighbor dist")
	}
	lim := g.BFSLimited(0, 2)
	if lim.Dist[3] != -1 && lim.Dist[3] != 3 {
		// nodes beyond radius must be unvisited
		t.Fatalf("limited BFS overreach: %d", lim.Dist[3])
	}
	if lim.Dist[3] != -1 {
		t.Fatalf("dist 3 should be unreached, got %d", lim.Dist[3])
	}
}

func TestBallAndSphere(t *testing.T) {
	g := cycle(10)
	ball := g.Ball(0, 2)
	if len(ball) != 5 {
		t.Fatalf("ball size %d", len(ball))
	}
	sphere := g.Sphere(0, 2)
	if len(sphere) != 2 {
		t.Fatalf("sphere size %d", len(sphere))
	}
}

func TestMultiSourceDist(t *testing.T) {
	g := path(10)
	dist, nearest := g.MultiSourceDist([]int{0, 9})
	if dist[5] != 4 || nearest[5] != 9 {
		t.Fatalf("dist[5]=%d nearest=%d", dist[5], nearest[5])
	}
	if dist[4] != 4 || nearest[4] != 0 {
		t.Fatalf("dist[4]=%d nearest=%d", dist[4], nearest[4])
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.MustEdge(0, 1)
	g.MustEdge(2, 3)
	comp, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("count=%d", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatal("components wrong")
	}
	if g.IsConnected() {
		t.Fatal("not connected")
	}
	if !cycle(5).IsConnected() {
		t.Fatal("cycle is connected")
	}
}

func TestDiameterRadiusGirth(t *testing.T) {
	g := cycle(8)
	if d := g.Diameter(); d != 4 {
		t.Fatalf("diameter %d", d)
	}
	if r := g.Radius(); r != 4 {
		t.Fatalf("radius %d", r)
	}
	if gir := g.Girth(); gir != 8 {
		t.Fatalf("girth %d", gir)
	}
	if gir := complete(4).Girth(); gir != 3 {
		t.Fatalf("K4 girth %d", gir)
	}
	if gir := path(5).Girth(); gir != -1 {
		t.Fatalf("path girth %d", gir)
	}
	if d := New(3).Diameter(); d != -1 {
		t.Fatalf("disconnected diameter %d", d)
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		name                            string
		g                               *G
		clique, oddCycle, pathP, cycleP bool
	}{
		{"K4", complete(4), true, false, false, false},
		{"K3", triangle(), true, true, false, true},
		{"C5", cycle(5), false, true, false, true},
		{"C6", cycle(6), false, false, false, true},
		{"P4", path(4), false, false, true, false},
		{"K1", New(1), true, false, true, false},
	}
	for _, c := range cases {
		if got := c.g.IsClique(); got != c.clique {
			t.Errorf("%s IsClique=%v", c.name, got)
		}
		if got := c.g.IsOddCycle(); got != c.oddCycle {
			t.Errorf("%s IsOddCycle=%v", c.name, got)
		}
		if got := c.g.IsPath(); got != c.pathP {
			t.Errorf("%s IsPath=%v", c.name, got)
		}
		if got := c.g.IsCycle(); got != c.cycleP {
			t.Errorf("%s IsCycle=%v", c.name, got)
		}
	}
	if cycle(6).IsNice() || path(3).IsNice() || complete(5).IsNice() {
		t.Fatal("paths/cycles/cliques are not nice")
	}
	star := New(5)
	for i := 1; i < 5; i++ {
		star.MustEdge(0, i)
	}
	if !star.IsNice() {
		t.Fatal("star is nice")
	}
}

func TestIsCliqueSetAndInducedCycle(t *testing.T) {
	g := complete(5)
	if !g.IsCliqueSet([]int{0, 2, 4}) {
		t.Fatal("subset of clique is clique")
	}
	c := cycle(6)
	if c.IsCliqueSet([]int{0, 1, 2}) {
		t.Fatal("path in cycle is not a clique")
	}
	isCyc, odd := c.IsInducedCycleSet([]int{0, 1, 2, 3, 4, 5})
	if !isCyc || odd {
		t.Fatalf("C6: cyc=%v odd=%v", isCyc, odd)
	}
	isCyc, _ = c.IsInducedCycleSet([]int{0, 1, 2})
	if isCyc {
		t.Fatal("path is not an induced cycle")
	}
	c5 := cycle(5)
	isCyc, odd = c5.IsInducedCycleSet([]int{0, 1, 2, 3, 4})
	if !isCyc || !odd {
		t.Fatalf("C5: cyc=%v odd=%v", isCyc, odd)
	}
}

func TestBiconnectedComponentsBridge(t *testing.T) {
	// Two triangles joined by a bridge: 3 blocks.
	g := New(6)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 0)
	g.MustEdge(2, 3)
	g.MustEdge(3, 4)
	g.MustEdge(4, 5)
	g.MustEdge(5, 3)
	blocks, cut := g.BiconnectedComponents()
	if len(blocks) != 3 {
		t.Fatalf("blocks=%d", len(blocks))
	}
	if !cut[2] || !cut[3] {
		t.Fatal("cut vertices 2 and 3 expected")
	}
	if cut[0] || cut[4] {
		t.Fatal("non-cut flagged")
	}
	total := 0
	for _, b := range blocks {
		total += len(b.Edges)
	}
	if total != g.M() {
		t.Fatalf("blocks cover %d edges, graph has %d", total, g.M())
	}
}

func TestBiconnectedSingleBlock(t *testing.T) {
	g := cycle(7)
	blocks, cut := g.BiconnectedComponents()
	if len(blocks) != 1 || len(blocks[0].Nodes) != 7 {
		t.Fatalf("cycle blocks wrong: %d", len(blocks))
	}
	for v := 0; v < 7; v++ {
		if cut[v] {
			t.Fatal("cycle has no cut vertices")
		}
	}
}

func TestBiconnectedIsolatedAndTree(t *testing.T) {
	g := New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	// node 3 isolated
	blocks, cut := g.BiconnectedComponents()
	if len(blocks) != 3 { // two bridge-blocks + singleton
		t.Fatalf("blocks=%d", len(blocks))
	}
	if !cut[1] {
		t.Fatal("center of path is a cut vertex")
	}
}

// Property: every edge appears in exactly one block.
func TestBlocksPartitionEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 24, 0.12)
		blocks, _ := g.BiconnectedComponents()
		seen := map[[2]int]int{}
		for _, b := range blocks {
			for _, e := range b.Edges {
				u, v := e[0], e[1]
				if u > v {
					u, v = v, u
				}
				seen[[2]int{u, v}]++
			}
		}
		if len(seen) != g.M() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPower(t *testing.T) {
	g := path(5)
	p2 := g.Power(2)
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatal("P^2 of path wrong")
	}
	if !p2.HasEdge(0, 1) {
		t.Fatal("power includes original edges")
	}
	p0 := g.Power(0)
	if p0.M() != 0 {
		t.Fatal("G^0 has no edges")
	}
}

func TestDistanceRangeGraph(t *testing.T) {
	g := path(6)
	h := g.DistanceRangeGraph(2, 3)
	if h.HasEdge(0, 1) || !h.HasEdge(0, 2) || !h.HasEdge(0, 3) || h.HasEdge(0, 4) {
		t.Fatal("distance range graph wrong")
	}
}

func TestQuotient(t *testing.T) {
	g := path(6)
	// groups: {0,1}, {2,3}, {4,5}, and one overlapping {1,2}
	q := Quotient(g, [][]int{{0, 1}, {2, 3}, {4, 5}, {1, 2}})
	if q.N() != 4 {
		t.Fatalf("quotient n=%d", q.N())
	}
	if !q.HasEdge(0, 1) { // connected by edge 1-2
		t.Fatal("groups 0 and 1 adjacent via edge")
	}
	if !q.HasEdge(0, 3) || !q.HasEdge(1, 3) { // share nodes 1 and 2
		t.Fatal("overlapping groups adjacent")
	}
	if !q.HasEdge(1, 2) { // edge 3-4
		t.Fatal("groups 1,2 adjacent")
	}
	if q.HasEdge(0, 2) {
		t.Fatal("groups 0,2 not adjacent")
	}
}

// Property: BFS distance satisfies the triangle inequality along edges.
func TestBFSTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 0.1)
		res := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := res.Dist[e[0]], res.Dist[e[1]]
			if du >= 0 && dv >= 0 && abs(du-dv) > 1 {
				return false
			}
			if (du < 0) != (dv < 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: Power(k) edge iff BFS distance in [1, k].
func TestPowerMatchesDistancesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 18, 0.12)
		k := 1 + rng.Intn(3)
		p := g.Power(k)
		for u := 0; u < g.N(); u++ {
			res := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				want := res.Dist[v] >= 1 && res.Dist[v] <= k
				if p.HasEdge(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromAdjacency(t *testing.T) {
	adj := [][]int{{1, 2}, {0}, {0}}
	g, err := FromAdjacency(adj)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Deg(0) != 2 {
		t.Fatalf("n=%d m=%d deg0=%d", g.N(), g.M(), g.Deg(0))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatal("edge set wrong")
	}
	if _, err := FromAdjacency([][]int{{0}}); err == nil {
		t.Fatal("self-loop not rejected")
	}
	if _, err := FromAdjacency([][]int{{1}, {}}); err == nil {
		t.Fatal("asymmetric degree sum not rejected")
	}
	if _, err := FromAdjacency([][]int{{5}}); err == nil {
		t.Fatal("out-of-range neighbor not rejected")
	}
}
