package graph

// BFSResult holds the outcome of a breadth-first search from a root.
type BFSResult struct {
	Root   int
	Dist   []int // Dist[v] = hop distance from Root, -1 if unreachable
	Parent []int // Parent[v] in the BFS tree, -1 for root/unreachable
	Order  []int // visit order
}

// BFS runs a breadth-first search from root over the whole graph.
func (g *G) BFS(root int) *BFSResult {
	return g.BFSLimited(root, -1)
}

// BFSLimited runs BFS from root up to the given radius (hops); radius < 0
// means unbounded.
func (g *G) BFSLimited(root, radius int) *BFSResult {
	res := &BFSResult{
		Root:   root,
		Dist:   make([]int, g.N()),
		Parent: make([]int, g.N()),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
	}
	res.Dist[root] = 0
	queue := []int{root}
	res.Order = append(res.Order, root)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if radius >= 0 && res.Dist[v] == radius {
			continue
		}
		for _, w := range g.adj[v] {
			if res.Dist[w] < 0 {
				res.Dist[w] = res.Dist[v] + 1
				res.Parent[w] = v
				res.Order = append(res.Order, w)
				queue = append(queue, w)
			}
		}
	}
	return res
}

// Ball returns the set of nodes at distance <= r from v (including v),
// in BFS order.
func (g *G) Ball(v, r int) []int {
	res := g.BFSLimited(v, r)
	return res.Order
}

// Sphere returns the nodes at distance exactly r from v.
func (g *G) Sphere(v, r int) []int {
	res := g.BFSLimited(v, r)
	var out []int
	for _, u := range res.Order {
		if res.Dist[u] == r {
			out = append(out, u)
		}
	}
	return out
}

// MultiSourceDist returns, for every node, the distance to the nearest
// source (-1 if unreachable) and the ID of that nearest source (ties broken
// by BFS order, then by smaller source ID because sources are enqueued in
// the given order after sorting is the caller's concern).
func (g *G) MultiSourceDist(sources []int) (dist, nearest []int) {
	dist = make([]int, g.N())
	nearest = make([]int, g.N())
	for i := range dist {
		dist[i] = -1
		nearest[i] = -1
	}
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if dist[s] == 0 && nearest[s] >= 0 {
			continue // duplicate source
		}
		dist[s] = 0
		nearest[s] = s
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				nearest[w] = nearest[v]
				queue = append(queue, w)
			}
		}
	}
	return dist, nearest
}

// ConnectedComponents returns the component ID of every node and the number
// of components. Isolated nodes form their own components.
func (g *G) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	for v := range comp {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = count
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[x] {
				if comp[w] < 0 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether g is connected (true for the empty and the
// single-node graph).
func (g *G) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// Diameter returns the largest eccentricity over all nodes; -1 if the graph
// is disconnected or empty. O(N·M) — intended for small graphs and tests.
func (g *G) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	d := 0
	for v := 0; v < g.N(); v++ {
		res := g.BFS(v)
		for _, u := range res.Order {
			if res.Dist[u] > d {
				d = res.Dist[u]
			}
		}
		if len(res.Order) != g.N() {
			return -1
		}
	}
	return d
}

// Radius returns min over nodes of eccentricity; -1 if disconnected/empty.
func (g *G) Radius() int {
	if g.N() == 0 {
		return -1
	}
	best := -1
	for v := 0; v < g.N(); v++ {
		res := g.BFS(v)
		if len(res.Order) != g.N() {
			return -1
		}
		ecc := 0
		for _, u := range res.Order {
			if res.Dist[u] > ecc {
				ecc = res.Dist[u]
			}
		}
		if best < 0 || ecc < best {
			best = ecc
		}
	}
	return best
}

// Girth returns the length of a shortest cycle, or -1 if the graph is a
// forest. O(N·M) BFS-based computation.
func (g *G) Girth() int {
	best := -1
	for v := 0; v < g.N(); v++ {
		dist := make([]int, g.N())
		par := make([]int, g.N())
		for i := range dist {
			dist[i] = -1
			par[i] = -1
		}
		dist[v] = 0
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[x] {
				if dist[w] < 0 {
					dist[w] = dist[x] + 1
					par[w] = x
					queue = append(queue, w)
				} else if par[x] != w {
					// Non-tree edge: cycle through v of length
					// dist[x]+dist[w]+1 (an upper bound on the girth via v).
					if c := dist[x] + dist[w] + 1; best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}
