package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic, and anything it accepts
// must re-serialize and re-parse to the same graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 4\n0 1\n1 2\n")
	f.Add("0 1\n# comment\n\n2 3\n")
	f.Add("n 0\n")
	f.Add("x y\n")
	f.Add("n 2\n0 5\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip changed graph: n %d->%d m %d->%d", g.N(), h.N(), g.M(), h.M())
		}
	})
}

// FuzzFromGraph6: the decoder must never panic, and anything it accepts
// must survive a decode→encode→decode round trip with n and m intact.
func FuzzFromGraph6(f *testing.F) {
	f.Add("DQc")
	f.Add("?")
	f.Add("A_")
	f.Add("~~~")
	// Regression seeds for decoder hardening: whitespace-only input
	// (previously indexed an empty slice and panicked), bare and
	// truncated 4-byte headers, a valid 4-byte-form encoding (P_63),
	// payload length mismatches, and non-canonical padding.
	f.Add("   ")
	f.Add("\n\t")
	f.Add("~")
	f.Add("~~")
	f.Add("~?")
	f.Add("~??B")
	long := New(63) // n > 62 exercises the 4-byte header form
	for i := 0; i+1 < 63; i++ {
		long.MustEdge(i, i+1)
	}
	if s, err := ToGraph6(long); err == nil {
		f.Add(s)
	}
	f.Add("DQcQc")
	f.Add("Bx") // K3 "Bw" with a padding bit flipped
	f.Fuzz(func(t *testing.T, in string) {
		g, err := FromGraph6(in)
		if err != nil {
			return
		}
		s, err := ToGraph6(g)
		if err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		h, err := FromGraph6(s)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip changed graph: n %d->%d m %d->%d", g.N(), h.N(), g.M(), h.M())
		}
	})
}
