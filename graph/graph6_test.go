package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Known vector from nauty's formats.txt: the graph on 5 vertices with
// edges 0-2, 0-4, 1-3, 3-4 is "DQc".
func TestGraph6KnownVectors(t *testing.T) {
	g := New(5)
	g.MustEdge(0, 2)
	g.MustEdge(0, 4)
	g.MustEdge(1, 3)
	g.MustEdge(3, 4)
	s, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	if s != "DQc" {
		t.Fatalf("nauty example encodes to %q, want \"DQc\"", s)
	}
	back, err := FromGraph6("DQc")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 5 || back.M() != 4 {
		t.Fatalf("decoded n=%d m=%d, want 5, 4", back.N(), back.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("decoded graph missing edge %v", e)
		}
	}

	// The empty graph on 0 nodes is "?" (63).
	empty, err := ToGraph6(New(0))
	if err != nil {
		t.Fatal(err)
	}
	if empty != "?" {
		t.Fatalf("K0 encodes to %q, want \"?\"", empty)
	}
	// K2 is "A_".
	k2 := New(2)
	k2.MustEdge(0, 1)
	if s, _ := ToGraph6(k2); s != "A_" {
		t.Fatalf("K2 encodes to %q, want \"A_\"", s)
	}
}

func TestGraph6RoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng, 30)
		s, err := ToGraph6(g)
		if err != nil {
			return false
		}
		h, err := FromGraph6(s)
		if err != nil || h.N() != g.N() || h.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGraph6LargeN(t *testing.T) {
	// The 4-byte header kicks in above n=62.
	g := New(100)
	for i := 0; i+1 < 100; i++ {
		g.MustEdge(i, i+1)
	}
	s, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromGraph6(s)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 100 || h.M() != 99 {
		t.Fatalf("n=%d m=%d, want 100, 99", h.N(), h.M())
	}
}

// TestGraph6Errors table-tests malformed inputs found by fuzzing: every
// row must come back as an error, never a panic or a silent accept.
func TestGraph6Errors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"whitespace-only", "  \n\t"}, // used to panic: TrimSpace left nothing to index
		{"truncated-payload", "D"},
		{"out-of-range-byte", "\x1f"},
		{"out-of-range-interior", "D\x00Qc"},
		{"bare-long-prefix", "~"},
		{"short-long-header", "~~"},
		{"sparse6-style-header", "~~~~~"},
		{"long-header-no-payload", "~??B"},
		{"oversized-payload", "DQcQc"},
		{"short-form-missing-bytes", "Z"},
		{"padding-bits-set", "?A"}, // n=0 claims a payload byte
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := FromGraph6(tc.in)
			if err == nil {
				t.Fatalf("malformed input %q accepted (n=%d m=%d)", tc.in, g.N(), g.M())
			}
		})
	}
}

// TestGraph6NonCanonicalPadding: the last 6-bit group of a K3 ("Bw")
// uses only 3 edge bits; flipping a padding bit must be rejected.
func TestGraph6NonCanonicalPadding(t *testing.T) {
	k3 := New(3)
	k3.MustEdge(0, 1)
	k3.MustEdge(0, 2)
	k3.MustEdge(1, 2)
	s, err := ToGraph6(k3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromGraph6(s); err != nil {
		t.Fatalf("canonical K3 %q rejected: %v", s, err)
	}
	// Set the lowest padding bit of the final 6-bit group (the group
	// value is offset by 63, so flip before re-offsetting).
	bad := []byte(s)
	bad[len(bad)-1] = ((bad[len(bad)-1] - 63) | 1) + 63
	if _, err := FromGraph6(string(bad)); err == nil {
		t.Fatalf("non-canonical padding in %q accepted", bad)
	}
}

// TestGraph6SurroundingWhitespace: trailing newlines (as produced by
// geng pipelines) are tolerated around an otherwise canonical string.
func TestGraph6SurroundingWhitespace(t *testing.T) {
	g, err := FromGraph6("DQc\n")
	if err != nil || g.N() != 5 || g.M() != 4 {
		t.Fatalf("got n=%v m=%v err=%v, want 5, 4, nil", g.N(), g.M(), err)
	}
}
