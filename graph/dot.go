package graph

import (
	"bufio"
	"fmt"
	"io"
)

// dotPalette maps small color indices to Graphviz color names; indices
// beyond the palette wrap around.
var dotPalette = []string{
	"tomato", "steelblue", "gold", "mediumseagreen",
	"orchid", "sandybrown", "turquoise", "slategray",
	"hotpink", "yellowgreen", "cornflowerblue", "salmon",
}

// WriteDOT renders g in Graphviz DOT format. When colors is non-nil,
// nodes are filled per their color index (entries < 0 are drawn hollow):
// the one-liner to eyeball a Δ-coloring:
//
//	dot -Tsvg out.dot > out.svg
func WriteDOT(w io.Writer, g *G, colors []int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	fmt.Fprintln(bw, "  node [shape=circle style=filled fontsize=10];")
	for v := 0; v < g.N(); v++ {
		fill := "white"
		if colors != nil && v < len(colors) && colors[v] >= 0 {
			fill = dotPalette[colors[v]%len(dotPalette)]
		}
		fmt.Fprintf(bw, "  %d [fillcolor=%q];\n", v, fill)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
