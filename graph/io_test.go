package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(6)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(4, 5)
	g.MustEdge(0, 5)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !got.HasEdge(e[0], e[1]) {
			t.Fatalf("round trip lost edge %v", e)
		}
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n# comment\n\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4, 3", g.N(), g.M())
	}
}

func TestReadEdgeListIsolatedNodes(t *testing.T) {
	// Header declares more nodes than appear in edges.
	g, err := ReadEdgeList(strings.NewReader("n 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 1 {
		t.Fatalf("n=%d m=%d, want 10, 1", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"id beyond n", "n 2\n0 5\n"},
		{"negative id", "0 -1\n"},
		{"malformed line", "0 1 2\n"},
		{"bad header", "n x\n"},
		{"self loop", "3 3\n"},
		{"duplicate edge", "0 1\n1 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("input %q accepted, want error", tc.in)
			}
		})
	}
}

func TestWriteEdgeListEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, New(3)); err != nil {
		t.Fatal(err)
	}
	g, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want 3, 0", g.N(), g.M())
	}
}
