package deltacolor_test

// Forced-repair coverage for the batched Brooks safety net: seeds where
// the randomized pipeline's layer instances defer nodes, driving the
// repair engine end-to-end through the public API, plus the batch-stat
// invariants every algorithm must satisfy.

import (
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

// checkRepairStats asserts the batch-stat invariants of a Result.
func checkRepairStats(t *testing.T, res *deltacolor.Result, label string) {
	t.Helper()
	if len(res.RepairBatchRounds) != res.RepairBatches {
		t.Fatalf("%s: %d batch-round entries for %d batches", label, len(res.RepairBatchRounds), res.RepairBatches)
	}
	for i, r := range res.RepairBatchRounds {
		if r <= 0 {
			t.Fatalf("%s: batch %d charged %d rounds", label, i, r)
		}
	}
	if res.Repairs > 0 && res.RepairBatches == 0 {
		t.Fatalf("%s: %d repairs with no batches", label, res.Repairs)
	}
	if res.Repairs == 0 && res.Algorithm == deltacolor.AlgRandomized && res.RepairBatches != 0 {
		t.Fatalf("%s: %d batches with no repairs", label, res.RepairBatches)
	}
}

// TestForcedRepairProperty sweeps seeds known (and re-verified here) to
// make the randomized pipeline defer nodes to the Brooks safety net: the
// repaired colorings must always verify, the batch stats must be
// consistent, and the sweep must actually exercise the repair path.
func TestForcedRepairProperty(t *testing.T) {
	forced := 0
	for seed := int64(1); seed <= 8; seed++ {
		g := gen.MustRandomRegular(rand.New(rand.NewSource(seed)), 256, 4)
		res, err := deltacolor.Color(g, deltacolor.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkRepairStats(t, res, "randomized")
		if res.Repairs > 0 {
			forced++
			// Batching must never charge more batches than repairs.
			if res.RepairBatches > res.Repairs {
				t.Fatalf("seed %d: %d batches for %d repairs", seed, res.RepairBatches, res.Repairs)
			}
		}
	}
	if forced < 3 {
		t.Fatalf("only %d/8 seeds exercised the repair path; the sweep no longer forces repairs", forced)
	}
}

// TestForcedRepairAllAlgorithms runs every algorithm on a fixed graph and
// checks the coloring and the repair stats; the deterministic variants'
// B0 batches must appear in the histogram even when nothing was deferred.
func TestForcedRepairAllAlgorithms(t *testing.T) {
	g := gen.MustRandomRegular(rand.New(rand.NewSource(4)), 256, 4)
	for _, alg := range []deltacolor.Algorithm{
		deltacolor.AlgRandomized,
		deltacolor.AlgDeterministic,
		deltacolor.AlgNetDec,
		deltacolor.AlgBaseline,
	} {
		res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkRepairStats(t, res, alg.String())
		if alg == deltacolor.AlgDeterministic || alg == deltacolor.AlgNetDec {
			// B0 is always colored through the engine; with the ruling-set
			// spacing its repairs land in a single batch.
			if res.RepairBatches == 0 {
				t.Fatalf("%v: B0 engine run missing from the batch stats", alg)
			}
		}
	}
}
