package deltacolor_test

// One benchmark per experiment of DESIGN.md §4. Each iteration regenerates
// the experiment's full table (in quick mode so -bench terminates in
// minutes); `go run ./cmd/benchsuite` produces the full-scale tables that
// EXPERIMENTS.md records. The benchmarks double as end-to-end smoke tests:
// every runner panics on an invalid coloring.

import (
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/dist"
	"deltacolor/internal/exp"
	"deltacolor/local"
)

func runExperiment(b *testing.B, f func(exp.Config) *exp.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := f(exp.Config{Quick: true, Seed: int64(i + 1)})
		if len(t.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", t.ID)
		}
	}
}

func BenchmarkE1SmallDelta(b *testing.B)    { runExperiment(b, exp.E1SmallDelta) }
func BenchmarkE2LargeDelta(b *testing.B)    { runExperiment(b, exp.E2LargeDelta) }
func BenchmarkE3Deterministic(b *testing.B) { runExperiment(b, exp.E3Deterministic) }
func BenchmarkE4Baseline(b *testing.B)      { runExperiment(b, exp.E4Baseline) }
func BenchmarkE5Expansion(b *testing.B)     { runExperiment(b, exp.E5Expansion) }
func BenchmarkE6Shattering(b *testing.B)    { runExperiment(b, exp.E6Shattering) }
func BenchmarkE7Brooks(b *testing.B)        { runExperiment(b, exp.E7Brooks) }
func BenchmarkE7Adversarial(b *testing.B)   { runExperiment(b, exp.E7Adversarial) }
func BenchmarkE8NetworkDecomposition(b *testing.B) {
	runExperiment(b, exp.E8NetDec)
}
func BenchmarkE9Structure(b *testing.B)   { runExperiment(b, exp.E9Structure) }
func BenchmarkE10Ablations(b *testing.B)  { runExperiment(b, exp.E10Ablations) }
func BenchmarkE13RepairTail(b *testing.B) { runExperiment(b, exp.E13RepairTail) }

// Micro-benchmarks of the public API on a fixed workload, for profiling the
// algorithms themselves rather than the experiment sweeps.

func benchColor(b *testing.B, n, d int, alg deltacolor.Algorithm) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := gen.MustRandomRegular(rng, n, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds <= 0 {
			b.Fatal("no rounds charged")
		}
	}
}

func BenchmarkColorRandomizedN1024D4(b *testing.B) {
	benchColor(b, 1024, 4, deltacolor.AlgRandomized)
}

func BenchmarkColorRandomizedN1024D8(b *testing.B) {
	benchColor(b, 1024, 8, deltacolor.AlgRandomized)
}

func BenchmarkColorDeterministicN1024D4(b *testing.B) {
	benchColor(b, 1024, 4, deltacolor.AlgDeterministic)
}

func BenchmarkColorBaselineN1024D4(b *testing.B) {
	benchColor(b, 1024, 4, deltacolor.AlgBaseline)
}

func BenchmarkColorNetDecN1024D4(b *testing.B) {
	benchColor(b, 1024, 4, deltacolor.AlgNetDec)
}

func BenchmarkE11Congest(b *testing.B) { runExperiment(b, exp.E11Congest) }

func BenchmarkE12Runtime(b *testing.B) { runExperiment(b, exp.E12Runtime) }

func BenchmarkE14Locality(b *testing.B) { runExperiment(b, exp.E14Locality) }

func BenchmarkE16Churn(b *testing.B) { runExperiment(b, exp.E16Churn) }

// Scheduler micro-benchmarks: network construction on a dense graph (the
// linear-time reverse-port build) and a full dist primitive at scale (the
// sharded barrier and active-set delivery).

func BenchmarkNewNetworkClique2048(b *testing.B) {
	g := gen.Complete(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net := local.NewNetwork(g, 1); net.Graph() != g {
			b.Fatal("bad network")
		}
	}
}

func BenchmarkLinial100kRandomRegular(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := gen.MustRandomRegular(rng, 100_000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := local.NewNetwork(g, 7)
		colors, _, rounds := dist.Linial(net)
		if rounds <= 0 || len(colors) != g.N() {
			b.Fatal("bad Linial run")
		}
	}
}

// Quotient-network construction: the DCC/ruling-set phases build many
// small virtual networks per run. The direct port-table construction
// (local.QuotientNetwork) avoids graph.Quotient's full-edge scan and
// per-edge dedupe followed by a NewNetwork rebuild.

func quotientBenchInstance() (*graph.G, [][]int) {
	rng := rand.New(rand.NewSource(5))
	g := gen.MustRandomRegular(rng, 100_000, 4)
	var groups [][]int
	for v := 0; v+3 < g.N(); v += 40 {
		groups = append(groups, []int{v, v + 1, v + 2})
	}
	return g, groups
}

func BenchmarkQuotientViaGraphQuotient(b *testing.B) {
	g, groups := quotientBenchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net := local.NewNetwork(graph.Quotient(g, groups), 1); net.Graph().N() != len(groups) {
			b.Fatal("bad quotient")
		}
	}
}

func BenchmarkQuotientNetworkFromPorts(b *testing.B) {
	g, groups := quotientBenchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net := local.QuotientNetwork(g, groups, 1); net.Graph().N() != len(groups) {
			b.Fatal("bad quotient")
		}
	}
}
