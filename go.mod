module deltacolor

go 1.24
