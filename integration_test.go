package deltacolor_test

// Integration tests across the public packages: graph I/O -> coloring ->
// verification, algorithm agreement, and the public API's contract on
// every generator family.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"deltacolor"
	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/slocal"
	"deltacolor/verify"
)

// TestRoundTripThenColor exercises the CLI's data path: generate, write,
// re-read, color, verify.
func TestRoundTripThenColor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.MustRandomRegular(rng, 256, 4)

	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := graph.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}

	res, err := deltacolor.Color(h, deltacolor.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// The coloring of the re-read graph must be valid on the original too
	// (they are the same graph).
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		t.Fatal(err)
	}
}

// TestAllAlgorithmsAgreeOnValidity runs every algorithm on every nice
// generator family and demands a valid Δ-coloring from each.
func TestAllAlgorithmsAgreeOnValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	families := map[string]*graph.G{
		"random-4-regular": gen.MustRandomRegular(rng, 128, 4),
		"torus":            gen.Torus(8, 8),
		"hypercube":        gen.Hypercube(4),
		"petersen":         gen.Petersen(),
		"circulant":        gen.MustCirculant(64, []int{1, 5}),
		"clique-chain":     gen.CliqueChain(4, 4),
		"bipartite-3reg":   gen.MustRandomBipartiteRegular(rng, 32, 3),
	}
	algs := []deltacolor.Algorithm{
		deltacolor.AlgRandomized,
		deltacolor.AlgDeterministic,
		deltacolor.AlgNetDec,
		deltacolor.AlgBaseline,
	}
	for name, g := range families {
		for _, alg := range algs {
			res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if err := verify.DeltaColoring(g, res.Colors, g.MaxDegree()); err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if res.Algorithm != alg {
				t.Fatalf("%s: result reports %v, want %v", name, res.Algorithm, alg)
			}
		}
	}
}

// TestPublicVsSLOCALAgree: the LOCAL pipeline and the SLOCAL simulation
// both must produce valid Δ-colorings of the same instance.
func TestPublicVsSLOCALAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := gen.MustRandomRegular(rng, 128, 4)

	res, err := deltacolor.Color(g, deltacolor.Options{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, res.Colors, 4); err != nil {
		t.Fatal(err)
	}

	colors, _, err := slocal.DeltaColor(g, rng.Perm(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, colors, 4); err != nil {
		t.Fatal(err)
	}
}

// TestColorQuickProperty: for random nice regular graphs of random degree
// and size, Color always returns a valid coloring using exactly maxdeg
// colors or fewer.
func TestColorQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(4)         // Δ in [3, 6]
		n := (16 + rng.Intn(48)) * 2 // even n in [32, 126]
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return true // infeasible parameters are not a failure
		}
		res, err := deltacolor.Color(g, deltacolor.Options{Seed: seed})
		if err != nil {
			// Only the documented precondition errors are acceptable.
			return errors.Is(err, deltacolor.ErrComplete) ||
				errors.Is(err, deltacolor.ErrOddCycle) ||
				errors.Is(err, deltacolor.ErrNotNice) ||
				errors.Is(err, deltacolor.ErrDegreeTooSmall)
		}
		return verify.DeltaColoring(g, res.Colors, res.Delta) == nil &&
			verify.CountColors(res.Colors) <= res.Delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithmString covers the enum's String method including the
// unknown branch.
func TestAlgorithmString(t *testing.T) {
	want := map[deltacolor.Algorithm]string{
		deltacolor.AlgAuto:          "auto",
		deltacolor.AlgRandomized:    "randomized",
		deltacolor.AlgDeterministic: "deterministic",
		deltacolor.AlgBaseline:      "baseline",
		deltacolor.AlgNetDec:        "netdec",
		deltacolor.Algorithm(99):    "algorithm(99)",
	}
	for alg, s := range want {
		if got := alg.String(); got != s {
			t.Fatalf("%d.String() = %q, want %q", int(alg), got, s)
		}
	}
}

// TestUnknownAlgorithmRejected: Color rejects undefined algorithm values.
func TestUnknownAlgorithmRejected(t *testing.T) {
	g := gen.Torus(4, 4)
	if _, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestDisconnectedNiceComponents: the LOCAL model colors disconnected
// graphs componentwise for free; the API must accept them.
func TestDisconnectedNiceComponents(t *testing.T) {
	g := graph.New(32)
	t1 := gen.Torus(4, 4)
	for _, e := range t1.Edges() {
		g.MustEdge(e[0], e[1])
		g.MustEdge(e[0]+16, e[1]+16)
	}
	res, err := deltacolor.Color(g, deltacolor.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DeltaColoring(g, res.Colors, res.Delta); err != nil {
		t.Fatal(err)
	}
}

// TestCatalogColoring: every catalog cubic graph is nice (3-regular,
// neither K4 nor a cycle), so Brooks' theorem grants a 3-coloring; every
// algorithm must find one. High-girth cubic graphs are the hardest Δ = 3
// instances: locally tree-like, no nearby DCC shortcuts.
func TestCatalogColoring(t *testing.T) {
	algs := []deltacolor.Algorithm{
		deltacolor.AlgRandomized,
		deltacolor.AlgDeterministic,
		deltacolor.AlgNetDec,
		deltacolor.AlgBaseline,
	}
	for _, ng := range gen.Catalog() {
		g := ng.Build()
		for _, alg := range algs {
			res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: alg, Seed: 3})
			if err != nil {
				t.Fatalf("%s/%v: %v", ng.Name, alg, err)
			}
			if err := verify.DeltaColoring(g, res.Colors, 3); err != nil {
				t.Fatalf("%s/%v: %v", ng.Name, alg, err)
			}
		}
		// SLOCAL too.
		order := make([]int, g.N())
		for i := range order {
			order[i] = i
		}
		colors, _, err := slocal.DeltaColor(g, order)
		if err != nil {
			t.Fatalf("%s/slocal: %v", ng.Name, err)
		}
		if err := verify.DeltaColoring(g, colors, 3); err != nil {
			t.Fatalf("%s/slocal: %v", ng.Name, err)
		}
	}
}
