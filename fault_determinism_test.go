package deltacolor_test

// Golden determinism regression for the fault-injection layer: a fixed
// graph, Options, FaultPlan and mutation stream must produce
// byte-identical colors, round counts, phase logs and repair stats
// forever. The fault schedule is a pure hash of (plan seed, run sequence,
// round, slot), so nothing here may drift when the scheduler, batching or
// worker count changes — only a deliberate change to the fault hash or
// the repair engine may re-pin these values.

import (
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
	"deltacolor/local"
)

func TestFaultRunDeterminismGolden(t *testing.T) {
	g := gen.MustRandomRegular(rand.New(rand.NewSource(17)), 256, 4)
	opts := deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: 17}
	plan := &local.FaultPlan{
		Seed:     4242,
		DropProb: 0.01, DupProb: 0.02, DelayProb: 0.04, MaxDelay: 2,
		FromRound: 1, ToRound: 60,
		Crashes:    []local.CrashWindow{{Node: 7, From: 3, To: 9}, {Node: 200, From: 5, To: 6}},
		RoundLimit: 50_000,
	}
	res, stats, err := deltacolor.ColorUnderFaults(g, opts, plan)
	if err != nil {
		t.Fatal(err)
	}

	// Captured from the first implementation of the fault layer. The
	// drops/delays land inside the DCC and color-trial phases and the
	// Brooks safety net absorbs the damage — note the repair bill (six
	// batches, ~12k scheduling rounds) versus 234 rounds for the same
	// seed fault-free: the faults are real, and the net still converges
	// to a verified coloring with zero residual conflicts.
	const (
		wantColors = uint64(0x7fac2bc91b1c7fa4)
		wantRounds = 12551
		wantPhases = "dcc-select:12;dcc-ruling-set:143;dcc-layers:26;marking:8;happy-layers:18;B[3]:3;B[2]:128;B[1]:134;B0-bruteforce:9;repair-sched[0]:9035;repair-batch[0]:1;repair-sched[1]:156;repair-batch[1]:1;repair-sched[2]:1443;repair-batch[2]:14;repair-sched[3]:1339;repair-batch[3]:1;repair-sched[4]:52;repair-batch[4]:14;repair-batch[5]:14;"
	)
	wantStats := deltacolor.RecolorStats{}

	if got := hashColors(res.Colors); got != wantColors {
		t.Errorf("colors hash = %#x, want %#x", got, wantColors)
	}
	if res.Rounds != wantRounds {
		t.Errorf("rounds = %d, want %d", res.Rounds, wantRounds)
	}
	if got := phaseString(res.Phases); got != wantPhases {
		t.Errorf("phases = %q, want %q", got, wantPhases)
	}
	if *stats != wantStats {
		t.Errorf("repair stats = %+v, want %+v", *stats, wantStats)
	}
}

// TestChurnRecolorDeterminismGolden pins a scripted mutation stream on a
// live network followed by an incremental Recolor: the coloring-as-a-
// service loop. Colors, repair stats and the engine outputs after churn
// must never drift.
func TestChurnRecolorDeterminismGolden(t *testing.T) {
	g := gen.MustRandomRegular(rand.New(rand.NewSource(23)), 256, 4)
	res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: deltacolor.AlgRandomized, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	colors := res.Colors

	net := local.NewNetwork(g, 7)
	rng := rand.New(rand.NewSource(7))
	inserted := 0
	for inserted < 10 {
		u, v := rng.Intn(256), rng.Intn(256)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := net.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	es := g.Edges()
	for k := 0; k < 5; k++ {
		e := es[(k*37)%len(es)]
		if err := net.RemoveEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	nv := net.AddNode()
	for _, u := range []int{3, 77, 191} {
		if err := net.AddEdge(nv, u); err != nil {
			t.Fatal(err)
		}
	}
	colors = append(colors, -1)

	delta := g.MaxDegree()
	stats, err := deltacolor.Recolor(g, colors, delta, 23)
	if err != nil {
		t.Fatal(err)
	}

	const (
		wantDelta  = 6
		wantColors = uint64(0x7548b24fdcee4e67)
	)
	wantStats := deltacolor.RecolorStats{Conflicts: 5, Repaired: 5, Changed: 5, RepairBatches: 2, RepairRounds: 6}

	if delta != wantDelta {
		t.Errorf("post-churn Δ = %d, want %d", delta, wantDelta)
	}
	if got := hashColors(colors); got != wantColors {
		t.Errorf("colors hash = %#x, want %#x", got, wantColors)
	}
	if *stats != wantStats {
		t.Errorf("recolor stats = %+v, want %+v", *stats, wantStats)
	}
}
