package slocal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacolor/graph/gen"
	"deltacolor/verify"
)

// Property: DeltaColor yields a valid Δ-coloring for every random order
// on every feasible random regular graph.
func TestQuickDeltaColorAllOrders(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(3)
		n := 24 + rng.Intn(40)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return true
		}
		colors, locality, err := DeltaColor(g, rng.Perm(g.N()))
		if err != nil {
			return false
		}
		if verify.DeltaColoring(g, colors, d) != nil {
			return false
		}
		return locality >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Run visits every node exactly once and reports a locality
// that is the max over per-step touches.
func TestQuickRunLocalityIsMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g := gen.Cycle(n)
		order := rng.Perm(n)
		visited := make([]bool, n)
		res, err := Run(g, order, 2, func(s *State) {
			if visited[s.Center] {
				return
			}
			visited[s.Center] = true
			// Touch a distance-2 node for even centers, distance-0 for odd.
			if s.Center%2 == 0 {
				s.Read((s.Center + 2) % n)
			}
			s.Write(s.Center, 1)
		})
		if err != nil {
			return false
		}
		for _, v := range visited {
			if !v {
				return false
			}
		}
		return res.MaxLocality == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
