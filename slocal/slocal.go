// Package slocal implements the SLOCAL model (sequential LOCAL, [GKM17]),
// which Remark 17 of the paper invokes: nodes are processed one at a time
// in an adversarial order; when processed, a node reads everything within
// its locality radius — including the outputs already written by earlier
// nodes — and irrevocably writes its own output.
//
// Theorem 5 (distributed Brooks) yields an SLOCAL(O(log_Δ n)) algorithm
// for Δ-coloring: process nodes in any order; each node greedily takes a
// free color, and when none exists it runs the Brooks token walk inside
// its O(log_Δ n)-ball, recoloring only nodes inside the ball. DeltaColor
// implements exactly that; Run is the generic executor that measures the
// locality any SLOCAL algorithm actually used.
package slocal

import (
	"fmt"

	"deltacolor/graph"
	"deltacolor/internal/brooks"
	"deltacolor/verify"
)

// State is the view handed to a node being processed: the graph, the
// per-node outputs written so far (nil for unwritten), and the processed
// node's ID. Output writes go through Write, which enforces the locality
// radius the algorithm declared.
type State struct {
	G      *graph.G
	Center int
	radius int
	outs   []any
	// touched collects the max distance from Center at which this step
	// read or wrote.
	touched int
}

// Read returns node v's output (nil if not yet written), charging the
// distance from the processed node.
func (s *State) Read(v int) any {
	s.charge(v)
	return s.outs[v]
}

// Write sets node v's output, charging the distance. SLOCAL algorithms
// may rewrite outputs inside their ball (that is what makes Δ-coloring
// expressible); writes beyond the declared radius panic.
func (s *State) Write(v int, out any) {
	s.charge(v)
	s.outs[v] = out
}

func (s *State) charge(v int) {
	d := distOf(s.G, s.Center, v, s.radius)
	if d < 0 {
		panic(fmt.Sprintf("slocal: node %d touched %d outside its radius-%d ball", s.Center, v, s.radius))
	}
	if d > s.touched {
		s.touched = d
	}
}

func distOf(g *graph.G, from, to, limit int) int {
	if from == to {
		return 0
	}
	res := g.BFSLimited(from, limit)
	if res.Dist[to] < 0 || res.Dist[to] > limit {
		return -1
	}
	return res.Dist[to]
}

// Result reports an SLOCAL execution.
type Result struct {
	Outputs []any
	// MaxLocality is the largest radius any node actually touched; the
	// SLOCAL complexity of the run.
	MaxLocality int
}

// Run executes an SLOCAL algorithm: for each node in order (every node
// exactly once), step is called with a State allowing reads/writes within
// the declared radius. Returns the outputs and the measured locality.
func Run(g *graph.G, order []int, radius int, step func(*State)) (*Result, error) {
	if len(order) != g.N() {
		return nil, fmt.Errorf("slocal: order has %d entries for %d nodes", len(order), g.N())
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if v < 0 || v >= g.N() || seen[v] {
			return nil, fmt.Errorf("slocal: order is not a permutation (node %d)", v)
		}
		seen[v] = true
	}
	outs := make([]any, g.N())
	maxLoc := 0
	for _, v := range order {
		st := &State{G: g, Center: v, radius: radius, outs: outs}
		step(st)
		if st.touched > maxLoc {
			maxLoc = st.touched
		}
	}
	return &Result{Outputs: outs, MaxLocality: maxLoc}, nil
}

// DeltaColor runs the Remark 17 SLOCAL Δ-coloring: greedy where possible,
// Brooks token walk inside the ball otherwise. The order is adversarial —
// any permutation yields a valid Δ-coloring with locality O(log_Δ n).
//
// The int-typed mirror of the outputs (the partial coloring the Brooks
// engine repairs against) is maintained incrementally: each step updates
// only the entries it writes — O(changed) bookkeeping instead of the old
// O(n) rebuild before every repair. TestDeltaColorMatchesRebuildPath pins
// the outputs byte-identical to the rebuild-per-step implementation.
func DeltaColor(g *graph.G, order []int) (colors []int, locality int, err error) {
	delta := g.MaxDegree()
	if delta < 3 {
		return nil, 0, fmt.Errorf("slocal: Δ=%d < 3", delta)
	}
	radius := 3*brooks.SearchRadius(g.N(), delta) + 1

	// partial mirrors the int outputs written so far (-1 = unwritten) and
	// is kept in sync with every Write below.
	partial := make([]int, g.N())
	for u := range partial {
		partial[u] = -1
	}

	res, err := Run(g, order, radius, func(s *State) {
		v := s.Center
		// Greedy: find a free color against already-written neighbors.
		used := make([]bool, delta)
		for _, u := range s.G.Neighbors(v) {
			if c, ok := s.Read(u).(int); ok {
				used[c] = true
			}
		}
		for c := 0; c < delta; c++ {
			if !used[c] {
				s.Write(v, c)
				partial[v] = c
				return
			}
		}
		// Stuck: run the batched Brooks engine on the current partial
		// coloring with v as the only requested hole (a single repair
		// needs no MIS; the engine degenerates to one FixOne walk). The
		// engine mutates partial in place and reports exactly the nodes it
		// changed, so the SLOCAL outputs are updated in O(changed).
		fix, err := brooks.RepairHoles(s.G, partial, []int{v}, delta, int64(v))
		if err != nil {
			panic(fmt.Sprintf("slocal: brooks at %d: %v", v, err))
		}
		for _, u := range fix.Changed {
			s.Write(u, partial[u])
		}
	})
	if err != nil {
		return nil, 0, err
	}

	colors = make([]int, g.N())
	for v := range colors {
		c, ok := res.Outputs[v].(int)
		if !ok {
			return nil, 0, fmt.Errorf("slocal: node %d left uncolored", v)
		}
		colors[v] = c
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		return nil, 0, err
	}
	return colors, res.MaxLocality, nil
}
