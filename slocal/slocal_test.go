package slocal

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/internal/brooks"
	"deltacolor/verify"
)

func TestRunRejectsBadOrders(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Run(g, []int{0, 1, 2}, 1, func(*State) {}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Run(g, []int{0, 1, 2, 2}, 1, func(*State) {}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := Run(g, []int{0, 1, 2, 9}, 1, func(*State) {}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestRunMeasuresLocality(t *testing.T) {
	g := gen.Path(9)
	order := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	res, err := Run(g, order, 3, func(s *State) {
		// Each node reads its neighbor two hops away when it exists.
		v := s.Center
		if v+2 < s.G.N() {
			s.Read(v + 2)
		}
		s.Write(v, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLocality != 2 {
		t.Fatalf("locality = %d, want 2", res.MaxLocality)
	}
}

func TestRunPanicsOutsideRadius(t *testing.T) {
	g := gen.Path(9)
	defer func() {
		if recover() == nil {
			t.Fatal("read at distance 5 with radius 2 did not panic")
		}
	}()
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	_, _ = Run(g, order, 2, func(s *State) {
		if s.Center == 0 {
			s.Read(5)
		}
		s.Write(s.Center, 0)
	})
}

func TestDeltaColorVariousOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.MustRandomRegular(rng, 128, 4)
	n := g.N()

	orders := map[string][]int{
		"identity": seq(n),
		"reverse":  rev(n),
		"random":   rng.Perm(n),
	}
	bound := 3*searchBound(n, 4) + 1
	for name, order := range orders {
		colors, loc, err := DeltaColor(g, order)
		if err != nil {
			t.Fatalf("%s order: %v", name, err)
		}
		if err := verify.DeltaColoring(g, colors, 4); err != nil {
			t.Fatalf("%s order: %v", name, err)
		}
		if loc > bound {
			t.Fatalf("%s order: locality %d > bound %d", name, loc, bound)
		}
	}
}

func TestDeltaColorStructuredFamilies(t *testing.T) {
	families := []*graph.G{
		gen.Torus(8, 8),
		gen.Hypercube(4),
		gen.Petersen(),
		gen.CliqueChain(4, 4),
	}
	rng := rand.New(rand.NewSource(11))
	for i, g := range families {
		order := rng.Perm(g.N())
		colors, _, err := DeltaColor(g, order)
		if err != nil {
			t.Fatalf("family %d: %v", i, err)
		}
		if err := verify.DeltaColoring(g, colors, g.MaxDegree()); err != nil {
			t.Fatalf("family %d: %v", i, err)
		}
	}
}

func TestDeltaColorRejectsLowDegree(t *testing.T) {
	g := gen.Cycle(6)
	if _, _, err := DeltaColor(g, seq(6)); err == nil {
		t.Fatal("Δ=2 accepted")
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func rev(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// searchBound mirrors brooks.SearchRadius for the locality assertion
// without exporting it through the test.
func searchBound(n, delta int) int {
	return int(math.Ceil(2 * math.Log(float64(n)) / math.Log(float64(delta-1))))
}

// deltaColorRebuild is the pre-PR-4 reference implementation of DeltaColor:
// it rebuilds the full partial slice with an O(n) scan before every Brooks
// call and writes back with an O(n) diff scan. Kept verbatim so the
// incremental-bookkeeping path can be asserted byte-identical against it.
func deltaColorRebuild(g *graph.G, order []int) (colors []int, locality int, err error) {
	delta := g.MaxDegree()
	if delta < 3 {
		return nil, 0, fmt.Errorf("slocal: Δ=%d < 3", delta)
	}
	radius := 3*brooks.SearchRadius(g.N(), delta) + 1

	res, err := Run(g, order, radius, func(s *State) {
		v := s.Center
		used := make([]bool, delta)
		for _, u := range s.G.Neighbors(v) {
			if c, ok := s.Read(u).(int); ok {
				used[c] = true
			}
		}
		for c := 0; c < delta; c++ {
			if !used[c] {
				s.Write(v, c)
				return
			}
		}
		partial := make([]int, s.G.N())
		for u := 0; u < s.G.N(); u++ {
			partial[u] = -1
			if c, ok := s.outs[u].(int); ok {
				partial[u] = c
			}
		}
		fix, err := brooks.FixOne(s.G, partial, v, delta)
		if err != nil {
			panic(fmt.Sprintf("slocal: brooks at %d: %v", v, err))
		}
		for u := 0; u < s.G.N(); u++ {
			if fix.Colors[u] != partial[u] || u == v {
				if fix.Colors[u] >= 0 {
					s.Write(u, fix.Colors[u])
				}
			}
		}
	})
	if err != nil {
		return nil, 0, err
	}
	colors = make([]int, g.N())
	for v := range colors {
		c, ok := res.Outputs[v].(int)
		if !ok {
			return nil, 0, fmt.Errorf("slocal: node %d left uncolored", v)
		}
		colors[v] = c
	}
	if err := verify.DeltaColoring(g, colors, delta); err != nil {
		return nil, 0, err
	}
	return colors, res.MaxLocality, nil
}

// TestDeltaColorMatchesRebuildPath pins the incremental partial-coloring
// bookkeeping byte-identical to the old rebuild-per-step path: same colors,
// same measured locality, across graph families and adversarial orders.
func TestDeltaColorMatchesRebuildPath(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	graphs := []*graph.G{
		gen.MustRandomRegular(rng, 96, 4),
		gen.MustRandomRegular(rng, 64, 3),
		gen.Torus(6, 6),
		gen.Hypercube(4),
	}
	for gi, g := range graphs {
		n := g.N()
		rev := make([]int, n)
		for i := range rev {
			rev[i] = n - 1 - i
		}
		orders := [][]int{seq(n), rev, rng.Perm(n)}
		for oi, order := range orders {
			got, gotLoc, err := DeltaColor(g, order)
			if err != nil {
				t.Fatalf("graph %d order %d: %v", gi, oi, err)
			}
			want, wantLoc, err := deltaColorRebuild(g, order)
			if err != nil {
				t.Fatalf("graph %d order %d (rebuild): %v", gi, oi, err)
			}
			if gotLoc != wantLoc {
				t.Fatalf("graph %d order %d: locality %d != rebuild %d", gi, oi, gotLoc, wantLoc)
			}
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("graph %d order %d node %d: color %d != rebuild %d", gi, oi, v, got[v], want[v])
				}
			}
		}
	}
}
