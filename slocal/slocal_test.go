package slocal

import (
	"math"
	"math/rand"
	"testing"

	"deltacolor/graph"
	"deltacolor/graph/gen"
	"deltacolor/verify"
)

func TestRunRejectsBadOrders(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Run(g, []int{0, 1, 2}, 1, func(*State) {}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Run(g, []int{0, 1, 2, 2}, 1, func(*State) {}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := Run(g, []int{0, 1, 2, 9}, 1, func(*State) {}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestRunMeasuresLocality(t *testing.T) {
	g := gen.Path(9)
	order := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	res, err := Run(g, order, 3, func(s *State) {
		// Each node reads its neighbor two hops away when it exists.
		v := s.Center
		if v+2 < s.G.N() {
			s.Read(v + 2)
		}
		s.Write(v, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLocality != 2 {
		t.Fatalf("locality = %d, want 2", res.MaxLocality)
	}
}

func TestRunPanicsOutsideRadius(t *testing.T) {
	g := gen.Path(9)
	defer func() {
		if recover() == nil {
			t.Fatal("read at distance 5 with radius 2 did not panic")
		}
	}()
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	_, _ = Run(g, order, 2, func(s *State) {
		if s.Center == 0 {
			s.Read(5)
		}
		s.Write(s.Center, 0)
	})
}

func TestDeltaColorVariousOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.MustRandomRegular(rng, 128, 4)
	n := g.N()

	orders := map[string][]int{
		"identity": seq(n),
		"reverse":  rev(n),
		"random":   rng.Perm(n),
	}
	bound := 3*searchBound(n, 4) + 1
	for name, order := range orders {
		colors, loc, err := DeltaColor(g, order)
		if err != nil {
			t.Fatalf("%s order: %v", name, err)
		}
		if err := verify.DeltaColoring(g, colors, 4); err != nil {
			t.Fatalf("%s order: %v", name, err)
		}
		if loc > bound {
			t.Fatalf("%s order: locality %d > bound %d", name, loc, bound)
		}
	}
}

func TestDeltaColorStructuredFamilies(t *testing.T) {
	families := []*graph.G{
		gen.Torus(8, 8),
		gen.Hypercube(4),
		gen.Petersen(),
		gen.CliqueChain(4, 4),
	}
	rng := rand.New(rand.NewSource(11))
	for i, g := range families {
		order := rng.Perm(g.N())
		colors, _, err := DeltaColor(g, order)
		if err != nil {
			t.Fatalf("family %d: %v", i, err)
		}
		if err := verify.DeltaColoring(g, colors, g.MaxDegree()); err != nil {
			t.Fatalf("family %d: %v", i, err)
		}
	}
}

func TestDeltaColorRejectsLowDegree(t *testing.T) {
	g := gen.Cycle(6)
	if _, _, err := DeltaColor(g, seq(6)); err == nil {
		t.Fatal("Δ=2 accepted")
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func rev(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// searchBound mirrors brooks.SearchRadius for the locality assertion
// without exporting it through the test.
func searchBound(n, delta int) int {
	return int(math.Ceil(2 * math.Log(float64(n)) / math.Log(float64(delta-1))))
}
