package deltacolor_test

// Golden determinism regression for the scheduler rework: for fixed seeds,
// every algorithm must return byte-identical colors, round counts and
// phase breakdowns across runtime changes. The golden values below were
// captured from the pre-sharding runtime (single global mutex barrier) and
// must never drift: the scheduler may get faster, never different.
//
// Re-pinned once in PR 4 when the Brooks safety net moved to the batched
// repair engine — an algorithmic change, not a scheduler change. Where the
// repairs were already independent (det-n256, netdec-n256: the B0 ruling
// set spaces every repair ball apart, one batch) colors, rounds and repair
// counts are byte-identical to the sequential engine and only the phase
// names changed. rand-n512-d4-s1 has two adjacent holes among its four, so
// MIS scheduling runs them in two batches and legitimately reorders the
// interacting pair; its colors hash and rounds were re-captured (the
// coloring is VerifyColoring-clean and the repair count is unchanged).

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"deltacolor"
	"deltacolor/graph/gen"
)

func hashColors(xs []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range xs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func phaseString(ps []deltacolor.PhaseStat) string {
	s := ""
	for _, p := range ps {
		s += fmt.Sprintf("%s:%d;", p.Name, p.Rounds)
	}
	return s
}

func TestColorDeterminismGoldens(t *testing.T) {
	cases := []struct {
		name    string
		n, d    int
		alg     deltacolor.Algorithm
		seed    int64
		slow    bool
		colors  uint64
		rounds  int
		repairs int
		phases  string
	}{
		{
			name: "rand-n512-d4-s1", n: 512, d: 4, alg: deltacolor.AlgRandomized, seed: 1,
			colors: 0x4f3a9b47f4c91ca7, rounds: 269, repairs: 4,
			phases: "dcc-select:12;dcc-ruling-set:169;dcc-layers:26;marking:8;happy-layers:18;B[3]:3;B[2]:9;B[1]:5;B0-bruteforce:9;repair-sched[0]:4;repair-batch[0]:1;repair-sched[1]:4;repair-batch[1]:1;",
		},
		{
			name: "rand-n512-d8-s2", n: 512, d: 8, alg: deltacolor.AlgRandomized, seed: 2,
			colors: 0x3a5c7ae8bb510d07, rounds: 146, repairs: 0,
			phases: "dcc-select:8;dcc-ruling-set:81;dcc-layers:18;marking:8;happy-layers:12;B[2]:7;B[1]:7;B0-bruteforce:5;",
		},
		{
			name: "det-n256-d4-s3", n: 256, d: 4, alg: deltacolor.AlgDeterministic, seed: 3, slow: true,
			colors: 0x6d448d1d160e7346, rounds: 1400, repairs: 0,
			phases: "ruling-set:544;layering:7;linial:1;layers[7]:121;layers[6]:121;layers[5]:121;layers[4]:121;layers[3]:121;layers[2]:121;layers[1]:121;brooks-B0-batch[0]:1;",
		},
		{
			name: "netdec-n256-d4-s4", n: 256, d: 4, alg: deltacolor.AlgNetDec, seed: 4, slow: true,
			colors: 0x16cb72284dd8baa5, rounds: 1220, repairs: 0,
			phases: "decomposition:31;ruling-set:328;layering:7;linial:1;layers[7]:121;layers[6]:121;layers[5]:121;layers[4]:121;layers[3]:121;layers[2]:121;layers[1]:121;brooks-B0-batch[0]:6;",
		},
		{
			name: "baseline-n256-d4-s5", n: 256, d: 4, alg: deltacolor.AlgBaseline, seed: 5,
			colors: 0xc424ae2e4a320a84, rounds: 359, repairs: 0,
			phases: "linial:1;reduce:116;greedy-sweeps:242;",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("slow golden skipped in -short")
			}
			g := gen.MustRandomRegular(rand.New(rand.NewSource(tc.seed)), tc.n, tc.d)
			res, err := deltacolor.Color(g, deltacolor.Options{Algorithm: tc.alg, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			if got := hashColors(res.Colors); got != tc.colors {
				t.Errorf("colors hash = %#x, want %#x", got, tc.colors)
			}
			if res.Rounds != tc.rounds {
				t.Errorf("rounds = %d, want %d", res.Rounds, tc.rounds)
			}
			if res.Repairs != tc.repairs {
				t.Errorf("repairs = %d, want %d", res.Repairs, tc.repairs)
			}
			if got := phaseString(res.Phases); got != tc.phases {
				t.Errorf("phases = %q, want %q", got, tc.phases)
			}
		})
	}
}
